//! PMI bootstrap end-to-end on both runtimes.

use flux_kvs::KvsModule;
use flux_modules::BarrierModule;
use flux_pmi::{bootstrap_ops, BootstrapOp, Pmi, PmiDelivery, PmiReply};
use flux_rt::script::{Op, ScriptClient};
use flux_rt::sim::SimSession;
use flux_rt::threads::ThreadSession;
use flux_sim::NetParams;
use flux_value::Value;
use flux_wire::Rank;
use std::time::Duration;

fn to_script(ops: Vec<BootstrapOp>) -> Vec<Op> {
    ops.into_iter()
        .map(|op| match op {
            BootstrapOp::Put { key, val } => Op::Put { key, val },
            BootstrapOp::Fence { name, nprocs } => Op::Fence { name, nprocs },
            BootstrapOp::Get { key } => Op::Get { key },
        })
        .collect()
}

/// 128 simulated MPI processes across 32 nodes: every process reads valid
/// business cards for its `fanout` neighbours after the fence.
#[test]
fn sim_bootstrap_128_processes() {
    let nodes = 32u32;
    let procs = 128u64;
    let fanout = 3u64;
    let mut session = SimSession::new(nodes, 2, NetParams::default(), |_| {
        vec![Box::new(KvsModule::new()), Box::new(BarrierModule::new())]
    });
    let outcomes: Vec<_> = (0..procs)
        .map(|g| {
            let node = Rank((g % u64::from(nodes)) as u32);
            ScriptClient::spawn(&mut session, node, to_script(bootstrap_ops("it", g, procs, fanout)))
        })
        .collect();
    session.run_until_quiet(Some(20_000_000)).expect("no livelock");
    for (g, o) in outcomes.iter().enumerate() {
        let o = o.borrow();
        assert!(o.finished, "rank {g}");
        assert!(o.op_err.iter().all(|&e| e == 0), "rank {g}: {:?}", o.op_err);
        for (i, r) in o.replies[2..].iter().enumerate() {
            let peer = (g as u64 + 1 + i as u64) % procs;
            assert_eq!(
                r.get("v").and_then(Value::as_str),
                Some(format!("endpoint://node/{peer}").as_str()),
                "rank {g} neighbour {i}"
            );
        }
    }
}

/// Four threaded processes use the typed [`Pmi`] API directly, blocking
/// on real channels.
#[test]
fn threaded_bootstrap_with_typed_pmi() {
    let nodes = 4u32;
    let procs = 4u64;
    let mut builder = ThreadSession::builder(nodes, 2, |_| {
        vec![Box::new(KvsModule::new()), Box::new(BarrierModule::new())]
    });
    let clients: Vec<_> = (0..procs)
        .map(|g| builder.attach_client(Rank(g as u32 % nodes)))
        .collect();
    let session = builder.start();

    let handles: Vec<_> = clients
        .into_iter()
        .enumerate()
        .map(|(g, conn)| {
            std::thread::spawn(move || {
                let timeout = Duration::from_secs(10);
                let mut pmi = Pmi::new("tpmi", g as u64, procs, conn.rank, conn.client_id);
                conn.send(pmi.put("card", Value::from(format!("ep:{g}")), 1));
                match pmi.deliver(conn.recv_timeout(timeout).expect("put ack")) {
                    PmiDelivery::Reply { reply: PmiReply::PutOk, .. } => {}
                    other => panic!("rank {g}: {other:?}"),
                }
                conn.send(pmi.fence(2));
                match pmi.deliver(conn.recv_timeout(timeout).expect("fence")) {
                    PmiDelivery::Reply { reply: PmiReply::FenceOk, .. } => {}
                    other => panic!("rank {g}: {other:?}"),
                }
                let peer = (g as u64 + 1) % procs;
                conn.send(pmi.get(peer, "card", 3));
                match pmi.deliver(conn.recv_timeout(timeout).expect("get")) {
                    PmiDelivery::Reply { reply: PmiReply::Value(v), .. } => {
                        assert_eq!(v, Value::from(format!("ep:{peer}")));
                    }
                    other => panic!("rank {g}: {other:?}"),
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("bootstrap thread");
    }
    session.shutdown();
}
