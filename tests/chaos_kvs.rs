//! Chaos KVS workloads across runtimes.
//!
//! * The simulator is fully deterministic: the same (workload, fault
//!   plan) pair must produce bit-identical reports run-to-run.
//! * The threaded runtime runs the same seeded workloads under the same
//!   fault plans via the `FaultyTransport` decorator; wall-clock timing
//!   varies, but every observed history must still satisfy the
//!   consistency checker.
//!
//! Reproduce any failing seed with:
//!
//! ```text
//! FLUX_CHAOS_SEED=<seed> cargo test -p flux-bench --test chaos_kvs
//! ```

use flux_modules::standard_modules;
use flux_rt::chaos;
use flux_rt::transport::{FaultyTransport, ScriptTransport, TcpTransport, ThreadTransport};
use std::time::Duration;

fn seed_range() -> Vec<u64> {
    if let Ok(one) = std::env::var("FLUX_CHAOS_SEED") {
        let s = one.parse().expect("FLUX_CHAOS_SEED must be a u64");
        return vec![s];
    }
    let n: u64 = std::env::var("FLUX_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    (0..n).collect()
}

/// Identical (workload, plan) → identical simulator results, including
/// makespan, event count, and every recorded reply.
#[test]
fn sim_chaos_runs_are_deterministic() {
    for &(seed, with_kill) in &[(1u64, false), (7, true), (13, false), (19, true), (28, false)] {
        let w = chaos::workload(seed, 100_000_000, with_kill);
        let a = chaos::run_sim(&w);
        let b = chaos::run_sim(&w);
        assert_eq!(
            a, b,
            "seed {seed} (with_kill={with_kill}) diverged between identical runs; \
             plan: {}",
            w.plan
        );
    }
}

/// A shard master blacked out while a cross-shard fence is in flight:
/// the fence must either complete once the master restarts (the root
/// coordinator re-sends unacknowledged parts every heartbeat) or stay
/// pending — it must never release with a missing shard contribution,
/// and all released clients must observe one agreed frontier. The
/// extended history oracle rejects both failure modes; the run itself
/// must be byte-deterministic.
#[test]
fn sim_shard_master_blackout_during_fence() {
    let shards = 4u32;
    let cfg = flux_kvs::KvsConfig { shards, ..flux_kvs::KvsConfig::default() };
    for seed in seed_range() {
        let w = chaos::shard_workload(seed, shards, 100_000_000, true);
        let report = chaos::run_sim_kvs(&w, cfg);
        let violations = chaos::check_run(&w, &report);
        assert!(
            violations.is_empty(),
            "seed {seed}: shard-master blackout broke the fence oracle; repro with \
             `FLUX_CHAOS_SEED={seed} cargo test -p flux-bench --test chaos_kvs`\n\
             plan: {}\nviolations:\n  {}",
            w.plan,
            violations.join("\n  ")
        );
        // Any two clients whose fence released must have received the
        // byte-identical frontier reply.
        let fence_replies: Vec<&flux_value::Value> = w
            .scripts
            .iter()
            .zip(&report.outcomes)
            .filter_map(|((_, ops), o)| {
                ops.iter().position(|op| matches!(op, flux_rt::script::Op::Fence { .. }))
                    .filter(|&fi| fi < o.op_err.len() && o.op_err[fi] == 0)
                    .map(|fi| &o.replies[fi])
            })
            .collect();
        for pair in fence_replies.windows(2) {
            assert_eq!(pair[0], pair[1], "seed {seed}: fence replies diverged");
        }
        if seed < 4 {
            let again = chaos::run_sim_kvs(&w, cfg);
            assert_eq!(report, again, "seed {seed}: sharded blackout run nondeterministic");
        }
    }
}

/// A live runtime under the same seeded fault plans: every client
/// history must pass the consistency checker.
fn live_chaos_consistency_sweep(make: &dyn Fn() -> Box<dyn flux_rt::transport::Transport>) {
    for seed in seed_range() {
        let w = chaos::workload(seed, 2_000_000, false);
        let transport = FaultyTransport::new(make(), w.plan.clone())
            .with_op_timeout(Duration::from_millis(200));
        let name = transport.name();
        let report =
            transport.run_scripts(w.size, w.arity, &|_| standard_modules(), w.scripts.clone());
        let violations = chaos::check_run(&w, &report);
        assert!(
            violations.is_empty(),
            "seed {seed} violated consistency on {name}; repro with \
             `FLUX_CHAOS_SEED={seed} cargo test -p flux-bench --test chaos_kvs`\n\
             plan: {}\nviolations:\n  {}",
            w.plan,
            violations.join("\n  ")
        );
    }
}

#[test]
fn threads_chaos_consistency_sweep() {
    live_chaos_consistency_sweep(&|| Box::new(ThreadTransport));
}

/// The poll-based reactor under the identical seeded fault plans: drops,
/// dups, delays, and blackouts ride real loopback sockets through the
/// nonblocking state machines, and every observed history must still
/// satisfy the consistency oracle.
#[test]
fn reactor_tcp_chaos_consistency_sweep() {
    live_chaos_consistency_sweep(&|| Box::new(TcpTransport::default()));
}
