//! Cross-crate integration: the full module stack, both runtimes, and
//! the framework layer driving the substrate's resource service.

use flux_broker::client::ClientCore;
use flux_core::{Fcfs, Instance, InstanceConfig, JobSpec, JobState};
use flux_modules::standard_modules;
use flux_rt::script::{Op, ScriptClient};
use flux_rt::sim::SimSession;
use flux_rt::tcp::TcpSession;
use flux_rt::threads::ThreadSession;
use flux_rt::transport::{ScriptTransport, TcpTransport};
use flux_sim::{NetParams, SimTime};
use flux_value::Value;
use flux_wire::{Rank, Topic};
use std::time::Duration;

/// All nine Table I modules on the simulator, driven end to end: resvc
/// enumerates into the KVS, wexec runs a job whose output a client reads
/// back, mon aggregates a metric, log reaches the root.
#[test]
fn standard_session_lifecycle_in_virtual_time() {
    let size = 31u32;
    let mut session = SimSession::new(size, 2, NetParams::default(), |_| standard_modules());

    // Settle: resource enumeration fence + first heartbeats.
    session.run_until(SimTime::from_nanos(1_000_000_000));

    // A tool client on a leaf: check resources, run a bulk job, read its
    // output, query the session log.
    let tool = ScriptClient::spawn(
        &mut session,
        Rank(30),
        vec![
            Op::Get { key: "resource.r17".into() },
            Op::Request {
                topic: Topic::from_static("wexec.run"),
                payload: Value::from_pairs([
                    ("jobid", Value::Int(77)),
                    ("cmd", Value::from("echo out$RANK")),
                    ("targets", Value::from("all")),
                ]),
            },
            Op::Request {
                topic: Topic::from_static("log.msg"),
                payload: Value::from_pairs([
                    ("level", Value::Int(6)),
                    ("text", Value::from("tool ran job 77")),
                ]),
            },
        ],
    );
    session.run_until(SimTime::from_nanos(3_000_000_000));
    {
        let o = tool.borrow();
        assert!(o.finished);
        assert_eq!(o.op_err, [0, 0, 0]);
        assert_eq!(
            o.replies[0].get("v").unwrap().get("cores"),
            Some(&Value::Int(16)),
            "resvc enumerated node inventories"
        );
        assert_eq!(o.replies[1].get("ntasks"), Some(&Value::Int(i64::from(size))));
    }

    // Job output and completion record are in the KVS; the log query
    // reaches the root's session log.
    let checker = ScriptClient::spawn(
        &mut session,
        Rank(9),
        vec![
            Op::Get { key: "lwj.77.22.stdout".into() },
            Op::Get { key: "lwj.77.complete".into() },
            Op::Request {
                topic: Topic::from_static("log.query"),
                payload: Value::object(),
            },
        ],
    );
    session.run_until(SimTime::from_nanos(6_000_000_000));
    let o = checker.borrow();
    assert!(o.finished);
    assert_eq!(o.op_err, [0, 0, 0], "{:?}", o.op_err);
    assert_eq!(o.replies[0].get("v"), Some(&Value::from("out22")));
    assert_eq!(
        o.replies[1].get("v").unwrap().get("failed"),
        Some(&Value::Int(0))
    );
    let entries = o.replies[2].get("entries").unwrap().as_array().unwrap();
    assert!(
        entries
            .iter()
            .any(|e| e.get("text").and_then(Value::as_str) == Some("tool ran job 77")),
        "log reduced to the root"
    );
}

/// The same broker + module code on OS threads, interoperating with a
/// rank-addressed ping over the ring.
#[test]
fn threaded_session_with_standard_modules() {
    let mut builder = ThreadSession::builder(6, 2, |_| standard_modules());
    let client = builder.attach_client(Rank(4));
    let session = builder.start();
    let timeout = Duration::from_secs(10);

    let mut core = ClientCore::new(Rank(4), client.client_id);
    // Rank-addressed ping across the ring.
    client.send(core.request_to(Rank(2), Topic::from_static("cmb.ping"), Value::object(), 1));
    let pong = client.recv_timeout(timeout).expect("pong");
    assert_eq!(pong.payload.get("pong"), Some(&Value::Int(2)));

    // KVS round trip.
    client.send(core.request(
        Topic::from_static("kvs.put"),
        Value::from_pairs([("k", Value::from("th.k")), ("v", Value::from("v"))]),
        2,
    ));
    assert!(!client.recv_timeout(timeout).expect("ack").is_error());
    client.send(core.request(Topic::from_static("kvs.commit"), Value::object(), 3));
    assert!(!client.recv_timeout(timeout).expect("commit").is_error());
    client.send(core.request(
        Topic::from_static("kvs.get"),
        Value::from_pairs([("k", Value::from("th.k"))]),
        4,
    ));
    let got = client.recv_timeout(timeout).expect("get");
    assert_eq!(got.payload.get("v"), Some(&Value::from("v")));

    session.shutdown();
}

/// The same stack again, but with brokers wired over real loopback TCP
/// sockets: a rank-addressed ping proves the ring, then a KVS round trip
/// proves tree routing and write-back over the sockets.
#[test]
fn tcp_session_with_standard_modules() {
    let mut builder = TcpSession::builder(6, 2, |_| standard_modules());
    let client = builder.attach_client(Rank(5));
    let session = builder.start();
    let timeout = Duration::from_secs(10);

    let mut core = ClientCore::new(Rank(5), client.client_id);
    client.send(core.request_to(Rank(3), Topic::from_static("cmb.ping"), Value::object(), 1));
    let pong = client.recv_timeout(timeout).expect("pong over tcp");
    assert_eq!(pong.payload.get("pong"), Some(&Value::Int(3)));

    client.send(core.request(
        Topic::from_static("kvs.put"),
        Value::from_pairs([("k", Value::from("tcp.k")), ("v", Value::from("sockets"))]),
        2,
    ));
    assert!(!client.recv_timeout(timeout).expect("ack").is_error());
    client.send(core.request(Topic::from_static("kvs.commit"), Value::object(), 3));
    assert!(!client.recv_timeout(timeout).expect("commit").is_error());
    client.send(core.request(
        Topic::from_static("kvs.get"),
        Value::from_pairs([("k", Value::from("tcp.k"))]),
        4,
    ));
    let got = client.recv_timeout(timeout).expect("get");
    assert_eq!(got.payload.get("v"), Some(&Value::from("sockets")));

    session.shutdown();
}

/// A 16-broker loopback-TCP session wires up and completes a full KVS
/// cycle across ranks: every rank puts and commits its own key, all 16
/// meet at a fence, then each reads its neighbour's key — so every value
/// crosses real sockets between distinct brokers.
#[test]
fn tcp_session_16_brokers_full_kvs_cycle() {
    let size = 16u32;
    let scripts: Vec<(Rank, Vec<Op>)> = (0..size)
        .map(|r| {
            (
                Rank(r),
                vec![
                    Op::Put { key: format!("tcp16.r{r}"), val: Value::Int(i64::from(r)) },
                    Op::Commit,
                    Op::Fence { name: "tcp16.sync".into(), nprocs: u64::from(size) },
                    Op::Get { key: format!("tcp16.r{}", (r + 1) % size) },
                ],
            )
        })
        .collect();
    let report =
        TcpTransport::default().run_scripts(size, 2, &|_| standard_modules(), scripts);
    assert_eq!(report.outcomes.len(), size as usize);
    for (r, out) in report.outcomes.iter().enumerate() {
        assert!(out.finished, "rank {r} did not finish");
        assert_eq!(out.op_err, [0, 0, 0, 0], "rank {r} errors: {:?}", out.op_err);
        let expect = i64::from((r as u32 + 1) % size);
        assert_eq!(
            out.replies[3].get("v"),
            Some(&Value::Int(expect)),
            "rank {r} read its neighbour's committed value over TCP"
        );
    }
}

/// The framework layer's accounting agrees with a brute-force replay of
/// its own history (capacity usage reconstructed at every event time).
#[test]
fn instance_history_is_self_consistent() {
    let mut inst = Instance::root(InstanceConfig::new("audit", 12), Box::new(Fcfs));
    let mut wl = flux_core::Workload::seeded(99);
    for spec in wl.capability_mix(60, 12, 10_000) {
        inst.submit(spec);
    }
    inst.drain();
    let events = inst.history();
    assert_eq!(events.len(), 60);
    // At every start instant, the sum of nodes held by overlapping jobs
    // stays within the grant.
    for e in events {
        let t = e.start_ns.unwrap();
        let held: u32 = events
            .iter()
            .filter(|o| {
                o.state == JobState::Complete
                    && o.start_ns.unwrap() <= t
                    && o.end_ns.unwrap() > t
            })
            .map(|o| o.nodes)
            .sum();
        assert!(held <= 12, "overcommit at t={t}: {held}");
    }
}

/// Rigid jobs too big for a leased partition are the submitter's bug, not
/// a framework hang: drain panics with a clear message.
#[test]
fn oversized_job_in_child_is_loud() {
    let mut parent = Instance::root(InstanceConfig::new("p", 8), Box::new(Fcfs));
    let child = parent
        .spawn_child(InstanceConfig::new("c", 2), Box::new(Fcfs))
        .unwrap();
    parent.child_mut(child).unwrap().submit(JobSpec::rigid("big", 4, 10));
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| parent.drain()));
    assert!(r.is_err());
}
