//! The paper's qualitative findings, asserted as tests at reduced scale.
//!
//! These are the *shape* claims of §V-B. Absolute latencies are cost-model
//! artifacts; who-wins and how-things-grow must match the paper:
//!
//! * Fig. 2 — `kvs_put` stays nearly flat as producers scale;
//! * Fig. 3 — `kvs_fence` grows ~linearly with unique values; redundant
//!   values help, but fall "short of logarithmic scaling" because the
//!   `(key, SHA1)` tuples still concatenate;
//! * Fig. 4 — single-directory `kvs_get` grows with consumer count; the
//!   ≤128-object directory layout beats it at scale;
//! * §V-B model — with G ∝ C the consumer latency is linear in C.

use flux_kap::layout::DirLayout;
use flux_kap::model::{r_squared, slope};
use flux_kap::{run_kap, KapParams};

const SCALES: [u32; 3] = [8, 16, 32];
const PPN: u32 = 4;

fn params(nodes: u32) -> KapParams {
    let mut p = KapParams::fully_populated(nodes);
    p.procs_per_node = PPN;
    p.producers = p.total_procs();
    p.consumers = p.total_procs();
    p
}

#[test]
fn fig2_put_latency_nearly_flat_in_producer_count() {
    let lat: Vec<f64> = SCALES
        .iter()
        .map(|&n| {
            let mut p = params(n);
            p.value_size = 512;
            run_kap(&p).producer_ns as f64
        })
        .collect();
    // 4x the producers must cost far less than 4x the put latency
    // (puts are local write-back; only the local broker's IPC queue
    // matters, and processes-per-node is constant).
    let growth = lat.last().unwrap() / lat.first().unwrap();
    assert!(growth < 1.6, "producer latency grew {growth:.2}x over a 4x scale-up: {lat:?}");
}

#[test]
fn fig2_put_latency_grows_with_value_size() {
    let mut small = params(16);
    small.value_size = 8;
    let mut big = params(16);
    big.value_size = 32768;
    let a = run_kap(&small).producer_ns;
    let b = run_kap(&big).producer_ns;
    assert!(b > a, "32 KiB puts ({b}) cost more than 8 B puts ({a})");
}

#[test]
fn fig3_fence_linear_for_unique_sublinear_for_redundant() {
    let mut unique = Vec::new();
    let mut redundant = Vec::new();
    for &n in &SCALES {
        let mut p = params(n);
        p.value_size = 2048;
        unique.push((p.total_procs() as f64, run_kap(&p).sync_ns as f64));
        p.redundant = true;
        redundant.push((p.total_procs() as f64, run_kap(&p).sync_ns as f64));
    }
    // Unique values: near-linear in producers (values concatenate).
    let r2_unique_linear = r_squared(&unique);
    assert!(r2_unique_linear > 0.95, "unique fence ~ linear, R² = {r2_unique_linear:.3}");
    // Redundant helps at every scale.
    for (u, r) in unique.iter().zip(&redundant) {
        assert!(r.1 < u.1, "redundant {} < unique {} at P={}", r.1, u.1, u.0);
    }
    // ... but falls short of logarithmic: latency still grows with P
    // noticeably faster than log2(P) would (tuples still concatenate).
    let first = redundant.first().unwrap();
    let last = redundant.last().unwrap();
    let measured_growth = last.1 / first.1;
    let log_growth = (last.0).log2() / (first.0).log2();
    assert!(
        measured_growth > log_growth * 1.15,
        "redundant fence grew {measured_growth:.2}x vs {log_growth:.2}x for pure log scaling"
    );
}

#[test]
fn fig4_single_directory_consumer_latency_grows_with_scale() {
    let pts: Vec<(f64, f64)> = SCALES
        .iter()
        .map(|&n| {
            let p = params(n);
            (p.total_procs() as f64, run_kap(&p).consumer_ns as f64)
        })
        .collect();
    let s = slope(&pts);
    assert!(s > 0.0, "latency grows with consumers: {pts:?}");
    // G grows with C here (every producer adds an object), so the
    // geometric-series model predicts linear — the linear fit must beat
    // the fit against log2(C).
    let log_pts: Vec<(f64, f64)> = pts.iter().map(|&(x, y)| (x.log2(), y)).collect();
    assert!(
        r_squared(&pts) > r_squared(&log_pts) - 0.02,
        "linear-in-C at least matches log-in-C: {:.4} vs {:.4}",
        r_squared(&pts),
        r_squared(&log_pts)
    );
}

#[test]
fn fig4_split_directories_beat_single_at_scale() {
    // The split layout needs enough objects to actually split: 128 procs
    // x 8 puts = 1024 objects = 8 directories of 128 (vs one 1024-entry
    // monolith).
    let mut single = params(32);
    single.nputs = 8;
    single.naccess = 4;
    single.stride = 4;
    let mut split = single.clone();
    split.layout = DirLayout::Split128;
    let a = run_kap(&single).consumer_ns;
    let b = run_kap(&split).consumer_ns;
    assert!(b < a, "split {b} < single {a}");
}

#[test]
fn access_count_scales_consumer_phase() {
    let mut one = params(16);
    one.naccess = 1;
    let mut many = params(16);
    many.naccess = 16;
    many.stride = 16;
    let a = run_kap(&one).consumer_ns;
    let b = run_kap(&many).consumer_ns;
    assert!(b > a, "access-16 ({b}) > access-1 ({a})");
}

#[test]
fn whole_sweep_is_deterministic() {
    let p = params(8);
    let a = run_kap(&p);
    let b = run_kap(&p);
    assert_eq!(a, b);
}

#[test]
fn fig4b_split_layout_flat_under_collective_reads() {
    // With the paper's collective access pattern (every consumer reads
    // the same objects, stride 0), capping directory size makes the
    // consumer phase essentially scale-free — "true scaling is when G
    // stays constant regardless of scale".
    let lat: Vec<f64> = SCALES
        .iter()
        .map(|&n| {
            let mut p = params(n);
            p.nputs = 8; // enough objects that the split layout splits
            p.naccess = 1;
            p.stride = 0;
            p.layout = DirLayout::Split128;
            run_kap(&p).consumer_ns as f64
        })
        .collect();
    let growth = lat.last().unwrap() / lat.first().unwrap();
    assert!(growth < 1.5, "split layout stays flat over 4x consumers: {lat:?}");
}
