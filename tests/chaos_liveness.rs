//! Chaos liveness: kill a mid-tree broker, watch the overlay self-heal.
//!
//! A blackout window silences one broker for a span of heartbeat epochs.
//! The `live` module must publish `live.down` within `live_miss_limit`
//! epochs, the tree must re-parent the orphaned subtree so RPCs route
//! around the hole, and when the window ends the broker's hello must
//! produce `live.up`. Exercised on the simulator (exact virtual-time
//! schedule) and the threaded runtime (wall clock, generous margins).

use flux_broker::BrokerConfig;
use flux_modules::standard_modules;
use flux_rt::chaos::HB_PERIOD_NS;
use flux_rt::script::Op;
use flux_rt::tcp::TcpSession;
use flux_rt::threads::ThreadSession;
use flux_rt::transport::{drive_script, ScriptTransport, SimTransport};
use flux_rt::FaultPlan;
use flux_value::Value;
use flux_wire::{Rank, Topic};
use std::time::{Duration, Instant};

fn status_op() -> Op {
    Op::Request { topic: Topic::from_static("live.status"), payload: Value::object() }
}

fn up_list(reply: &Value) -> Vec<u64> {
    reply
        .get("up")
        .and_then(Value::as_array)
        .map(|a| a.iter().filter_map(Value::as_uint).collect())
        .unwrap_or_default()
}

/// Simulator: 15 brokers, arity 2. Rank 5 (children 11, 12) is blacked
/// out for epochs [6, 14). An observer at rank 3 sees it reported down
/// by 1.2s (kill epoch 6 + miss limit 3 + detection slack) and back up
/// by 2.0s; a client at rank 11 — inside the orphaned subtree — runs a
/// put/commit/get mid-blackout, which must re-route through rank 2.
#[test]
fn sim_kill_detects_reroutes_and_recovers() {
    let plan = FaultPlan::new(0xF1).kill_epochs(Rank(5), 6..14, HB_PERIOD_NS);
    let observer = vec![
        Op::Pause(1_200_000_000),
        status_op(),
        Op::Pause(800_000_000),
        status_op(),
    ];
    let worker = vec![
        Op::Pause(1_150_000_000),
        Op::Put { key: "chaos.reroute".into(), val: Value::from(7i64) },
        Op::Commit,
        Op::Get { key: "chaos.reroute".into() },
    ];
    let transport = SimTransport {
        faults: Some(plan),
        deadline_ns: Some(2_500_000_000),
        ..Default::default()
    };
    let report = transport.run_scripts(
        15,
        2,
        &|_| standard_modules(),
        vec![(Rank(3), observer), (Rank(11), worker)],
    );

    let obs = &report.outcomes[0];
    assert!(obs.finished, "observer stalled: {:?}", obs.op_err);
    let during = up_list(&obs.replies[1]);
    assert!(
        !during.contains(&5),
        "rank 5 not reported down by 1.2s (kill epoch 6, miss limit 3); up = {during:?}"
    );
    assert!(
        during.contains(&2) && during.contains(&11),
        "healthy ranks wrongly reported down; up = {during:?}"
    );
    let after = up_list(&obs.replies[3]);
    assert!(after.contains(&5), "rank 5 not re-joined by 2.0s; up = {after:?}");

    let wk = &report.outcomes[1];
    assert!(wk.finished, "worker stalled mid-blackout: {:?}", wk.op_err);
    assert_eq!(
        wk.op_err,
        vec![0, 0, 0, 0],
        "put/commit/get through the re-parented subtree must succeed"
    );
    assert_eq!(
        wk.replies[3].get("v").and_then(Value::as_uint),
        Some(7),
        "read-your-writes across the re-routed path"
    );
}

/// Threaded runtime: 7 brokers, arity 2, heartbeats at 40ms. Rank 1
/// (children 3, 4) is blacked out for epochs [8, 24) = [320ms, 960ms).
/// Same assertions as the simulator variant, with wall-clock margins of
/// several epochs around every probe.
#[test]
fn threads_kill_detects_reroutes_and_recovers() {
    const HB: u64 = 40_000_000;
    let plan = FaultPlan::new(0xF2).kill_epochs(Rank(1), 8..24, HB);
    let mut builder = ThreadSession::builder(7, 2, |_| standard_modules());
    for r in 0..7 {
        let mut cfg = BrokerConfig::new(Rank(r), 7).with_arity(2);
        cfg.hb_period_ns = HB;
        builder.set_config(Rank(r), cfg);
    }
    builder.set_faults(&plan);
    let observer = builder.attach_client(Rank(0));
    let worker = builder.attach_client(Rank(3));
    let session = builder.start();
    let epoch = Instant::now();

    let obs_ops = vec![
        Op::Pause(650_000_000),
        status_op(),
        Op::Pause(600_000_000),
        status_op(),
    ];
    let wk_ops = vec![
        Op::Pause(550_000_000),
        Op::Put { key: "chaos.reroute".into(), val: Value::from(9i64) },
        Op::Commit,
        Op::Get { key: "chaos.reroute".into() },
    ];
    let timeout = Duration::from_secs(10);
    let h_obs = std::thread::spawn(move || drive_script(&observer, &obs_ops, epoch, timeout));
    let h_wk = std::thread::spawn(move || drive_script(&worker, &wk_ops, epoch, timeout));
    let obs = h_obs.join().expect("observer driver panicked");
    let wk = h_wk.join().expect("worker driver panicked");
    session.shutdown();

    assert!(obs.finished, "observer stalled: {:?}", obs.op_err);
    let during = up_list(&obs.replies[1]);
    assert!(
        !during.contains(&1),
        "rank 1 not reported down by 650ms (kill at 320ms, miss limit 3 @ 40ms); up = {during:?}"
    );
    let after = up_list(&obs.replies[3]);
    assert!(after.contains(&1), "rank 1 not re-joined by 1.25s; up = {after:?}");

    assert!(wk.finished, "worker stalled mid-blackout: {:?}", wk.op_err);
    assert_eq!(
        wk.op_err,
        vec![0, 0, 0, 0],
        "put/commit/get from the orphaned subtree must re-route and succeed"
    );
    assert_eq!(wk.replies[3].get("v").and_then(Value::as_uint), Some(9));
}

/// The reactor runtime: same scenario as the threads variant — rank 1
/// blacked out for epochs [8, 24) at a 40ms heartbeat — but every
/// heartbeat, re-parent, and re-routed RPC crosses real loopback sockets
/// through the nonblocking reactor state machines.
#[test]
fn reactor_tcp_kill_detects_reroutes_and_recovers() {
    const HB: u64 = 40_000_000;
    let plan = FaultPlan::new(0xF2).kill_epochs(Rank(1), 8..24, HB);
    let mut builder = TcpSession::builder(7, 2, |_| standard_modules());
    for r in 0..7 {
        let mut cfg = BrokerConfig::new(Rank(r), 7).with_arity(2);
        cfg.hb_period_ns = HB;
        builder.set_config(Rank(r), cfg);
    }
    builder.set_faults(&plan);
    let observer = builder.attach_client(Rank(0));
    let worker = builder.attach_client(Rank(3));
    let session = builder.start();
    let epoch = Instant::now();

    let obs_ops = vec![
        Op::Pause(650_000_000),
        status_op(),
        Op::Pause(600_000_000),
        status_op(),
    ];
    let wk_ops = vec![
        Op::Pause(550_000_000),
        Op::Put { key: "chaos.reroute".into(), val: Value::from(9i64) },
        Op::Commit,
        Op::Get { key: "chaos.reroute".into() },
    ];
    let timeout = Duration::from_secs(10);
    let h_obs = std::thread::spawn(move || drive_script(&observer, &obs_ops, epoch, timeout));
    let h_wk = std::thread::spawn(move || drive_script(&worker, &wk_ops, epoch, timeout));
    let obs = h_obs.join().expect("observer driver panicked");
    let wk = h_wk.join().expect("worker driver panicked");
    session.shutdown();

    assert!(obs.finished, "observer stalled: {:?}", obs.op_err);
    let during = up_list(&obs.replies[1]);
    assert!(
        !during.contains(&1),
        "rank 1 not reported down by 650ms (kill at 320ms, miss limit 3 @ 40ms); up = {during:?}"
    );
    let after = up_list(&obs.replies[3]);
    assert!(after.contains(&1), "rank 1 not re-joined by 1.25s; up = {after:?}");

    assert!(wk.finished, "worker stalled mid-blackout: {:?}", wk.op_err);
    assert_eq!(
        wk.op_err,
        vec![0, 0, 0, 0],
        "put/commit/get from the orphaned subtree must re-route and succeed"
    );
    assert_eq!(wk.replies[3].get("v").and_then(Value::as_uint), Some(9));
}
