//! Site-wide power capping through the hierarchy (paper §II challenges
//! 1 & 3: "dynamic power capping at the level of systems, compute racks,
//! and/or nodes"; power as the most elastic resource).
//!
//! ```text
//! cargo run --example power_capping
//! ```
//!
//! A center instance models its machines with the generalized resource
//! model, leases two cluster partitions, and then takes a site-wide power
//! cut. The cut propagates down the hierarchy as grant reductions;
//! schedulers immediately stop starting work the budget no longer covers,
//! and throughput recovers when the cap lifts.

use flux_core::{
    Fcfs, Instance, InstanceConfig, JobSpec, ResourceKind, ResourcePool, Workload,
};

fn running_watts(i: &Instance) -> u64 {
    i.grant_power_w() - i.free_power_w()
}

fn main() {
    // The generalized resource model describes the center.
    let mut pool = ResourcePool::new();
    let (center_res, clusters) =
        pool.build_center(&[("zin", 4, 16), ("cab", 2, 16)], 80_000, 500_000);
    let zin_nodes = clusters[0].1.len() as u32;
    let cab_nodes = clusters[1].1.len() as u32;
    println!(
        "center model: {} resources, {} nodes, site budget {} W, fs {} MB/s",
        pool.len(),
        pool.find_kind(center_res, &ResourceKind::Node).len(),
        80_000,
        pool.total_capacity(center_res, &ResourceKind::Filesystem),
    );

    // The framework layer manages it as an instance hierarchy.
    let mut center = Instance::root(
        InstanceConfig::new("center", zin_nodes + cab_nodes).with_power(80_000),
        Box::new(Fcfs),
    );
    let zin = center
        .spawn_child(
            InstanceConfig::new("zin", zin_nodes).with_power(40_000),
            Box::new(Fcfs),
        )
        .unwrap();
    let cab = center
        .spawn_child(
            InstanceConfig::new("cab", cab_nodes).with_power(20_000),
            Box::new(Fcfs),
        )
        .unwrap();

    // Steady-state load: hungry 400 W/node jobs.
    let mut wl = Workload::seeded(7);
    for spec in wl.uq_ensemble(200, 30_000) {
        let spec = JobSpec { power_per_node_w: 400, ..spec };
        center.child_mut(zin).unwrap().submit(spec);
    }
    for spec in wl.uq_ensemble(100, 30_000) {
        let spec = JobSpec { power_per_node_w: 400, ..spec };
        center.child_mut(cab).unwrap().submit(spec);
    }
    center.advance(10_000);
    println!(
        "t=10us : zin draws {:>6} W, cab draws {:>6} W",
        running_watts(center.child(zin).unwrap()),
        running_watts(center.child(cab).unwrap())
    );

    // Site emergency: the budget halves. The center reclaims headroom
    // from its children (only unused watts can move — elasticity is
    // cooperative) and re-caps them.
    let zin_free = center.child(zin).unwrap().free_power_w();
    let cab_free = center.child(cab).unwrap().free_power_w();
    center.shrink_child(zin, 0, zin_free * 3 / 4).expect("reclaim zin headroom");
    center.shrink_child(cab, 0, cab_free * 3 / 4).expect("reclaim cab headroom");
    center.cap_power(40_000);
    println!(
        "CAP    : site 80 kW -> 40 kW; zin grant {:>6} W, cab grant {:>6} W",
        center.child(zin).unwrap().grant_power_w(),
        center.child(cab).unwrap().grant_power_w()
    );

    center.advance(40_000);
    center.check_invariants();
    let zin_running_capped = center.child(zin).unwrap().running_len();
    println!(
        "t=40us : under the cap zin runs {} jobs ({} W), queue {}",
        zin_running_capped,
        running_watts(center.child(zin).unwrap()),
        center.child(zin).unwrap().queue_len()
    );

    // The emergency passes: grow the children back (parental consent).
    center.cap_power(80_000);
    center.request_grow(zin, 0, 20_000).expect("regrow zin");
    center.request_grow(cab, 0, 8_000).expect("regrow cab");
    center.advance(70_000);
    let zin_running_lifted = center.child(zin).unwrap().running_len();
    println!(
        "LIFT   : cap lifted; zin now runs {} jobs ({} W)",
        zin_running_lifted,
        running_watts(center.child(zin).unwrap())
    );

    let end = center.drain();
    center.check_invariants();
    println!(
        "drained: all {} + {} jobs complete at t = {:.3} ms (virtual)",
        center.child(zin).unwrap().history().len(),
        center.child(cab).unwrap().history().len(),
        end as f64 / 1e6
    );
    assert!(
        zin_running_lifted >= zin_running_capped,
        "throughput recovers when the cap lifts"
    );
}
