//! Quickstart: bring up a comms session, use the KVS, print the wire-up.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds an 8-node simulated session (the paper's Fig. 1 wire-up: event
//! plane, request/response tree, ring), then exercises the KVS API from
//! two client processes: put → commit → get, a fence, and a watch.

use flux_modules::standard_modules;
use flux_rt::script::{Op, ScriptClient};
use flux_rt::sim::SimSession;
use flux_sim::{NetParams, SimTime};
use flux_topo::{Ring, Tree};
use flux_value::Value;
use flux_wire::Rank;

fn print_wireup(size: u32, arity: u32) {
    let tree = Tree::new(size, arity);
    let ring = Ring::new(size);
    println!("comms session wire-up ({size} nodes, {arity}-ary tree):");
    println!("  event plane : root-sequenced broadcast down the tree");
    println!("  tree plane  : request/response + reductions");
    for r in tree.ranks() {
        let children = tree.children(r);
        if !children.is_empty() {
            let kids: Vec<String> = children.iter().map(|c| c.to_string()).collect();
            println!("    {r} -> {}", kids.join(", "));
        }
    }
    println!("  ring plane  : rank-addressed RPC");
    let hops: Vec<String> = tree.ranks().map(|r| ring.next(r).to_string()).collect();
    println!("    next-hop: [{}]", hops.join(" "));
    println!();
}

fn main() {
    let size = 8;
    print_wireup(size, 2);

    let mut session = SimSession::new(size, 2, NetParams::default(), |_| standard_modules());

    // A writer process on node 5 and a reader on node 3.
    let writer = ScriptClient::spawn(
        &mut session,
        Rank(5),
        vec![
            Op::Put { key: "demo.greeting".into(), val: Value::from("hello, flux") },
            Op::Put {
                key: "demo.coords".into(),
                val: Value::parse(r#"{"x": 1, "y": 2}"#).unwrap(),
            },
            Op::Commit,
            Op::Fence { name: "demo".into(), nprocs: 2 },
        ],
    );
    let reader = ScriptClient::spawn(
        &mut session,
        Rank(3),
        vec![
            Op::Fence { name: "demo".into(), nprocs: 2 },
            Op::Get { key: "demo.greeting".into() },
            Op::Get { key: "demo.coords".into() },
            Op::GetVersion,
        ],
    );

    // The heartbeat keeps the session alive indefinitely; step virtual
    // time until both scripts finish.
    let mut deadline = 0u64;
    while !(writer.borrow().finished && reader.borrow().finished) {
        deadline += 100_000_000;
        assert!(deadline <= 60_000_000_000, "scripts did not finish");
        session.run_until(SimTime::from_nanos(deadline));
    }
    let end = SimTime::from_nanos(deadline);

    let w = writer.borrow();
    let r = reader.borrow();
    assert!(w.finished && r.finished, "scripts completed");
    println!("writer on r5: commit -> version {}", w.replies[2].get("version").unwrap());
    println!(
        "reader on r3: demo.greeting = {}",
        r.replies[1].get("v").unwrap()
    );
    println!("reader on r3: demo.coords   = {}", r.replies[2].get("v").unwrap());
    println!(
        "reader on r3: store version  = {}",
        r.replies[3].get("version").unwrap()
    );
    println!(
        "\nsession ran to {} virtual; {} messages, {} KiB moved",
        end,
        session.engine().stats().messages_delivered,
        session.engine().stats().bytes_delivered / 1024,
    );
}
