//! MPI-style bootstrap over PMI (paper §IV-A / §V motivation).
//!
//! ```text
//! cargo run --example mpi_bootstrap
//! ```
//!
//! 64 "MPI" processes on 16 nodes wire up the way real MPI run-times do
//! over PMI: each process publishes its connection endpoint ("business
//! card") into the KVS, everyone fences, then each process reads its ring
//! neighbours' cards. The fence is the critical path the paper's KAP
//! benchmark models — "Unless all of the distributed processes complete
//! their KVS operations, their communication fabric cannot be
//! established."

use flux_kvs::KvsModule;
use flux_modules::BarrierModule;
use flux_pmi::{bootstrap_ops, BootstrapOp};
use flux_rt::script::{Op, ScriptClient};
use flux_rt::sim::SimSession;
use flux_sim::NetParams;
use flux_wire::Rank;

fn to_script(ops: Vec<BootstrapOp>) -> Vec<Op> {
    ops.into_iter()
        .map(|op| match op {
            BootstrapOp::Put { key, val } => Op::Put { key, val },
            BootstrapOp::Fence { name, nprocs } => Op::Fence { name, nprocs },
            BootstrapOp::Get { key } => Op::Get { key },
        })
        .collect()
}

fn main() {
    let nodes = 16u32;
    let procs: u64 = 64;
    let fanout = 2;

    let mut session = SimSession::new(nodes, 2, NetParams::default(), |_| {
        vec![Box::new(KvsModule::new()), Box::new(BarrierModule::new())]
    });

    let outcomes: Vec<_> = (0..procs)
        .map(|grank| {
            let node = Rank((grank % u64::from(nodes)) as u32);
            let script = to_script(bootstrap_ops("mpi-demo", grank, procs, fanout));
            ScriptClient::spawn(&mut session, node, script)
        })
        .collect();

    let end = session.run_until_quiet(None).expect("unbounded");

    let mut fence_done_max = 0u64;
    let mut wireup_done_max = 0u64;
    for (grank, o) in outcomes.iter().enumerate() {
        let o = o.borrow();
        assert!(o.finished, "rank {grank} bootstrapped");
        assert!(o.op_err.iter().all(|&e| e == 0), "rank {grank} errors: {:?}", o.op_err);
        // Ops: [put, fence, get, get]: check the neighbours' cards.
        for (i, reply) in o.replies[2..].iter().enumerate() {
            let peer = (grank as u64 + 1 + i as u64) % procs;
            let want = format!("endpoint://node/{peer}");
            assert_eq!(reply.get("v").and_then(|v| v.as_str()), Some(want.as_str()));
        }
        fence_done_max = fence_done_max.max(o.op_done[1].as_nanos());
        wireup_done_max = wireup_done_max.max(o.op_done.last().unwrap().as_nanos());
    }

    println!("{procs} MPI processes on {nodes} nodes bootstrapped over PMI:");
    println!("  exchange fence complete at {:.3} ms (virtual)", fence_done_max as f64 / 1e6);
    println!("  all business cards read at {:.3} ms (virtual)", wireup_done_max as f64 / 1e6);
    println!("  session idle at {end}");
    println!(
        "  {} messages / {} KiB over the three planes",
        session.engine().stats().messages_delivered,
        session.engine().stats().bytes_delivered / 1024
    );
}
