//! Hierarchical, multilevel job management (paper §III).
//!
//! ```text
//! cargo run --example hierarchical_jobs
//! ```
//!
//! A center-wide root instance owns 128 nodes. It leases subsets to two
//! child instances — a UQ ensemble runner (its own FCFS scheduler over
//! 100 small jobs) and a capability partition (EASY backfill over a mixed
//! queue) — demonstrating the unified job model: each child is a job
//! *and* a full RJMS instance. Midway, the ensemble asks its parent to
//! grow (parental consent), and at the end everything drains and the
//! leases return.

use flux_core::{EasyBackfill, Fcfs, Instance, InstanceConfig, JobState, Workload};

fn main() {
    let mut center = Instance::root(
        InstanceConfig::new("center", 128).with_power(128 * 400),
        Box::new(Fcfs),
    );
    println!(
        "center: {} nodes, {} W budget",
        center.grant_nodes(),
        center.grant_power_w()
    );

    // Lease 32 nodes to a UQ ensemble, 64 to a capability partition.
    let ensemble_id = center
        .spawn_child(
            InstanceConfig::new("uq-ensemble", 32).with_power(32 * 400),
            Box::new(Fcfs),
        )
        .expect("lease fits");
    let capability_id = center
        .spawn_child(
            InstanceConfig::new("capability", 64).with_power(64 * 400),
            Box::new(EasyBackfill),
        )
        .expect("lease fits");
    println!(
        "leased: 32 -> uq-ensemble (fcfs), 64 -> capability (easy-backfill); {} free",
        center.free_nodes()
    );

    // Fill both queues from the workload generators.
    let mut wl = Workload::seeded(2014);
    let uq_jobs = wl.uq_ensemble(100, 50_000);
    let cap_jobs = wl.capability_mix(40, 32, 200_000);
    for j in uq_jobs {
        center.child_mut(ensemble_id).unwrap().submit(j);
    }
    for j in cap_jobs {
        center.child_mut(capability_id).unwrap().submit(j);
    }

    // Run a while, then the ensemble requests more nodes (parental
    // consent): the center grants from its free pool.
    center.advance(100_000);
    center.check_invariants();
    let before = center.child(ensemble_id).unwrap().grant_nodes();
    match center.request_grow(ensemble_id, 16, 16 * 400) {
        Ok(()) => println!(
            "t=100us: ensemble grew {} -> {} nodes with parental consent",
            before,
            center.child(ensemble_id).unwrap().grant_nodes()
        ),
        Err(e) => println!("t=100us: grow denied: {e:?}"),
    }

    // Drain everything.
    let end = center.drain();
    center.check_invariants();

    for id in center.child_ids() {
        let c = center.child(id).unwrap();
        let done = c.history().iter().filter(|e| e.state == JobState::Complete).count();
        let avg_wait: f64 = {
            let waits: Vec<u64> = c
                .history()
                .iter()
                .filter_map(|e| e.start_ns.map(|s| s - e.submit_ns))
                .collect();
            waits.iter().sum::<u64>() as f64 / waits.len().max(1) as f64 / 1e3
        };
        println!(
            "{:>12}: {:3} jobs complete, mean wait {:8.1} us, grant {} nodes",
            c.name,
            done,
            avg_wait,
            c.grant_nodes()
        );
    }
    println!("all work drained at t = {:.3} ms (virtual)", end as f64 / 1e6);

    // Leases return to the center once children are idle.
    for id in center.child_ids() {
        center.close_child(id).unwrap();
    }
    assert_eq!(center.free_nodes(), 128);
    println!("children closed; center back to {} free nodes", center.free_nodes());
}
