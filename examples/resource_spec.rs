//! Declarative center description driving the scheduler (paper §III's
//! generalized resource model, via the JSON spec layer).
//!
//! ```text
//! cargo run --example resource_spec
//! ```
//!
//! A whole center is described as data (in the spirit of production
//! Flux's RDL), loaded into the resource graph, and used to size a
//! hierarchy of scheduling instances — one per cluster, with power
//! envelopes taken from the description.

use flux_core::{EasyBackfill, Fcfs, Instance, InstanceConfig, ResourceKind, ResourcePool, Workload};

const CENTER_SPEC: &str = r#"{
    "kind": "center", "name": "demo-center",
    "children": [
        { "kind": "power", "name": "site-feed", "capacity": 120000 },
        { "kind": "filesystem", "name": "lustre", "capacity": 500000 },
        { "kind": "cluster", "name": "zin",
          "racks": 4, "nodes_per_rack": 16, "rack_power_w": 24000 },
        { "kind": "cluster", "name": "cab",
          "racks": 2, "nodes_per_rack": 16, "rack_power_w": 24000,
          "cores": 32, "mem_gb": 64 },
        { "kind": "custom:burst-buffer", "name": "bb", "capacity": 800, "count": 4 }
    ]
}"#;

fn main() {
    let (pool, center) = ResourcePool::from_spec_text(CENTER_SPEC).expect("valid spec");
    println!("center description loaded: {} resource vertices", pool.len());
    for kind in [
        ResourceKind::Cluster,
        ResourceKind::Node,
        ResourceKind::Core,
        ResourceKind::Power,
        ResourceKind::Filesystem,
        ResourceKind::Custom("burst-buffer".into()),
    ] {
        let n = pool.find_kind(center, &kind).len();
        let cap = pool.total_capacity(center, &kind);
        println!("  {kind:<22} x{n:<4} total capacity {cap}");
    }

    // Build the instance hierarchy from the description: one child
    // instance per cluster, sized by its node count, power from its PDUs.
    let total_nodes = pool.find_kind(center, &ResourceKind::Node).len() as u32;
    let total_power = pool.total_capacity(center, &ResourceKind::Power);
    let mut root = Instance::root(
        InstanceConfig::new("demo-center", total_nodes).with_power(total_power),
        Box::new(Fcfs),
    );
    let mut wl = Workload::seeded(2014);
    for &cluster in &pool.find_kind(center, &ResourceKind::Cluster) {
        let name = pool.get(cluster).name.clone();
        let nodes = pool.find_kind(cluster, &ResourceKind::Node).len() as u32;
        let power = pool.total_capacity(cluster, &ResourceKind::Power);
        let id = root
            .spawn_child(
                InstanceConfig::new(name.clone(), nodes).with_power(power),
                Box::new(EasyBackfill),
            )
            .expect("cluster lease fits");
        for spec in wl.capability_mix(60, nodes, 50_000) {
            root.child_mut(id).unwrap().submit(spec);
        }
        println!("cluster {name}: {nodes} nodes, {power} W leased, 60 jobs queued");
    }

    let end = root.drain();
    root.check_invariants();
    for id in root.child_ids() {
        let c = root.child(id).unwrap();
        println!(
            "  {:<4} finished {} jobs (easy-backfill)",
            c.name,
            c.history().len()
        );
    }
    println!("all clusters drained at t = {:.3} ms (virtual)", end as f64 / 1e6);
}
