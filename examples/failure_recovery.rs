//! Interior node failure and overlay self-healing (paper §IV-A: the
//! planes "can self-heal when interior nodes fail"; Table I `live`).
//!
//! ```text
//! cargo run --example failure_recovery
//! ```
//!
//! A 15-broker session (binary tree) loses rank 5 — an interior node with
//! the subtree {11, 12} beneath it. The `live` module's
//! heartbeat-synchronized hellos detect the death; a `live.down` event
//! re-parents the orphans to rank 2; and a client on orphaned rank 11
//! keeps using the KVS as if nothing happened.

use flux_modules::standard_modules;
use flux_rt::script::{Op, ScriptClient};
use flux_rt::sim::SimSession;
use flux_sim::{NetParams, SimTime};
use flux_topo::{LiveSet, Tree};
use flux_value::Value;
use flux_wire::Rank;

fn main() {
    let size = 15u32;
    let victim = Rank(5);
    let tree = Tree::binary(size);
    println!(
        "session: {size} brokers, binary tree; rank {} parents {:?}",
        victim,
        tree.children(victim)
    );

    let mut session = SimSession::new(size, 2, NetParams::default(), |_| standard_modules());

    // Before the failure: a client on rank 11 writes through its normal
    // path 11 -> 5 -> 2 -> 0.
    let before = ScriptClient::spawn(
        &mut session,
        Rank(11),
        vec![
            Op::Put { key: "state.before".into(), val: Value::from("written via rank 5") },
            Op::Commit,
        ],
    );
    session.run_until(SimTime::from_nanos(500_000_000));
    assert!(before.borrow().finished);
    println!("t=0.5s : rank 11 committed via its parent (rank 5)");

    // Failure injection.
    session.kill_broker(victim);
    println!("t=0.5s : rank {victim} KILLED (messages to it now vanish)");

    // The live module needs miss_limit (3) heartbeats (100 ms each) to
    // declare it dead; give the session 2 virtual seconds.
    session.run_until(SimTime::from_nanos(2_500_000_000));

    // Show what self-healing predicts: the orphans re-attach to rank 2.
    let mut live = LiveSet::new(size);
    live.mark_down(victim);
    println!(
        "healed : effective parent of r11 is now {}, children of r2 are {:?}",
        live.effective_parent(&tree, Rank(11)).unwrap(),
        live.effective_children(&tree, Rank(2)),
    );

    // After the failure: the same orphaned rank keeps working, and reads
    // back both its old and new data.
    let after = ScriptClient::spawn(
        &mut session,
        Rank(11),
        vec![
            Op::Put { key: "state.after".into(), val: Value::from("written around the hole") },
            Op::Commit,
            Op::Get { key: "state.before".into() },
            Op::Get { key: "state.after".into() },
        ],
    );
    session.run_until(SimTime::from_nanos(5_000_000_000));
    let o = after.borrow();
    assert!(o.finished, "orphaned rank finished all ops");
    assert!(o.op_err.iter().all(|&e| e == 0), "no errors: {:?}", o.op_err);
    println!(
        "t=5s   : rank 11 reads state.before = {:?}",
        o.replies[2].get("v").unwrap().as_str().unwrap()
    );
    println!(
        "t=5s   : rank 11 reads state.after  = {:?}",
        o.replies[3].get("v").unwrap().as_str().unwrap()
    );
    println!(
        "\n{} messages dropped at the dead broker; the session routed around it.",
        session.engine().stats().messages_dropped
    );
}
