//! SHA1 (FIPS 180-1) implemented from scratch.
//!
//! A straightforward, dependency-free implementation processing 64-byte
//! blocks with the standard 80-round compression function. Throughput is
//! more than adequate for KVS content addressing (the simulator charges
//! virtual time for transfers, not hashing).

/// A 20-byte SHA1 digest.
pub type Digest = [u8; 20];

const H0: [u32; 5] = [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0];

/// Streaming SHA1 hasher.
///
/// ```
/// use flux_hash::Sha1;
/// assert_eq!(
///     Sha1::digest(b"abc")[..4],
///     [0xa9, 0x99, 0x3e, 0x36],
/// );
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    /// Partial block buffer.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 { state: H0, len: 0, buf: [0; 64], buf_len: 0 }
    }

    /// One-shot convenience: digest of `data`.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(rest.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80 then zeros until 8 bytes remain in the block,
        // then the big-endian bit length.
        self.update_padding(0x80);
        while self.buf_len != 56 {
            self.update_padding(0x00);
        }
        let len_bytes = bit_len.to_be_bytes();
        for &b in &len_bytes {
            self.update_padding(b);
        }
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Pushes one padding byte without advancing the message length.
    fn update_padding(&mut self, byte: u8) {
        self.buf[self.buf_len] = byte;
        self.buf_len += 1;
        if self.buf_len == 64 {
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: Digest) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180-1 appendix + well-known vectors.
    #[test]
    fn standard_vectors() {
        assert_eq!(hex(Sha1::digest(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(hex(Sha1::digest(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(Sha1::digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            hex(Sha1::digest(b"The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(hex(h.finalize()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_equals_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..200u8).collect();
        let want = Sha1::digest(&data);
        for split in 0..=data.len() {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn lengths_around_block_boundary() {
        // 55/56/57 and 63/64/65 byte messages exercise the padding paths.
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 127, 128, 129] {
            let data = vec![0x5au8; len];
            let d1 = Sha1::digest(&data);
            let mut h = Sha1::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }
}
