//! # flux-hash
//!
//! SHA1 and content-address identifiers for the Flux KVS.
//!
//! The ICPP'14 Flux paper content-addresses KVS objects by their SHA1
//! digest, borrowing the hash-tree design from ZFS and git (§IV-B). This
//! crate provides a from-scratch [`Sha1`] implementation (FIPS 180-1,
//! verified against the standard test vectors) and the [`ObjectId`] newtype
//! the rest of the system uses to reference stored objects.
//!
//! SHA1 is used here exactly as git uses it: as a content fingerprint for
//! deduplication and addressing inside a trusted session, not as a
//! collision-resistant security boundary.
//!
//! # Example
//!
//! ```
//! use flux_hash::{ObjectId, Sha1};
//!
//! let id = ObjectId::hash(b"hello world");
//! assert_eq!(id.to_hex(), "2aae6c35c94fcfb415dbe95f408b9ce91ee846ed");
//! assert_eq!(ObjectId::from_hex(&id.to_hex()).unwrap(), id);
//!
//! // Streaming interface:
//! let mut h = Sha1::new();
//! h.update(b"hello ");
//! h.update(b"world");
//! assert_eq!(ObjectId::from(h.finalize()), id);
//! ```


#![forbid(unsafe_code)]
#![deny(missing_docs)]
mod object_id;
mod sha1;

pub use object_id::{HexError, ObjectId};
pub use sha1::{Digest, Sha1};

#[cfg(test)]
mod proptests;
