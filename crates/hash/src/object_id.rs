//! [`ObjectId`]: the content address used throughout the KVS.

use crate::sha1::{Digest, Sha1};
use std::fmt;

/// A content address: the SHA1 digest of an object's canonical encoding.
///
/// Ordered and hashable so it can key maps; displayed as 40 hex digits like
/// git object names.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub Digest);

/// Error returned by [`ObjectId::from_hex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HexError {
    /// Input was not exactly 40 characters.
    BadLength(usize),
    /// Input contained a non-hex character at this position.
    BadDigit(usize),
}

impl fmt::Display for HexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HexError::BadLength(n) => write!(f, "object id must be 40 hex chars, got {n}"),
            HexError::BadDigit(i) => write!(f, "invalid hex digit at position {i}"),
        }
    }
}

impl std::error::Error for HexError {}

impl ObjectId {
    /// Hashes raw bytes into an id.
    pub fn hash(bytes: &[u8]) -> ObjectId {
        ObjectId(Sha1::digest(bytes))
    }

    /// The 40-character lowercase hex form.
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(40);
        for b in self.0 {
            s.push(HEX[(b >> 4) as usize] as char);
            s.push(HEX[(b & 0xf) as usize] as char);
        }
        s
    }

    /// A short 8-character prefix for logs, like `git log --oneline`.
    pub fn short(self) -> String {
        self.to_hex()[..8].to_owned()
    }

    /// Parses the 40-character hex form.
    pub fn from_hex(s: &str) -> Result<ObjectId, HexError> {
        let bytes = s.as_bytes();
        if bytes.len() != 40 {
            return Err(HexError::BadLength(bytes.len()));
        }
        let mut out = [0u8; 20];
        for (i, pair) in bytes.chunks_exact(2).enumerate() {
            let hi = unhex(pair[0]).ok_or(HexError::BadDigit(2 * i))?;
            let lo = unhex(pair[1]).ok_or(HexError::BadDigit(2 * i + 1))?;
            out[i] = (hi << 4) | lo;
        }
        Ok(ObjectId(out))
    }
}

const HEX: &[u8; 16] = b"0123456789abcdef";

fn unhex(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl From<Digest> for ObjectId {
    fn from(d: Digest) -> Self {
        ObjectId(d)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectId({})", self.short())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let id = ObjectId::hash(b"x");
        let hex = id.to_hex();
        assert_eq!(hex.len(), 40);
        assert_eq!(ObjectId::from_hex(&hex).unwrap(), id);
        // Uppercase also accepted.
        assert_eq!(ObjectId::from_hex(&hex.to_uppercase()).unwrap(), id);
    }

    #[test]
    fn from_hex_rejects_bad_input() {
        assert_eq!(ObjectId::from_hex("abc"), Err(HexError::BadLength(3)));
        let mut s = ObjectId::hash(b"x").to_hex();
        s.replace_range(10..11, "g");
        assert_eq!(ObjectId::from_hex(&s), Err(HexError::BadDigit(10)));
    }

    #[test]
    fn distinct_content_distinct_ids() {
        assert_ne!(ObjectId::hash(b"a"), ObjectId::hash(b"b"));
        assert_eq!(ObjectId::hash(b"a"), ObjectId::hash(b"a"));
    }

    #[test]
    fn display_and_short() {
        let id = ObjectId::hash(b"hello world");
        assert_eq!(format!("{id}"), "2aae6c35c94fcfb415dbe95f408b9ce91ee846ed");
        assert_eq!(id.short(), "2aae6c35");
        assert!(format!("{id:?}").contains("2aae6c35"));
    }

    #[test]
    fn ordering_is_total() {
        let mut ids = [ObjectId::hash(b"1"), ObjectId::hash(b"2"), ObjectId::hash(b"3")];
        ids.sort();
        assert!(ids.windows(2).all(|w| w[0] <= w[1]));
    }
}
