//! Property tests for SHA1 and ObjectId.

use crate::{ObjectId, Sha1};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Streaming with an arbitrary chunking equals the one-shot digest.
    #[test]
    fn chunked_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..512),
                              cuts in prop::collection::vec(0usize..512, 0..8)) {
        let want = Sha1::digest(&data);
        let mut h = Sha1::new();
        let mut pos = 0;
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c % (data.len() + 1)).collect();
        cuts.sort_unstable();
        for c in cuts {
            if c > pos {
                h.update(&data[pos..c]);
                pos = c;
            }
        }
        h.update(&data[pos..]);
        prop_assert_eq!(h.finalize(), want);
    }

    /// Hex round-trip always succeeds.
    #[test]
    fn hex_roundtrip(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let id = ObjectId::hash(&data);
        prop_assert_eq!(ObjectId::from_hex(&id.to_hex()).unwrap(), id);
    }

    /// Appending a byte always changes the digest (regression guard for
    /// length-handling bugs in padding).
    #[test]
    fn extension_changes_digest(data in prop::collection::vec(any::<u8>(), 0..256), b in any::<u8>()) {
        let d1 = ObjectId::hash(&data);
        let mut ext = data.clone();
        ext.push(b);
        prop_assert_ne!(d1, ObjectId::hash(&ext));
    }
}
