//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Elapsed time since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self` (a causality bug).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(earlier.0).expect("time went backwards"))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs from nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As floating-point microseconds (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// As floating-point milliseconds (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// As floating-point seconds (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating scalar multiply.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1e6)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        let t2 = t + SimDuration::from_nanos(1);
        assert_eq!((t2 - t).as_nanos(), 1);
        assert_eq!(t2.since(t), SimDuration::from_nanos(1));
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert!((SimDuration::from_micros(1500).as_millis_f64() - 1.5).abs() < 1e-12);
        assert!((SimDuration::from_millis(250).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn negative_elapsed_panics() {
        let early = SimTime::from_nanos(5);
        let late = SimTime::from_nanos(10);
        let _ = early.since(late);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn saturating_behaviour() {
        let huge = SimDuration::from_nanos(u64::MAX);
        assert_eq!(huge.saturating_mul(2).as_nanos(), u64::MAX);
        assert_eq!((SimTime::from_nanos(u64::MAX) + huge).as_nanos(), u64::MAX);
    }
}
