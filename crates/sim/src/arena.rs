//! Flat indexed storage for in-flight simulation events.
//!
//! The engine's priority queue (see [`crate::queue`]) orders lightweight
//! `(time, seq, index)` triples; the event payloads themselves live here,
//! in a slab with a free list, so queue operations never move a
//! [`flux_wire::Message`] and a dispatched slot's allocation is reused by
//! the next insertion. `seq` is the engine's global insertion counter:
//! it never repeats, which makes it the stable handle controlled
//! schedulers (flux-mc) use to name a pending event.

use crate::time::SimTime;

/// One slab slot. `kind` is `None` while the slot sits on the free list.
struct Slot<K> {
    at: SimTime,
    seq: u64,
    kind: Option<K>,
}

/// A slab of pending events indexed by dense `u32` handles.
pub(crate) struct EventArena<K> {
    slots: Vec<Slot<K>>,
    free: Vec<u32>,
    live: usize,
}

impl<K> EventArena<K> {
    pub(crate) fn new() -> EventArena<K> {
        EventArena { slots: Vec::new(), free: Vec::new(), live: 0 }
    }

    /// Number of live (not yet dispatched) events.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Stores an event, reusing a freed slot when one is available.
    pub(crate) fn insert(&mut self, at: SimTime, seq: u64, kind: K) -> u32 {
        self.live += 1;
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Slot { at, seq, kind: Some(kind) };
                idx
            }
            None => {
                // A u32 handle caps the arena at 4 G in-flight events;
                // the engine's event limit trips far earlier.
                let idx = u32::try_from(self.slots.len()).expect("event arena overflow");
                self.slots.push(Slot { at, seq, kind: Some(kind) });
                idx
            }
        }
    }

    /// Removes and returns the event at `idx`, freeing the slot.
    pub(crate) fn take(&mut self, idx: u32) -> Option<K> {
        let kind = self.slots[idx as usize].kind.take()?;
        self.free.push(idx);
        self.live -= 1;
        Some(kind)
    }

    /// Borrows the event at `idx`, if live.
    pub(crate) fn get(&self, idx: u32) -> Option<&K> {
        self.slots.get(idx as usize).and_then(|s| s.kind.as_ref())
    }

    /// Scheduled time of the live event at `idx`.
    pub(crate) fn at(&self, idx: u32) -> SimTime {
        self.slots[idx as usize].at
    }

    /// Finds the live event with insertion sequence `seq`. Linear over
    /// the slab: only controlled-scheduling drivers (model checking,
    /// small universes) call this.
    pub(crate) fn find_seq(&self, seq: u64) -> Option<u32> {
        self.slots
            .iter()
            .position(|s| s.seq == seq && s.kind.is_some())
            .map(|i| i as u32)
    }

    /// Iterates live events as `(at, seq, idx, kind)` in slab order.
    pub(crate) fn iter_live(&self) -> impl Iterator<Item = (SimTime, u64, u32, &K)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.kind.as_ref().map(|k| (s.at, s.seq, i as u32, k)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn slots_are_reused_after_take() {
        let mut a: EventArena<&'static str> = EventArena::new();
        let i0 = a.insert(t(1), 1, "a");
        let i1 = a.insert(t(2), 2, "b");
        assert_eq!(a.live(), 2);
        assert_eq!(a.take(i0), Some("a"));
        assert_eq!(a.take(i0), None, "double take returns nothing");
        assert_eq!(a.live(), 1);
        // The freed slot is recycled for the next insert.
        let i2 = a.insert(t(3), 3, "c");
        assert_eq!(i2, i0);
        assert_eq!(a.get(i2), Some(&"c"));
        assert_eq!(a.get(i1), Some(&"b"));
        assert_eq!(a.at(i2), t(3));
    }

    #[test]
    fn find_seq_sees_only_live_events() {
        let mut a: EventArena<u32> = EventArena::new();
        let i0 = a.insert(t(5), 10, 100);
        let _ = a.insert(t(6), 11, 101);
        assert_eq!(a.find_seq(10), Some(i0));
        a.take(i0).unwrap();
        assert_eq!(a.find_seq(10), None);
        assert_eq!(a.find_seq(11), Some(1));
        let live: Vec<u64> = a.iter_live().map(|(_, s, _, _)| s).collect();
        assert_eq!(live, vec![11]);
    }
}
