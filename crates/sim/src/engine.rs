//! The discrete-event engine.

use crate::actor::{Action, Actor, ActorId, Ctx, NodeId};
use crate::arena::EventArena;
use crate::net::NetParams;
use crate::queue::CalendarQueue;
use crate::time::{SimDuration, SimTime};
use flux_wire::{Message, MsgId, MsgType, Topic};

/// Aggregate counters maintained by the engine.
///
/// Deliberately *virtual-only*: two runs of the same seeded simulation
/// must compare equal field for field (determinism tests rely on it), so
/// wall-clock measurements live in the separate [`Throughput`] report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events processed (delivery, handling, timers).
    pub events: u64,
    /// Messages handed to actor handlers.
    pub messages_delivered: u64,
    /// Sum of wire sizes of delivered messages.
    pub bytes_delivered: u64,
    /// Messages dropped because the receiver was dead.
    pub messages_dropped: u64,
}

/// Wall-clock self-report: how fast the engine is chewing through its
/// virtual workload. Backed by [`EngineStats::events`] and the real time
/// accumulated inside `run*` calls; kept out of [`EngineStats`] so stats
/// stay bit-comparable across identical runs.
#[derive(Clone, Copy, Debug)]
pub struct Throughput {
    /// Events processed so far (mirrors [`EngineStats::events`]).
    pub events: u64,
    /// Real time spent inside `run`/`run_until`/`run_budgeted`.
    pub wall: std::time::Duration,
    /// Events per wall-clock second (0 when no time has been measured).
    pub events_per_sec: f64,
}

/// Event payloads held in the arena. `seq` breaks time ties
/// deterministically in insertion order, which makes whole simulations
/// bit-reproducible.
enum EventKind {
    /// A message finished propagating and reached `to`'s receive queue.
    Arrive { to: ActorId, from: ActorId, msg: Message, bytes: usize },
    /// `to`'s receive processing of a message completed; run the handler.
    Handle { to: ActorId, from: ActorId, msg: Message, bytes: usize },
    /// A timer fires.
    Timer { actor: ActorId, token: u64 },
    /// Run `on_start` for a newly added actor.
    Start { actor: ActorId },
}

impl EventKind {
    /// The actor this event will act on when dispatched.
    fn target(&self) -> ActorId {
        match self {
            EventKind::Start { actor } | EventKind::Timer { actor, .. } => *actor,
            EventKind::Arrive { to, .. } | EventKind::Handle { to, .. } => *to,
        }
    }
}

struct Slot {
    actor: Box<dyn Actor>,
    node: NodeId,
    dead: bool,
    tx_free: SimTime,
    rx_free: SimTime,
}

/// What a pending heap entry will do when dispatched, summarized for
/// controlled-scheduling drivers (the flux-mc model checker). The
/// payload itself stays inside the engine; the summary carries enough to
/// classify the event and decide delivery order.
#[derive(Clone, Debug)]
pub enum PendingKind {
    /// An actor's `on_start` call.
    Start,
    /// A timer firing with this token.
    Timer {
        /// The token the actor armed the timer with.
        token: u64,
    },
    /// A message in flight. `handle == false` is the propagation leg
    /// (wire transfer completing); `handle == true` is the delivery leg
    /// (the receiver's handler will run).
    Message {
        /// Sending actor.
        from: ActorId,
        /// True for the delivery (handler) leg.
        handle: bool,
        /// Wire message type.
        msg_type: MsgType,
        /// Topic (shared; cloning it is a refcount bump, so summarizing
        /// the pending set allocates nothing per event).
        topic: Topic,
        /// Message id.
        id: MsgId,
    },
}

/// One pending heap entry, summarized for controlled scheduling.
#[derive(Clone, Debug)]
pub struct PendingEvent {
    /// Scheduled virtual dispatch time (the default order's primary key).
    pub at: SimTime,
    /// Insertion sequence number: the default order's tie-break, and the
    /// stable handle [`Engine::dispatch_pending`] accepts.
    pub seq: u64,
    /// Target actor.
    pub to: ActorId,
    /// Event classification.
    pub kind: PendingKind,
}

/// The discrete-event engine: owns actors, the clock, and the event queue
/// (a flat [`EventArena`] for payloads plus a [`CalendarQueue`] ordering
/// `(time, seq, index)` triples).
pub struct Engine {
    params: NetParams,
    slots: Vec<Slot>,
    node_count: usize,
    /// Pending event payloads, indexed by queue entries.
    arena: EventArena<EventKind>,
    /// Dispatch order over arena indices.
    queue: CalendarQueue,
    seq: u64,
    now: SimTime,
    stopped: bool,
    stats: EngineStats,
    event_limit: u64,
    /// Action buffer handed to actor contexts; kept on the engine so its
    /// allocation is reused across every handler invocation.
    actions: Vec<Action>,
    /// Real time accumulated inside `run*` calls (see [`Throughput`]).
    run_wall: std::time::Duration,
}

impl Engine {
    /// Creates an engine with the given cost model.
    pub fn new(params: NetParams) -> Engine {
        Engine {
            params,
            slots: Vec::new(),
            node_count: 0,
            arena: EventArena::new(),
            queue: CalendarQueue::new(),
            seq: 0,
            now: SimTime::ZERO,
            stopped: false,
            stats: EngineStats::default(),
            event_limit: u64::MAX,
            actions: Vec::new(),
            run_wall: std::time::Duration::ZERO,
        }
    }

    /// Caps the number of events processed; exceeding it panics. Useful to
    /// catch protocol livelock in tests.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Adds a host. Actors placed on the same node use the IPC cost class.
    pub fn add_node(&mut self) -> NodeId {
        self.node_count += 1;
        self.node_count - 1
    }

    /// Places an actor on `node` and schedules its `on_start` at the
    /// current time.
    ///
    /// # Panics
    /// Panics if `node` was not created by [`Engine::add_node`].
    pub fn add_actor(&mut self, node: NodeId, actor: Box<dyn Actor>) -> ActorId {
        assert!(node < self.node_count, "unknown node {node}");
        let id = self.slots.len();
        self.slots.push(Slot {
            actor,
            node,
            dead: false,
            tx_free: self.now,
            rx_free: self.now,
        });
        self.push_event(self.now, EventKind::Start { actor: id });
        id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Counters so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Events-per-wall-second self-report across all `run*` calls so far.
    pub fn throughput(&self) -> Throughput {
        let secs = self.run_wall.as_secs_f64();
        Throughput {
            events: self.stats.events,
            wall: self.run_wall,
            events_per_sec: if secs > 0.0 { self.stats.events as f64 / secs } else { 0.0 },
        }
    }

    /// The node an actor is placed on.
    pub fn node_of(&self, a: ActorId) -> NodeId {
        self.slots[a].node
    }

    /// True if `a` has been killed.
    pub fn is_dead(&self, a: ActorId) -> bool {
        self.slots[a].dead
    }

    /// Kills an actor from outside the simulation (failure injection
    /// between runs).
    pub fn kill(&mut self, a: ActorId) {
        if !self.slots[a].dead {
            self.slots[a].dead = true;
            let now = self.now;
            self.slots[a].actor.on_kill(now);
        }
    }

    /// Borrows an actor, e.g. to inspect its final state after [`Engine::run`].
    ///
    /// The actor must be downcast by the caller; typed access is normally
    /// provided by the harness that created the actor (see flux-rt).
    pub fn actor_mut(&mut self, a: ActorId) -> &mut dyn Actor {
        &mut *self.slots[a].actor
    }

    /// Runs until the event queue drains or an actor calls [`Ctx::stop`].
    /// Returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        self.run_inner(None)
    }

    /// Runs until `deadline` (inclusive), the queue drains, or an actor
    /// stops the simulation. Returns the current virtual time, which on a
    /// deadline-bounded run is clamped forward to the deadline whether
    /// the run hit a later event *or drained early* — either way the
    /// simulated interval up to the deadline has fully elapsed, and
    /// repeated bounded runs make forward progress.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        self.run_inner(Some(deadline))
    }

    fn run_inner(&mut self, deadline: Option<SimTime>) -> SimTime {
        // flux-lint: allow(nondet) — run_wall is diagnostics-only accounting,
        // excluded from record equality and every simulated outcome.
        let wall = std::time::Instant::now();
        while !self.stopped {
            let Some((t, _, _)) = self.queue.peek_min() else {
                // Drained: a bounded run still accounts for the idle tail
                // up to its deadline (an unbounded run keeps the time of
                // the last event).
                if let Some(d) = deadline {
                    self.now = self.now.max(d);
                }
                break;
            };
            if let Some(d) = deadline {
                if t > d {
                    self.now = self.now.max(d);
                    break;
                }
            }
            self.pop_dispatch();
        }
        self.run_wall += wall.elapsed();
        self.now
    }

    /// Like [`Engine::run`], but processes at most `budget` further
    /// events. Returns the current virtual time and whether the run went
    /// quiescent (queue drained or an actor stopped the simulation) within
    /// the budget; `false` means events were still pending — a protocol
    /// livelock if the caller expected quiescence.
    pub fn run_budgeted(&mut self, budget: u64) -> (SimTime, bool) {
        // flux-lint: allow(nondet) — run_wall is diagnostics-only accounting,
        // excluded from record equality and every simulated outcome.
        let wall = std::time::Instant::now();
        let mut left = budget;
        let quiet = loop {
            if self.stopped || self.arena.live() == 0 {
                break true;
            }
            if left == 0 {
                break false;
            }
            left -= 1;
            self.pop_dispatch();
        };
        self.run_wall += wall.elapsed();
        (self.now, quiet)
    }

    /// Pops and dispatches the earliest pending event.
    fn pop_dispatch(&mut self) {
        let Some((t, _, idx)) = self.queue.pop_min() else { return };
        let Some(kind) = self.arena.take(idx) else { return };
        self.now = t;
        self.count_event();
        self.dispatch(kind);
    }

    /// Counts one dispatched event against the livelock limit. Every
    /// dispatch path (default order *and* controlled scheduling) must go
    /// through this, so the limit cannot be bypassed.
    fn count_event(&mut self) {
        self.stats.events += 1;
        assert!(self.stats.events <= self.event_limit, "event limit exceeded: livelock?");
    }

    // ----- controlled scheduling (model checking) --------------------------

    /// Summarizes every pending queue entry in default dispatch order
    /// (time, then insertion sequence). A controlled-scheduling driver
    /// picks one and dispatches it with [`Engine::dispatch_pending`]; the
    /// default schedule is always index 0.
    ///
    /// Events destined for dead actors are omitted: they can only be
    /// dropped, so they are not schedulable choices — listing them would
    /// multiply a model checker's state space by interleavings that all
    /// collapse to the same drop. (The default-order runner still
    /// processes and counts them as drops.)
    pub fn pending_events(&self) -> Vec<PendingEvent> {
        let mut entries: Vec<PendingEvent> = self
            .arena
            .iter_live()
            .filter_map(|(at, seq, _idx, kind)| {
                let to = kind.target();
                if self.slots[to].dead {
                    return None;
                }
                let kind = match kind {
                    EventKind::Start { .. } => PendingKind::Start,
                    EventKind::Timer { token, .. } => PendingKind::Timer { token: *token },
                    EventKind::Arrive { from, msg, .. } => PendingKind::Message {
                        from: *from,
                        handle: false,
                        msg_type: msg.header.msg_type,
                        topic: msg.header.topic.clone(),
                        id: msg.header.id,
                    },
                    EventKind::Handle { from, msg, .. } => PendingKind::Message {
                        from: *from,
                        handle: true,
                        msg_type: msg.header.msg_type,
                        topic: msg.header.topic.clone(),
                        id: msg.header.id,
                    },
                };
                Some(PendingEvent { at, seq, to, kind })
            })
            .collect();
        entries.sort_unstable_by_key(|e| (e.at, e.seq));
        entries
    }

    /// Dispatches the pending entry with insertion sequence `seq` (from
    /// [`Engine::pending_events`]) out of default order, clamping the
    /// clock forward monotonically (virtual time never runs backwards,
    /// so actor-visible timestamps stay sane under reordering). Returns
    /// false if no such entry exists.
    ///
    /// Counts against the event limit exactly like default-order
    /// dispatch, so a controlled schedule cannot livelock past it.
    pub fn dispatch_pending(&mut self, seq: u64) -> bool {
        let Some((t, idx)) = self.queue.remove_seq(seq) else { return false };
        let Some(kind) = self.arena.take(idx) else { return false };
        self.now = self.now.max(t);
        self.count_event();
        self.dispatch(kind);
        true
    }

    /// Duplicates a pending message entry (either leg), modelling a
    /// transport-duplicated frame: the copy is re-enqueued at the same
    /// time with a fresh sequence number, so the original still
    /// dispatches first under the default order. Returns false if `seq`
    /// is unknown or not a message event.
    pub fn duplicate_pending(&mut self, seq: u64) -> bool {
        let Some(idx) = self.arena.find_seq(seq) else { return false };
        let dup = match self.arena.get(idx) {
            Some(EventKind::Arrive { to, from, msg, bytes }) => {
                EventKind::Arrive { to: *to, from: *from, msg: msg.clone(), bytes: *bytes }
            }
            Some(EventKind::Handle { to, from, msg, bytes }) => {
                EventKind::Handle { to: *to, from: *from, msg: msg.clone(), bytes: *bytes }
            }
            _ => return false,
        };
        let t = self.arena.at(idx);
        self.push_event(t, dup);
        true
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::Start { actor } => {
                if self.slots[actor].dead {
                    return;
                }
                let mut actions = std::mem::take(&mut self.actions);
                {
                    let mut ctx = Ctx { now: self.now, self_id: actor, actions: &mut actions };
                    self.slots[actor].actor.on_start(&mut ctx);
                }
                self.actions = actions;
                self.drain_actions(actor);
            }
            EventKind::Timer { actor, token } => {
                if self.slots[actor].dead {
                    return;
                }
                let mut actions = std::mem::take(&mut self.actions);
                {
                    let mut ctx = Ctx { now: self.now, self_id: actor, actions: &mut actions };
                    self.slots[actor].actor.on_timer(&mut ctx, token);
                }
                self.actions = actions;
                self.drain_actions(actor);
            }
            EventKind::Arrive { to, from, msg, bytes } => {
                if self.slots[to].dead {
                    self.stats.messages_dropped += 1;
                    return;
                }
                // Serialize receive processing: the message occupies the
                // receiver from max(now, rx_free) for rx_time.
                let rx_start = self.now.max(self.slots[to].rx_free);
                let rx_end = rx_start + self.params.rx_time(bytes);
                self.slots[to].rx_free = rx_end;
                self.push_event(rx_end, EventKind::Handle { to, from, msg, bytes });
            }
            EventKind::Handle { to, from, msg, bytes } => {
                if self.slots[to].dead {
                    self.stats.messages_dropped += 1;
                    return;
                }
                self.stats.messages_delivered += 1;
                self.stats.bytes_delivered += bytes as u64;
                let mut actions = std::mem::take(&mut self.actions);
                {
                    let mut ctx = Ctx { now: self.now, self_id: to, actions: &mut actions };
                    self.slots[to].actor.on_message(&mut ctx, from, msg);
                }
                self.actions = actions;
                self.drain_actions(to);
            }
        }
    }

    fn drain_actions(&mut self, origin: ActorId) {
        // Actions may enqueue further actions only via events, so a single
        // pass suffices. The buffer is drained (not consumed) and handed
        // back, so one allocation serves every handler invocation.
        let mut actions = std::mem::take(&mut self.actions);
        for action in actions.drain(..) {
            match action {
                Action::Send { to, msg, extra_delay } => {
                    self.do_send(origin, to, msg, extra_delay)
                }
                Action::SetTimer { delay, token } => {
                    self.push_event(self.now + delay, EventKind::Timer { actor: origin, token });
                }
                Action::Kill { victim } => {
                    assert!(victim < self.slots.len(), "kill of unknown actor {victim}");
                    if !self.slots[victim].dead {
                        self.slots[victim].dead = true;
                        let now = self.now;
                        self.slots[victim].actor.on_kill(now);
                    }
                }
                Action::Stop => self.stopped = true,
            }
        }
        debug_assert!(self.actions.is_empty(), "actions queued outside a handler");
        self.actions = actions;
    }

    fn do_send(&mut self, from: ActorId, to: ActorId, msg: Message, extra_delay: SimDuration) {
        assert!(to < self.slots.len(), "send to unknown actor {to}");
        if self.slots[to].dead {
            self.stats.messages_dropped += 1;
            return;
        }
        let bytes = msg.wire_size();
        let same_node = self.slots[from].node == self.slots[to].node;
        // Serialize the transmit path: store-and-forward.
        let tx_start = self.now.max(self.slots[from].tx_free);
        let tx_end = tx_start + self.params.tx_time(bytes, same_node);
        self.slots[from].tx_free = tx_end;
        let arrive = tx_end + self.params.latency(same_node) + extra_delay;
        self.push_event(arrive, EventKind::Arrive { to, from, msg, bytes });
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        self.seq += 1;
        let idx = self.arena.insert(at, self.seq, kind);
        self.queue.push(at, self.seq, idx);
        // Every queue entry has a live arena slot and vice versa: both
        // sides remove eagerly (no lazy tombstones).
        debug_assert_eq!(self.queue.len(), self.arena.live());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use flux_value::Value;
    use flux_wire::{MsgId, Rank, Topic};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn msg(seq: u64, size: usize) -> Message {
        Message::event(
            Topic::from_static("t"),
            MsgId { origin: Rank(0), seq },
            Rank(0),
            Value::from("x".repeat(size)),
        )
    }

    /// Shared arrival log: (seq, time) pairs.
    type DeliveryLog = Rc<RefCell<Vec<(u64, SimTime)>>>;

    /// Records arrival (seq, time) pairs.
    struct Recorder {
        log: DeliveryLog,
    }
    impl Actor for Recorder {
        fn on_message(&mut self, ctx: &mut Ctx<'_>, _from: ActorId, m: Message) {
            self.log.borrow_mut().push((m.header.id.seq, ctx.now()));
        }
    }

    /// Sends a burst of messages at start.
    struct Burst {
        to: ActorId,
        sizes: Vec<usize>,
    }
    impl Actor for Burst {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for (i, &s) in self.sizes.iter().enumerate() {
                ctx.send(self.to, msg(i as u64, s));
            }
        }
        fn on_message(&mut self, _: &mut Ctx<'_>, _: ActorId, _: Message) {}
    }

    fn two_node_setup(sizes: Vec<usize>) -> (Engine, DeliveryLog) {
        let mut eng = Engine::new(NetParams::default());
        let n0 = eng.add_node();
        let n1 = eng.add_node();
        let log = Rc::new(RefCell::new(Vec::new()));
        let rec = eng.add_actor(n1, Box::new(Recorder { log: Rc::clone(&log) }));
        eng.add_actor(n0, Box::new(Burst { to: rec, sizes }));
        (eng, log)
    }

    #[test]
    fn fifo_delivery_per_pair() {
        let (mut eng, log) = two_node_setup((0..20).map(|_| 64).collect());
        eng.run();
        let got: Vec<u64> = log.borrow().iter().map(|&(s, _)| s).collect();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn transfer_cost_scales_with_size() {
        let (mut eng1, log1) = two_node_setup(vec![8]);
        eng1.run();
        let (mut eng2, log2) = two_node_setup(vec![1 << 20]);
        eng2.run();
        let t_small = log1.borrow()[0].1;
        let t_big = log2.borrow()[0].1;
        assert!(t_big.as_nanos() > 10 * t_small.as_nanos(), "{t_small} vs {t_big}");
    }

    #[test]
    fn tx_serialization_queues_sends() {
        // 10 × 64 KiB back-to-back: the last arrival must be ~10 transfer
        // times out, not 1 (store-and-forward).
        let (mut eng, log) = two_node_setup(vec![64 << 10; 10]);
        eng.run();
        let log = log.borrow();
        let first = log.first().unwrap().1;
        let last = log.last().unwrap().1;
        assert!(
            last.as_nanos() - first.as_nanos() > 8 * (first.as_nanos() / 2),
            "first {first}, last {last}"
        );
    }

    #[test]
    fn determinism() {
        let run = || {
            let (mut eng, log) = two_node_setup(vec![100, 5000, 8, 64 << 10, 17]);
            eng.run();
            let v = log.borrow().clone();
            (v, eng.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn timers_fire_in_order() {
        struct T {
            log: Rc<RefCell<Vec<u64>>>,
        }
        impl Actor for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_micros(30), 3);
                ctx.set_timer(SimDuration::from_micros(10), 1);
                ctx.set_timer(SimDuration::from_micros(20), 2);
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ActorId, _: Message) {}
            fn on_timer(&mut self, _: &mut Ctx<'_>, token: u64) {
                self.log.borrow_mut().push(token);
            }
        }
        let mut eng = Engine::new(NetParams::default());
        let n = eng.add_node();
        let log = Rc::new(RefCell::new(Vec::new()));
        eng.add_actor(n, Box::new(T { log: Rc::clone(&log) }));
        eng.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn dead_actors_drop_messages() {
        let (mut eng, log) = two_node_setup(vec![64; 5]);
        // Kill the recorder (actor id 0) before running.
        eng.kill(0);
        eng.run();
        assert!(log.borrow().is_empty());
        assert_eq!(eng.stats().messages_dropped, 5);
        assert!(eng.is_dead(0));
    }

    #[test]
    fn stop_halts_simulation() {
        struct Stopper;
        impl Actor for Stopper {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_micros(1), 0);
                ctx.set_timer(SimDuration::from_secs(100), 1);
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ActorId, _: Message) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                assert_eq!(token, 0, "second timer must never fire");
                ctx.stop();
            }
        }
        let mut eng = Engine::new(NetParams::default());
        let n = eng.add_node();
        eng.add_actor(n, Box::new(Stopper));
        let end = eng.run();
        assert!(end < SimTime::from_nanos(1_000_000_000));
    }

    #[test]
    fn run_until_respects_deadline() {
        let (mut eng, log) = two_node_setup(vec![64; 3]);
        let deadline = SimTime::from_nanos(100);
        let t = eng.run_until(deadline);
        assert!(t <= deadline);
        let _ = log;
        // Remaining events still processed by a full run.
        eng.run();
        assert_eq!(eng.stats().messages_delivered, 3);
    }

    #[test]
    fn run_until_clamps_clock_on_both_paths() {
        // Path 1: the queue drains before the deadline. The clock must
        // still land on the deadline — the simulated interval elapsed —
        // instead of sticking at the last event.
        let (mut eng, log) = two_node_setup(vec![64; 2]);
        let deadline = SimTime::from_nanos(5_000_000_000);
        let t = eng.run_until(deadline);
        assert_eq!(log.borrow().len(), 2, "all traffic done well before 5s");
        assert_eq!(t, deadline, "drained run must account the idle tail");
        assert_eq!(eng.now(), deadline);

        // Path 2: a pending event beyond the deadline also clamps to the
        // deadline (pre-existing behaviour, kept).
        struct FarTimer;
        impl Actor for FarTimer {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(SimDuration::from_secs(60), 0);
            }
            fn on_message(&mut self, _: &mut Ctx<'_>, _: ActorId, _: Message) {}
        }
        let mut eng2 = Engine::new(NetParams::default());
        let n = eng2.add_node();
        eng2.add_actor(n, Box::new(FarTimer));
        let d2 = SimTime::from_nanos(1_000_000_000);
        assert_eq!(eng2.run_until(d2), d2);
        // An unbounded run never clamps: it ends at the last event time.
        let end = eng2.run();
        assert_eq!(end, SimTime::from_nanos(60_000_000_000));
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_applies_to_controlled_dispatch() {
        // Regression: dispatch_pending used to count events without
        // checking the limit, so a controlled schedule could livelock
        // straight past it.
        let (mut eng, _log) = two_node_setup(vec![64; 3]);
        eng.set_event_limit(2);
        while let Some(e) = eng.pending_events().first().cloned() {
            assert!(eng.dispatch_pending(e.seq));
        }
    }

    #[test]
    fn pending_events_excludes_dead_targets() {
        let (mut eng, _log) = two_node_setup(vec![64; 4]);
        // Let the burst get its sends in flight.
        let before = loop {
            let pend = eng.pending_events();
            if pend.iter().any(|e| matches!(e.kind, PendingKind::Message { .. })) {
                break pend.len();
            }
            let first = pend.first().cloned().expect("events pending");
            assert!(eng.dispatch_pending(first.seq));
        };
        assert!(before > 0);
        // Killing the recorder (actor 0) hides every event aimed at it:
        // they are not schedulable choices, only drops.
        eng.kill(0);
        let after = eng.pending_events();
        assert!(after.len() < before, "{before} -> {}", after.len());
        assert!(after.iter().all(|e| e.to != 0));
        // The default-order runner still processes the hidden events as
        // drops — accounting is unchanged.
        eng.run();
        assert_eq!(eng.stats().messages_dropped, 4);
    }

    #[test]
    fn throughput_reports_wall_rate() {
        let (mut eng, _log) = two_node_setup(vec![64; 8]);
        assert_eq!(eng.throughput().events, 0);
        assert_eq!(eng.throughput().events_per_sec, 0.0);
        eng.run();
        let tp = eng.throughput();
        assert_eq!(tp.events, eng.stats().events);
        assert!(tp.events > 0);
        assert!(tp.events_per_sec > 0.0);
        assert!(tp.wall > std::time::Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_catches_livelock() {
        struct PingPong {
            peer: ActorId,
        }
        impl Actor for PingPong {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(self.peer, msg(0, 8));
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ActorId, m: Message) {
                ctx.send(from, m);
            }
        }
        let mut eng = Engine::new(NetParams::default());
        let n = eng.add_node();
        // Two mutually-pinging actors; ids are assigned sequentially.
        let a = eng.add_actor(n, Box::new(PingPong { peer: 1 }));
        let _b = eng.add_actor(n, Box::new(PingPong { peer: a }));
        eng.set_event_limit(1000);
        eng.run();
    }

    #[test]
    fn controlled_dispatch_reorders_and_duplicates() {
        let (mut eng, log) = two_node_setup(vec![64; 3]);
        // Drain Start and propagation legs in default order; stop when
        // only delivery (Handle) legs remain.
        loop {
            let pend = eng.pending_events();
            let Some(next) = pend
                .iter()
                .find(|e| !matches!(e.kind, PendingKind::Message { handle: true, .. }))
            else {
                break;
            };
            assert!(eng.dispatch_pending(next.seq));
        }
        let handles = eng.pending_events();
        assert_eq!(handles.len(), 3, "{handles:?}");
        // Duplicate the middle delivery, then dispatch everything in
        // reverse order: the recorder must see the reversed sequence
        // with the duplicate in place.
        assert!(eng.duplicate_pending(handles[1].seq));
        for e in eng.pending_events().iter().rev() {
            assert!(eng.dispatch_pending(e.seq));
        }
        let got: Vec<u64> = log.borrow().iter().map(|&(s, _)| s).collect();
        assert_eq!(got, vec![2, 1, 1, 0]);
        // Unknown seqs are rejected; timers/starts cannot be duplicated.
        assert!(!eng.dispatch_pending(u64::MAX));
        assert!(!eng.duplicate_pending(u64::MAX));
    }

    #[test]
    fn controlled_dispatch_keeps_time_monotonic() {
        let (mut eng, _log) = two_node_setup(vec![64; 2]);
        // Dispatch the latest pending event first: the clock advances to
        // its time and must not rewind when earlier events follow.
        while let Some(last) = eng.pending_events().last().cloned() {
            let before = eng.now();
            assert!(eng.dispatch_pending(last.seq));
            assert!(eng.now() >= before);
        }
    }

    #[test]
    fn run_budgeted_reports_livelock() {
        struct PingPong {
            peer: ActorId,
        }
        impl Actor for PingPong {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(self.peer, msg(0, 8));
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ActorId, m: Message) {
                ctx.send(from, m);
            }
        }
        let mut eng = Engine::new(NetParams::default());
        let n = eng.add_node();
        let a = eng.add_actor(n, Box::new(PingPong { peer: 1 }));
        let _b = eng.add_actor(n, Box::new(PingPong { peer: a }));
        let (_, quiet) = eng.run_budgeted(500);
        assert!(!quiet, "ping-pong never quiesces");

        let (mut eng2, log) = two_node_setup(vec![64; 3]);
        let (_, quiet) = eng2.run_budgeted(10_000);
        assert!(quiet);
        assert_eq!(log.borrow().len(), 3);
    }

    #[test]
    fn ipc_faster_than_network() {
        // Same payload: co-located pair vs remote pair.
        let time_for = |colocate: bool| {
            let mut eng = Engine::new(NetParams::default());
            let n0 = eng.add_node();
            let n1 = if colocate { n0 } else { eng.add_node() };
            let log = Rc::new(RefCell::new(Vec::new()));
            let rec = eng.add_actor(n1, Box::new(Recorder { log: Rc::clone(&log) }));
            eng.add_actor(n0, Box::new(Burst { to: rec, sizes: vec![32 << 10] }));
            eng.run();
            let t = log.borrow()[0].1;
            t
        };
        assert!(time_for(true) < time_for(false));
    }
}
