//! A two-tier calendar queue ordering pending events by `(time, seq)`.
//!
//! The classic binary-heap event queue pays `O(log n)` comparisons *and a
//! cache miss per level* on every push/pop; at paper scale (8192-rank KAP
//! cells, hundreds of thousands of in-flight events) the heap itself
//! shows up in profiles. Discrete-event traffic is heavily clustered in
//! the near future — message legs land within microseconds, only
//! heartbeat-class timers sit far out — which is exactly the access
//! pattern a calendar queue exploits:
//!
//! * **near tier** — a ring of [`NBUCKETS`] buckets, each
//!   2^[`WIDTH_SHIFT`] ns wide, covering a sliding window starting at the
//!   last pop. Push is O(1) (append to the bucket for the event's time
//!   slice); pop scans the current bucket — typically a handful of
//!   entries — for the `(time, seq)` minimum.
//! * **far tier** — a binary heap for everything beyond the window
//!   (idle-period timers). As the window advances, far events migrate
//!   into their near bucket; when the near tier drains entirely the
//!   window jumps straight to the earliest far event.
//!
//! Ordering is **exactly** the total order the old heap produced —
//! `(time, insertion seq)` — because cross-bucket order is by time slice
//! and in-bucket selection compares the full key. Bit-reproducibility of
//! golden simulations is pinned by tests.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Queue entry: scheduled time, insertion sequence, event-arena index.
type Entry = (SimTime, u64, u32);

/// Number of near-tier buckets (must be a power of two).
const NBUCKETS: usize = 1024;
/// log2 of the bucket width in nanoseconds (4.096 µs per bucket — a few
/// message latencies; the window then spans ~4.2 ms of virtual time).
const WIDTH_SHIFT: u32 = 12;

pub(crate) struct CalendarQueue {
    buckets: Vec<Vec<Entry>>,
    /// Ring index of the bucket whose time slice starts at `base`.
    cur: usize,
    /// Start of the current bucket's time slice (ns, multiple of the width).
    base: u64,
    /// Entries across all near buckets.
    near: usize,
    far: BinaryHeap<Reverse<Entry>>,
}

impl CalendarQueue {
    pub(crate) fn new() -> CalendarQueue {
        CalendarQueue {
            buckets: (0..NBUCKETS).map(|_| Vec::new()).collect(),
            cur: 0,
            base: 0,
            near: 0,
            far: BinaryHeap::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.near + self.far.len()
    }

    fn window_end(&self) -> u64 {
        self.base + ((NBUCKETS as u64) << WIDTH_SHIFT)
    }

    fn bucket_of(&self, t: u64) -> usize {
        ((t >> WIDTH_SHIFT) as usize) % NBUCKETS
    }

    pub(crate) fn push(&mut self, at: SimTime, seq: u64, idx: u32) {
        let t = at.as_nanos();
        if t >= self.window_end() {
            self.far.push(Reverse((at, seq, idx)));
        } else {
            // Times before the window start (possible after a controlled
            // scheduler jumped the clock) collapse into the current
            // bucket; in-bucket selection still orders them first.
            let b = if t < self.base { self.cur } else { self.bucket_of(t) };
            self.buckets[b].push((at, seq, idx));
            self.near += 1;
        }
    }

    /// Pulls far events that now fall inside the window into their bucket.
    fn migrate(&mut self) {
        let end = self.window_end();
        while let Some(&Reverse((at, _, _))) = self.far.peek() {
            if at.as_nanos() >= end {
                break;
            }
            // flux-lint: allow(unwrap) — peek above proved non-empty.
            let Reverse((at, seq, idx)) = self.far.pop().unwrap();
            let t = at.as_nanos();
            let b = if t < self.base { self.cur } else { self.bucket_of(t) };
            self.buckets[b].push((at, seq, idx));
            self.near += 1;
        }
    }

    /// Position `(bucket, offset)` of the `(time, seq)` minimum, advancing
    /// the window as needed. `None` iff the queue is empty.
    fn locate_min(&mut self) -> Option<(usize, usize)> {
        loop {
            if self.near == 0 {
                // Near tier dry: jump the window to the earliest far
                // event instead of stepping bucket by bucket through the
                // idle gap.
                let &Reverse((at, _, _)) = self.far.peek()?;
                self.base = (at.as_nanos() >> WIDTH_SHIFT) << WIDTH_SHIFT;
                self.cur = self.bucket_of(self.base);
                self.migrate();
                continue;
            }
            // Some near bucket is populated, and the earliest event sits
            // in the first populated bucket at or after `cur` (cross-
            // bucket order is by time slice).
            while self.buckets[self.cur].is_empty() {
                self.cur = (self.cur + 1) % NBUCKETS;
                self.base += 1 << WIDTH_SHIFT;
                self.migrate();
            }
            let bucket = &self.buckets[self.cur];
            let mut best = 0;
            for (i, e) in bucket.iter().enumerate().skip(1) {
                if (e.0, e.1) < (bucket[best].0, bucket[best].1) {
                    best = i;
                }
            }
            return Some((self.cur, best));
        }
    }

    /// The earliest entry by `(time, seq)`, without removing it. `&mut`
    /// because locating the minimum may advance the window.
    pub(crate) fn peek_min(&mut self) -> Option<Entry> {
        let (b, i) = self.locate_min()?;
        Some(self.buckets[b][i])
    }

    /// Removes and returns the earliest entry by `(time, seq)`.
    pub(crate) fn pop_min(&mut self) -> Option<Entry> {
        let (b, i) = self.locate_min()?;
        let e = self.buckets[b].swap_remove(i);
        self.near -= 1;
        Some(e)
    }

    /// Removes the entry with insertion sequence `seq` out of order,
    /// returning its `(time, arena index)`. Linear over both tiers: only
    /// controlled-scheduling drivers call this.
    pub(crate) fn remove_seq(&mut self, seq: u64) -> Option<(SimTime, u32)> {
        for b in &mut self.buckets {
            if let Some(i) = b.iter().position(|e| e.1 == seq) {
                let e = b.swap_remove(i);
                self.near -= 1;
                return Some((e.0, e.2));
            }
        }
        let mut far = std::mem::take(&mut self.far).into_vec();
        let found = far
            .iter()
            .position(|Reverse(e)| e.1 == seq)
            .map(|i| far.swap_remove(i));
        self.far = far.into();
        found.map(|Reverse((at, _, idx))| (at, idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    /// Drains the queue, asserting the exact `(time, seq)` total order.
    fn drain_sorted(q: &mut CalendarQueue) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((at, seq, _)) = q.pop_min() {
            out.push((at.as_nanos(), seq));
        }
        out
    }

    #[test]
    fn orders_by_time_then_seq() {
        let mut q = CalendarQueue::new();
        q.push(t(500), 1, 0);
        q.push(t(100), 2, 1);
        q.push(t(100), 3, 2);
        q.push(t(0), 4, 3);
        assert_eq!(drain_sorted(&mut q), vec![(0, 4), (100, 2), (100, 3), (500, 1)]);
    }

    #[test]
    fn far_future_events_migrate_in_order() {
        let mut q = CalendarQueue::new();
        // Heartbeat-style timers way beyond the near window, interleaved
        // with near-term traffic.
        q.push(t(100_000_000), 1, 0); // 100 ms: far tier
        q.push(t(3_000), 2, 1);
        q.push(t(100_000_100), 3, 2);
        q.push(t(99_999_999), 4, 3);
        assert_eq!(
            drain_sorted(&mut q),
            vec![(3_000, 2), (99_999_999, 4), (100_000_000, 1), (100_000_100, 3)]
        );
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        // Deterministic pseudo-random workload crossing both tiers, with
        // pops interleaved so the window advances mid-stream.
        let mut q = CalendarQueue::new();
        let mut rng: u64 = 0x243F6A8885A308D3;
        let mut seq = 0;
        let mut popped = Vec::new();
        let mut clock = 0u64;
        for round in 0..200 {
            for _ in 0..7 {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                // Mix short gaps with multi-window jumps.
                let gap = if rng.is_multiple_of(13) { rng % 50_000_000 } else { rng % 20_000 };
                seq += 1;
                q.push(t(clock + gap), seq, 0);
            }
            if round % 3 != 0 {
                for _ in 0..5 {
                    if let Some((at, s, _)) = q.pop_min() {
                        popped.push((at.as_nanos(), s));
                        clock = clock.max(at.as_nanos());
                    }
                }
            }
        }
        popped.extend(drain_sorted(&mut q));
        let mut expect = popped.clone();
        expect.sort_unstable();
        assert_eq!(popped, expect, "pop order must equal global (time, seq) order");
        assert_eq!(popped.len(), 1400);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        q.push(t(9_000_000), 1, 7);
        q.push(t(40), 2, 8);
        assert_eq!(q.peek_min(), Some((t(40), 2, 8)));
        assert_eq!(q.pop_min(), Some((t(40), 2, 8)));
        assert_eq!(q.peek_min(), Some((t(9_000_000), 1, 7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn remove_seq_reaches_both_tiers() {
        let mut q = CalendarQueue::new();
        q.push(t(10), 1, 0);
        q.push(t(600_000_000), 2, 1); // far tier
        q.push(t(20), 3, 2);
        assert_eq!(q.remove_seq(2), Some((t(600_000_000), 1)));
        assert_eq!(q.remove_seq(99), None);
        assert_eq!(q.remove_seq(1), Some((t(10), 0)));
        assert_eq!(drain_sorted(&mut q), vec![(20, 3)]);
    }
}
