//! Actors and their execution context.

use crate::time::{SimDuration, SimTime};
use flux_wire::Message;

/// Identifies an actor within an [`crate::Engine`].
pub type ActorId = usize;

/// Identifies a simulated node (host). Actors on the same node talk over
/// the cheap IPC class; actors on different nodes over the network class.
pub type NodeId = usize;

/// A simulated process: a CMB broker, a KAP client, a launched task.
///
/// Handlers run to completion at a single virtual instant; time advances
/// only through message transfer costs and timers. Actors communicate
/// exclusively through [`Ctx`].
pub trait Actor {
    /// Called once when the simulation starts (or when the actor is added
    /// to a running simulation).
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A message has arrived from `from`.
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ActorId, msg: Message);

    /// A timer set with [`Ctx::set_timer`] has fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// The actor has been killed by failure injection. No further handlers
    /// will run. Most actors need no cleanup in a simulation; the default
    /// does nothing.
    fn on_kill(&mut self, _now: SimTime) {}
}

/// What an actor asked the engine to do; drained after each handler.
pub(crate) enum Action {
    Send { to: ActorId, msg: Message, extra_delay: SimDuration },
    SetTimer { delay: SimDuration, token: u64 },
    Kill { victim: ActorId },
    Stop,
}

/// Handler context: the only channel from actors back to the engine.
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) self_id: ActorId,
    pub(crate) actions: &'a mut Vec<Action>,
}

impl<'a> Ctx<'a> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's id.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Sends `msg` to another actor. Transfer cost and latency are charged
    /// by the engine based on message size and placement; delivery order
    /// per (sender, receiver) pair is FIFO.
    pub fn send(&mut self, to: ActorId, msg: Message) {
        self.actions.push(Action::Send { to, msg, extra_delay: SimDuration::ZERO });
    }

    /// Like [`Ctx::send`], but the message spends an additional
    /// `extra_delay` in flight on top of the modelled transfer cost.
    /// Used by fault injection to delay (and thereby reorder) traffic:
    /// a delayed message lands behind later undelayed sends, so per-pair
    /// FIFO no longer holds for it.
    pub fn send_delayed(&mut self, to: ActorId, msg: Message, extra_delay: SimDuration) {
        self.actions.push(Action::Send { to, msg, extra_delay });
    }

    /// Arranges for [`Actor::on_timer`] to run `delay` from now with
    /// `token`. Timers are not cancellable; stale timers are cheap to
    /// ignore by checking state in the handler.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.actions.push(Action::SetTimer { delay, token });
    }

    /// Failure injection: kill `victim` (possibly self) at the current
    /// instant. In-flight messages to and from it are dropped.
    pub fn kill(&mut self, victim: ActorId) {
        self.actions.push(Action::Kill { victim });
    }

    /// Stops the whole simulation after this handler returns.
    pub fn stop(&mut self) {
        self.actions.push(Action::Stop);
    }
}
