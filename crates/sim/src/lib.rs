//! # flux-sim
//!
//! A deterministic discrete-event simulator (DES) standing in for the
//! paper's test clusters (Zin/Cab: 64–512 nodes × 16 cores, QDR
//! Infiniband).
//!
//! ## Why a simulator
//!
//! The ICPP'14 evaluation ran the CMB/KVS prototype on up to 512 real
//! nodes. We reproduce the *protocol* exactly (the same sans-io broker,
//! module, and KVS state machines run here and on the threaded runtime)
//! and replace the hardware with a cost model, so the paper's full scale
//! (8192 ranks) fits in one process and results are bit-reproducible.
//! The paper's findings are shape claims — linear vs logarithmic scaling
//! of fence and get, the effect of value redundancy and directory layout —
//! and those shapes are produced by what the protocol concatenates,
//! reduces, and faults through cache chains, which the DES models
//! faithfully:
//!
//! * every message transfer costs `latency + size/bandwidth`,
//! * each actor's transmit side is serialized (store-and-forward: a big
//!   reduction payload delays the next send),
//! * each actor's receive side is serialized with a per-message +
//!   per-byte processing cost (a hot KVS master or interior cache node
//!   queues, which is where the paper's contention effects come from).
//!
//! ## Model
//!
//! A simulation is a set of [`Actor`]s placed on *nodes*. Actors exchange
//! [`flux_wire::Message`]s; the engine computes arrival times from the
//! [`NetParams`] cost model, using the IPC cost class for same-node
//! traffic (the paper's 16 client processes per node talk to their local
//! broker over a UNIX domain socket) and the network class otherwise.
//! Virtual time is [`SimTime`] nanoseconds. Failure injection kills
//! actors; messages to or from dead actors vanish, as on a real network.
//!
//! # Example
//!
//! ```
//! use flux_sim::{Actor, Ctx, Engine, NetParams, SimTime};
//! use flux_wire::{Message, MsgId, Rank, Topic};
//! use flux_value::Value;
//!
//! struct Echo;
//! impl Actor for Echo {
//!     fn on_message(&mut self, ctx: &mut Ctx<'_>, from: flux_sim::ActorId, msg: Message) {
//!         ctx.send(from, Message::response_to(&msg, Value::from("pong")));
//!     }
//! }
//!
//! struct Pinger { peer: flux_sim::ActorId, got: bool }
//! impl Actor for Pinger {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         let m = Message::request(Topic::from_static("ping"),
//!             MsgId { origin: Rank(0), seq: 1 }, Rank(0), Value::Null);
//!         ctx.send(self.peer, m);
//!     }
//!     fn on_message(&mut self, _ctx: &mut Ctx<'_>, _from: flux_sim::ActorId, msg: Message) {
//!         assert_eq!(msg.payload.as_str(), Some("pong"));
//!         self.got = true;
//!     }
//! }
//!
//! let mut eng = Engine::new(NetParams::default());
//! let n0 = eng.add_node();
//! let n1 = eng.add_node();
//! let echo = eng.add_actor(n1, Box::new(Echo));
//! eng.add_actor(n0, Box::new(Pinger { peer: echo, got: false }));
//! let end: SimTime = eng.run();
//! assert!(end.as_nanos() > 0);
//! ```


#![forbid(unsafe_code)]
#![deny(missing_docs)]
mod actor;
mod arena;
mod engine;
mod net;
mod queue;
mod time;

pub use actor::{Actor, ActorId, Ctx, NodeId};
pub use engine::{Engine, EngineStats, PendingEvent, PendingKind, Throughput};
pub use net::NetParams;
pub use time::{SimDuration, SimTime};
