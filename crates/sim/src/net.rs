//! The network/host cost model.

use crate::time::SimDuration;

/// Cost-model parameters for the simulated cluster.
///
/// Defaults approximate the paper's testbed: QDR Infiniband
/// (~1.3 µs one-way latency, ~3.2 GB/s effective per link) between nodes,
/// UNIX-domain IPC within a node, and a per-message software cost on both
/// the send and receive paths (the ØMQ/broker stack). Absolute values only
/// scale the figures; the *shapes* come from the protocol.
#[derive(Clone, Copy, Debug)]
pub struct NetParams {
    /// One-way wire latency between distinct nodes.
    pub net_latency: SimDuration,
    /// Per-byte transfer time between distinct nodes (inverse bandwidth).
    pub net_ns_per_kib: u64,
    /// Fixed software cost to transmit one message (any class).
    pub send_overhead: SimDuration,
    /// One-way latency for same-node IPC.
    pub ipc_latency: SimDuration,
    /// Per-byte transfer time for same-node IPC.
    pub ipc_ns_per_kib: u64,
    /// Fixed cost for the receiver to process one message.
    pub recv_overhead: SimDuration,
    /// Per-byte cost for the receiver to process a message (parsing,
    /// hashing, cache insertion).
    pub recv_ns_per_kib: u64,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            net_latency: SimDuration::from_nanos(1_300),
            // ~3.2 GB/s  =>  ~305 ns per KiB.
            net_ns_per_kib: 305,
            send_overhead: SimDuration::from_nanos(500),
            ipc_latency: SimDuration::from_nanos(300),
            // ~8 GB/s over shared memory  =>  ~122 ns per KiB.
            ipc_ns_per_kib: 122,
            recv_overhead: SimDuration::from_nanos(400),
            recv_ns_per_kib: 60,
        }
    }
}

impl NetParams {
    /// Time the sender's transmit path is busy pushing `bytes` out
    /// (excludes propagation latency, which overlaps with the next send).
    pub fn tx_time(&self, bytes: usize, same_node: bool) -> SimDuration {
        let per_kib = if same_node { self.ipc_ns_per_kib } else { self.net_ns_per_kib };
        let transfer = (bytes as u64).saturating_mul(per_kib) / 1024;
        self.send_overhead + SimDuration::from_nanos(transfer)
    }

    /// Propagation latency for one message.
    pub fn latency(&self, same_node: bool) -> SimDuration {
        if same_node {
            self.ipc_latency
        } else {
            self.net_latency
        }
    }

    /// Time the receiver is busy absorbing `bytes`.
    pub fn rx_time(&self, bytes: usize) -> SimDuration {
        let extra = (bytes as u64).saturating_mul(self.recv_ns_per_kib) / 1024;
        self.recv_overhead + SimDuration::from_nanos(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_messages_cost_more() {
        let p = NetParams::default();
        assert!(p.tx_time(1 << 20, false) > p.tx_time(8, false));
        assert!(p.rx_time(1 << 20) > p.rx_time(8));
    }

    #[test]
    fn ipc_cheaper_than_net() {
        let p = NetParams::default();
        assert!(p.tx_time(4096, true) < p.tx_time(4096, false));
        assert!(p.latency(true) < p.latency(false));
    }

    #[test]
    fn megabyte_transfer_time_is_sane() {
        let p = NetParams::default();
        // 1 MiB at ~3.2 GB/s should take on the order of 300 µs.
        let t = p.tx_time(1 << 20, false);
        assert!(t.as_micros_f64() > 200.0 && t.as_micros_f64() < 500.0, "{t}");
    }

    #[test]
    fn overflow_resistant() {
        let p = NetParams::default();
        // Absurd sizes must not panic.
        let _ = p.tx_time(usize::MAX, false);
        let _ = p.rx_time(usize::MAX);
    }
}
