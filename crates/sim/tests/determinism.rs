//! Engine-level property tests: determinism, FIFO delivery, and cost
//! monotonicity under randomized traffic.

use flux_sim::{Actor, ActorId, Ctx, Engine, NetParams, SimDuration, SimTime};
use flux_value::Value;
use flux_wire::{Message, MsgId, Rank, Topic};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Sends a scripted list of (delay_us, target, size) messages.
struct Sender {
    plan: Vec<(u64, ActorId, usize)>,
    sent: usize,
}

impl Actor for Sender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_nanos(1), 0);
    }
    fn on_message(&mut self, _: &mut Ctx<'_>, _: ActorId, _: Message) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let Some(&(delay_us, target, size)) = self.plan.get(self.sent) else { return };
        self.sent += 1;
        let msg = Message::event(
            Topic::from_static("t"),
            MsgId { origin: Rank(0), seq: self.sent as u64 },
            Rank(0),
            Value::from("x".repeat(size)),
        );
        ctx.send(target, msg);
        ctx.set_timer(SimDuration::from_micros(delay_us), 0);
    }
}

/// Records (sender, seq, arrival time).
#[derive(Default)]
struct Log(Vec<(ActorId, u64, u64)>);

struct Recorder {
    log: Rc<RefCell<Log>>,
}

impl Actor for Recorder {
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: ActorId, msg: Message) {
        self.log.borrow_mut().0.push((from, msg.header.id.seq, ctx.now().as_nanos()));
    }
}

type Plan = Vec<(u64, usize)>;

fn run(plans: &[Plan], colocate: bool) -> (Vec<(ActorId, u64, u64)>, u64) {
    let mut eng = Engine::new(NetParams::default());
    let rec_node = eng.add_node();
    let log = Rc::new(RefCell::new(Log::default()));
    let rec = eng.add_actor(rec_node, Box::new(Recorder { log: Rc::clone(&log) }));
    for plan in plans {
        let node = if colocate { rec_node } else { eng.add_node() };
        let plan = plan.iter().map(|&(d, s)| (d % 50, rec, s % 4096)).collect();
        eng.add_actor(node, Box::new(Sender { plan, sent: 0 }));
    }
    let end = eng.run();
    let l = log.borrow().0.clone();
    (l, end.as_nanos())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bit-identical replay: same plans, same delivery log and end time.
    #[test]
    fn engine_is_deterministic(plans in prop::collection::vec(
        prop::collection::vec((0u64..50, 0usize..4096), 0..12), 1..5)) {
        prop_assert_eq!(run(&plans, false), run(&plans, false));
    }

    /// Per-sender FIFO: each sender's sequence numbers arrive in order.
    #[test]
    fn per_sender_fifo(plans in prop::collection::vec(
        prop::collection::vec((0u64..50, 0usize..4096), 0..12), 1..5)) {
        let (log, _) = run(&plans, false);
        let mut last: std::collections::HashMap<ActorId, u64> = Default::default();
        for (from, seq, _) in log {
            let prev = last.insert(from, seq);
            prop_assert!(prev.is_none_or(|p| p < seq), "sender {from} reordered");
        }
    }

    /// Co-located senders deliver no later than remote ones for the same
    /// plan (IPC is uniformly cheaper than the network).
    #[test]
    fn ipc_never_slower(plan in prop::collection::vec((0u64..50, 1usize..4096), 1..10)) {
        let plans = vec![plan];
        let (log_near, _) = run(&plans, true);
        let (log_far, _) = run(&plans, false);
        prop_assert_eq!(log_near.len(), log_far.len());
        for (n, f) in log_near.iter().zip(&log_far) {
            prop_assert!(n.2 <= f.2, "IPC {} vs net {}", n.2, f.2);
        }
    }

    /// The virtual clock never runs backwards in the delivery log.
    #[test]
    fn arrivals_monotone(plans in prop::collection::vec(
        prop::collection::vec((0u64..50, 0usize..4096), 0..12), 1..5)) {
        let (log, end) = run(&plans, false);
        prop_assert!(log.windows(2).all(|w| w[0].2 <= w[1].2));
        if let Some(last) = log.last() {
            prop_assert!(last.2 <= end);
        }
    }
}

#[test]
fn run_until_is_resumable_at_arbitrary_points() {
    let plans: Vec<Plan> = vec![vec![(5, 100), (5, 2000), (5, 10)]; 3];
    let (full_log, full_end) = run(&plans, false);
    // Same setup, but stepped in small deadline increments.
    let mut eng = Engine::new(NetParams::default());
    let rec_node = eng.add_node();
    let log = Rc::new(RefCell::new(Log::default()));
    let rec = eng.add_actor(rec_node, Box::new(Recorder { log: Rc::clone(&log) }));
    for plan in &plans {
        let node = eng.add_node();
        let plan = plan.iter().map(|&(d, s)| (d % 50, rec, s % 4096)).collect();
        eng.add_actor(node, Box::new(Sender { plan, sent: 0 }));
    }
    let mut t = 0;
    while eng.run_until(SimTime::from_nanos(t)) < SimTime::from_nanos(t) || t < full_end {
        t += 1_000;
        if t > full_end + 10_000 {
            break;
        }
    }
    eng.run();
    assert_eq!(log.borrow().0, full_log);
}
