//! The KAP evaluation harness: a deterministic cell matrix over
//! (value size × redundancy × transport), per-phase latency percentiles,
//! commit throughput, and bytes-on-wire, emitted as the machine-readable
//! `BENCH_kap.json` document CI smokes against.
//!
//! Simulator cells run in virtual time and are bit-for-bit reproducible:
//! the same parameters always produce the same JSON. Live cells
//! (`threads`, `tcp`) measure wall-clock latencies and vary run to run;
//! regression checks therefore only compare `sim` cells.
//!
//! The harness also measures the KVS hot-path optimizations directly:
//! [`optimization_report`] runs the redundant-consumer cell twice — once
//! with master-side push batching and the slave lookup memo disabled
//! (the pre-optimization KVS), once with the shipped defaults — and
//! records the margin.

use crate::runner::{run_kap_full, KapParams, KapRun, ProducerMode, SyncMode};
use flux_broker::RankOverlay;
use flux_kvs::KvsConfig;
use flux_rt::transport::{SimTransport, TcpTransport, ThreadTransport};
use flux_value::{Map, Value};

/// Schema tag stamped into every document; bump on breaking layout
/// changes so the CI smoke fails loudly instead of misreading fields.
pub const SCHEMA: &str = "flux-kap-bench/v1";

/// Which comms runtime a cell runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransportKind {
    /// Discrete-event simulator: virtual time, deterministic.
    Sim,
    /// In-process OS threads, wall-clock.
    Threads,
    /// Loopback TCP sockets, wall-clock.
    Tcp,
}

impl TransportKind {
    /// Stable name used in cell ids and the JSON.
    pub fn name(self) -> &'static str {
        match self {
            TransportKind::Sim => "sim",
            TransportKind::Threads => "threads",
            TransportKind::Tcp => "tcp",
        }
    }

    /// Whether results are deterministic across runs.
    pub fn deterministic(self) -> bool {
        self == TransportKind::Sim
    }

    /// Runs one configuration on this transport. Sim sessions pick the
    /// rank-addressed overlay to match the workload: sharded cells route
    /// commit parts rank-addressed on the hot path, so they run the
    /// fully connected overlay instead of the prototype's debugging
    /// ring — tree-edge relaying would funnel every cross-subtree
    /// commit part through the root broker's send path.
    pub fn run(self, p: &KapParams) -> KapRun {
        match self {
            TransportKind::Sim => {
                let overlay = if p.kvs.shards > 1 { RankOverlay::Full } else { RankOverlay::Ring };
                run_kap_full(p, &SimTransport { net: p.net, overlay, ..SimTransport::default() })
            }
            TransportKind::Threads => run_kap_full(p, &ThreadTransport),
            TransportKind::Tcp => run_kap_full(p, &TcpTransport::default()),
        }
    }
}

/// One benchmark cell: a named KAP configuration on one transport.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Stable id, e.g. `sim/v512/redundant`.
    pub name: String,
    /// Runtime the cell runs on.
    pub transport: TransportKind,
    /// The full KAP configuration.
    pub params: KapParams,
}

/// Nearest-rank percentile of a sorted slice.
fn pct(sorted: &[u64], p: usize) -> u64 {
    sorted[(sorted.len() - 1) * p / 100]
}

fn phase_value(mut lats: Vec<u64>) -> Value {
    lats.sort_unstable();
    Value::from_pairs([
        ("p50_ns", Value::from(pct(&lats, 50) as i64)),
        ("p99_ns", Value::from(pct(&lats, 99) as i64)),
        ("max_ns", Value::from(*lats.last().expect("nonempty") as i64)),
    ])
}

/// Runs one cell and renders its JSON record.
pub fn run_cell(cell: &Cell) -> Value {
    let run = cell.transport.run(&cell.params);
    cell_value(cell, &run)
}

fn cell_value(cell: &Cell, run: &KapRun) -> Value {
    let p = &cell.params;
    // Sharded cells carry the shard count; classic cells stay
    // byte-identical to pre-sharding documents.
    let shards = p.kvs.shards.max(1);
    let producer: Vec<u64> = run.phases.iter().map(|ph| ph.producer_ns).collect();
    let sync: Vec<u64> = run.phases.iter().map(|ph| ph.sync_ns).collect();
    let consumer: Vec<u64> = run.phases.iter().map(|ph| ph.consumer_ns).collect();
    // Commit throughput: every producer's write-back set lands exactly
    // once (one commit or one fence contribution); the denominator is
    // the critical path from barrier exit to sync completion.
    let commit_window_ns = pct(&{
        let mut v: Vec<u64> = run
            .phases
            .iter()
            .map(|ph| ph.producer_ns + ph.sync_ns)
            .collect();
        v.sort_unstable();
        v
    }, 100)
    .max(1);
    let throughput = p.producers as f64 * 1e9 / commit_window_ns as f64;
    let mut pairs = vec![
        ("name", Value::from(cell.name.as_str())),
        ("transport", Value::from(cell.transport.name())),
        ("deterministic", Value::from(cell.transport.deterministic())),
        ("value_size", Value::from(p.value_size)),
        ("redundant", Value::from(p.redundant)),
        ("nodes", Value::from(p.nodes)),
        ("procs_per_node", Value::from(p.procs_per_node)),
        ("producers", Value::from(p.producers as i64)),
        ("consumers", Value::from(p.consumers as i64)),
        ("nputs", Value::from(p.nputs as i64)),
        ("naccess", Value::from(p.naccess as i64)),
        (
            "sync",
            Value::from(match p.sync_mode {
                SyncMode::Fence => "fence",
                SyncMode::WaitVersion => "wait_version",
            }),
        ),
        (
            "producer_mode",
            Value::from(match p.producer_mode {
                ProducerMode::Fence => "fence",
                ProducerMode::Commit => "commit",
            }),
        ),
        (
            "phases",
            Value::from_pairs([
                ("producer", phase_value(producer)),
                ("sync", phase_value(sync)),
                ("consumer", phase_value(consumer)),
            ]),
        ),
        ("makespan_ns", Value::from(run.makespan_ns as i64)),
        ("commit_throughput_per_s", Value::Float(throughput)),
        ("bytes_on_wire", Value::from(run.bytes as i64)),
        ("events", Value::from(run.events as i64)),
    ];
    if shards > 1 {
        pairs.push(("shards", Value::from(i64::from(shards))));
    }
    Value::from_pairs(pairs)
}

fn base_params(value_size: usize, redundant: bool) -> KapParams {
    let mut p = KapParams::fully_populated(4);
    p.procs_per_node = 4;
    p.producers = p.total_procs();
    p.consumers = p.total_procs();
    p.value_size = value_size;
    p.redundant = redundant;
    p.nputs = 2;
    p.naccess = 4;
    p
}

/// The benchmark matrix: (value size × redundancy × transport) cells,
/// plus one wait_version-sync cell per transport. `quick` restricts to
/// the deterministic simulator cells — the CI smoke matrix.
pub fn matrix_cells(quick: bool) -> Vec<Cell> {
    let transports = if quick {
        vec![TransportKind::Sim]
    } else {
        vec![TransportKind::Sim, TransportKind::Threads, TransportKind::Tcp]
    };
    let mut cells = Vec::new();
    for &t in &transports {
        for &value_size in &[8usize, 512, 8192] {
            for &redundant in &[false, true] {
                let tag = if redundant { "redundant" } else { "unique" };
                cells.push(Cell {
                    name: format!("{}/v{value_size}/{tag}", t.name()),
                    transport: t,
                    params: base_params(value_size, redundant),
                });
            }
        }
        // A causal-sync cell: single producer commits, every consumer
        // wait_versions then reads — the KVS commit/wait hot path with
        // no collective.
        let mut p = base_params(512, false);
        p.producer_mode = ProducerMode::Commit;
        p.sync_mode = SyncMode::WaitVersion;
        p.producers = 1;
        p.nputs = 8;
        p.naccess = 4;
        cells.push(Cell {
            name: format!("{}/wait_version/v512", t.name()),
            transport: t,
            params: p,
        });
    }
    cells
}

/// Rank counts of the paper-scale sweep: 16 processes per node, 8 → 512
/// nodes. The top entry is the paper's full evaluation scale.
pub const SWEEP_RANKS: [u32; 4] = [128, 512, 2048, 8192];

fn sweep_base(ranks: u32) -> KapParams {
    let mut p = KapParams::fully_populated(ranks / 16);
    p.producers = p.total_procs();
    p.consumers = p.total_procs();
    p.value_size = 512;
    p
}

/// The scale-sweep cells: at each [`SWEEP_RANKS`] scale, a fence cell
/// with unique values, a fence cell with redundant values, and a
/// single-producer `wait_version` cell. All sim (deterministic). The
/// trio pins the paper's scaling shapes:
///
/// * fence consumer phase ~linear in rank count (the object space grows
///   with the producers, so collective reads move ever-larger
///   directories);
/// * `wait_version` consumer phase sub-linear (a fixed object set read
///   through the log-depth cache tree);
/// * unique vs redundant divergence: content dedup flattens the
///   redundant series while the unique one keeps growing.
pub fn scale_sweep_cells() -> Vec<Cell> {
    let mut cells = Vec::new();
    for &ranks in &SWEEP_RANKS {
        for &redundant in &[false, true] {
            let tag = if redundant { "redundant" } else { "unique" };
            cells.push(Cell {
                name: format!("scale/fence/{tag}/r{ranks}"),
                transport: TransportKind::Sim,
                params: { let mut p = sweep_base(ranks); p.redundant = redundant; p },
            });
        }
        let mut p = sweep_base(ranks);
        p.producer_mode = ProducerMode::Commit;
        p.sync_mode = SyncMode::WaitVersion;
        p.producers = 1;
        p.nputs = 8;
        p.naccess = 4;
        cells.push(Cell {
            name: format!("scale/wait_version/r{ranks}"),
            transport: TransportKind::Sim,
            params: p,
        });
    }
    cells
}

/// Rank count of the sharded-commit comparison pair: the paper's
/// mid-sweep scale, large enough that the single master is the
/// serialization bottleneck.
pub const SHARD_SCALE_RANKS: u32 = 2048;

/// Shard-master count of the sharded comparison cell.
pub const SHARD_SCALE_SHARDS: u32 = 4;

/// The sharded-commit comparison pair at [`SHARD_SCALE_RANKS`] ranks:
/// every producer issues an independent commit, once against the classic
/// single master and once with the namespace sharded across
/// [`SHARD_SCALE_SHARDS`] masters. Both cells are sim (deterministic);
/// the harness pins the sharded cell byte-for-byte and requires its
/// commit throughput to beat the single-master cell — concurrent pushes
/// spread across shard masters instead of serializing at the root.
pub fn shard_scale_cells() -> Vec<Cell> {
    vec![commit_cell(SHARD_SCALE_RANKS, 1), commit_cell(SHARD_SCALE_RANKS, SHARD_SCALE_SHARDS)]
}

/// The concurrent-commit cell at `ranks` testers with the namespace
/// sharded across `shards` masters (1 = the classic single master).
/// Also the `kap scale-smoke --shards N` workload.
pub fn commit_cell(ranks: u32, shards: u32) -> Cell {
    let mut p = sweep_base(ranks);
    p.producer_mode = ProducerMode::Commit;
    p.nputs = 1;
    p.naccess = 1;
    // Fat values make the cell bandwidth-bound: the interesting
    // quantity is how the value stream shares master links, not the
    // per-message software overhead.
    p.value_size = 4096;
    // A wide batch window keeps both cells batch_max-bound, so the
    // flush (and setroot-broadcast) count is identical across shard
    // counts and the pair isolates the master-spread effect.
    p.kvs = KvsConfig { shards, batch_window_ns: 50_000, ..KvsConfig::default() };
    let name = if shards == 1 {
        format!("scale/commit/r{ranks}")
    } else {
        format!("scale/commit/r{ranks}/shards{shards}")
    };
    Cell { name, transport: TransportKind::Sim, params: p }
}

/// Runs the sharded-commit pair and renders its JSON section.
pub fn run_shard_scale() -> Value {
    Value::from_pairs([
        ("ranks", Value::from(i64::from(SHARD_SCALE_RANKS))),
        ("shards", Value::from(i64::from(SHARD_SCALE_SHARDS))),
        (
            "cells",
            Value::Array(shard_scale_cells().iter().map(run_cell).collect()),
        ),
    ])
}

/// Runs the paper-scale sweep and renders its JSON section. Only in the
/// full (non-quick) document: the 8192-rank cells are seconds each in
/// release builds but would dominate debug test time.
pub fn run_scale_sweep() -> Value {
    let cells: Vec<Value> = scale_sweep_cells().iter().map(run_cell).collect();
    Value::from_pairs([
        (
            "ranks",
            Value::Array(SWEEP_RANKS.iter().map(|&r| Value::from(i64::from(r))).collect()),
        ),
        ("cells", Value::Array(cells)),
    ])
}

/// The redundant-consumer margin cell: concurrent per-producer commits
/// (the push-batching hot path) with redundant values and repeat
/// consumer reads (the lookup-memo hot path).
pub fn margin_params(kvs: KvsConfig) -> KapParams {
    let mut p = KapParams::fully_populated(8);
    p.procs_per_node = 4;
    p.producers = p.total_procs();
    p.consumers = p.total_procs();
    p.value_size = 4096;
    p.redundant = true;
    p.nputs = 2;
    p.naccess = 8;
    p.producer_mode = ProducerMode::Commit;
    p.kvs = kvs;
    p
}

/// The pre-optimization KVS: no master-side push batching, no slave
/// lookup memo — exactly the pre-PR hot path.
pub fn baseline_kvs() -> KvsConfig {
    KvsConfig { batch_window_ns: 0, lookup_cache: false, ..KvsConfig::default() }
}

fn margin_side(kvs: KvsConfig) -> (KapRun, Value) {
    let p = margin_params(kvs);
    let run = TransportKind::Sim.run(&p);
    let v = Value::from_pairs([
        ("makespan_ns", Value::from(run.makespan_ns as i64)),
        ("bytes_on_wire", Value::from(run.bytes as i64)),
        ("events", Value::from(run.events as i64)),
        (
            "producer_max_ns",
            Value::from(run.phases.iter().map(|ph| ph.producer_ns).max().unwrap_or(0) as i64),
        ),
        (
            "consumer_max_ns",
            Value::from(run.phases.iter().map(|ph| ph.consumer_ns).max().unwrap_or(0) as i64),
        ),
    ]);
    (run, v)
}

/// Runs the redundant-consumer cell against both KVS configurations and
/// reports the measured optimization margin (deterministic: sim only).
pub fn optimization_report() -> Value {
    let (base_run, base_v) = margin_side(baseline_kvs());
    let (opt_run, opt_v) = margin_side(KvsConfig::default());
    let speedup = base_run.makespan_ns as f64 / opt_run.makespan_ns.max(1) as f64;
    let bytes_saved = base_run.bytes.saturating_sub(opt_run.bytes);
    Value::from_pairs([
        ("cell", Value::from("sim/v4096/redundant-consumers")),
        ("baseline", base_v),
        ("optimized", opt_v),
        ("makespan_speedup", Value::Float(speedup)),
        ("bytes_saved", Value::from(bytes_saved as i64)),
        (
            "events_saved",
            Value::from(base_run.events.saturating_sub(opt_run.events) as i64),
        ),
    ])
}

/// Runs the whole matrix and assembles the `BENCH_kap.json` document.
pub fn run_matrix(quick: bool) -> Value {
    let cells = matrix_cells(quick);
    let mut rendered = Vec::with_capacity(cells.len());
    for c in &cells {
        rendered.push(run_cell(c));
    }
    let mut doc = Map::new();
    doc.insert("schema".into(), Value::from(SCHEMA));
    doc.insert("quick".into(), Value::from(quick));
    doc.insert(
        "matrix".into(),
        Value::from_pairs([
            ("value_sizes", Value::Array(vec![Value::from(8), Value::from(512), Value::from(8192)])),
            ("redundancy", Value::Array(vec![Value::from(false), Value::from(true)])),
            (
                "transports",
                Value::Array(if quick {
                    vec![Value::from("sim")]
                } else {
                    vec![Value::from("sim"), Value::from("threads"), Value::from("tcp")]
                }),
            ),
        ]),
    );
    doc.insert("cells".into(), Value::Array(rendered));
    doc.insert("optimization".into(), optimization_report());
    if !quick {
        doc.insert("scale_sweep".into(), run_scale_sweep());
        doc.insert("shard_scale".into(), run_shard_scale());
    }
    Value::Object(doc)
}

/// Validates the shape of a `BENCH_kap.json` document. Returns a list
/// of problems; empty means the schema holds.
pub fn check_schema(doc: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    if doc.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        errs.push(format!("schema tag is not {SCHEMA:?}"));
    }
    let Some(cells) = doc.get("cells").and_then(Value::as_array) else {
        errs.push("missing cells array".into());
        return errs;
    };
    if cells.is_empty() {
        errs.push("cells array is empty".into());
    }
    for (i, c) in cells.iter().enumerate() {
        for key in [
            "name",
            "transport",
            "value_size",
            "redundant",
            "phases",
            "makespan_ns",
            "commit_throughput_per_s",
            "bytes_on_wire",
        ] {
            if c.get(key).is_none() {
                errs.push(format!("cell {i}: missing {key}"));
            }
        }
        let Some(phases) = c.get("phases") else { continue };
        for phase in ["producer", "sync", "consumer"] {
            let Some(p) = phases.get(phase) else {
                errs.push(format!("cell {i}: missing phase {phase}"));
                continue;
            };
            for stat in ["p50_ns", "p99_ns", "max_ns"] {
                if p.get(stat).and_then(Value::as_int).is_none() {
                    errs.push(format!("cell {i}: phase {phase} missing {stat}"));
                }
            }
        }
    }
    let Some(opt) = doc.get("optimization") else {
        errs.push("missing optimization report".into());
        return errs;
    };
    for key in ["cell", "baseline", "optimized", "makespan_speedup", "bytes_saved"] {
        if opt.get(key).is_none() {
            errs.push(format!("optimization: missing {key}"));
        }
    }
    // Full documents must carry the paper-scale sweep, one record per
    // (scale × {fence-unique, fence-redundant, wait_version}) cell.
    if doc.get("quick").and_then(Value::as_bool) == Some(false) {
        match doc.get("scale_sweep").and_then(|s| s.get("cells")).and_then(Value::as_array) {
            Some(cells) if cells.len() == 3 * SWEEP_RANKS.len() => {}
            Some(cells) => {
                errs.push(format!(
                    "scale_sweep has {} cells, want {}",
                    cells.len(),
                    3 * SWEEP_RANKS.len()
                ));
            }
            None => errs.push("full document missing scale_sweep.cells".into()),
        }
        // And the sharded-commit comparison pair: single-master vs
        // N-shard commit cells at the same rank count.
        match doc.get("shard_scale").and_then(|s| s.get("cells")).and_then(Value::as_array) {
            Some(cells) if cells.len() == 2 => {
                let second = cells.last().and_then(|c| c.get("shards")).and_then(Value::as_int);
                if second.is_none_or(|s| s <= 1) {
                    errs.push("shard_scale: second cell is not sharded".into());
                }
            }
            Some(cells) => {
                errs.push(format!("shard_scale has {} cells, want 2", cells.len()));
            }
            None => errs.push("full document missing shard_scale.cells".into()),
        }
    }
    errs
}

/// Compares deterministic (sim) cells of a fresh run against a reference
/// document. Returns problems; empty means every matched cell is within
/// `factor`× of the reference makespan (and no sim cell disappeared).
pub fn check_regression(current: &Value, reference: &Value, factor: f64) -> Vec<String> {
    let mut errs = Vec::new();
    let empty = Vec::new();
    let cur = current.get("cells").and_then(Value::as_array).unwrap_or(&empty);
    let refs = reference.get("cells").and_then(Value::as_array).unwrap_or(&empty);
    for r in refs {
        if r.get("deterministic").and_then(Value::as_bool) != Some(true) {
            continue;
        }
        let Some(name) = r.get("name").and_then(Value::as_str) else { continue };
        let Some(c) = cur
            .iter()
            .find(|c| c.get("name").and_then(Value::as_str) == Some(name))
        else {
            errs.push(format!("reference cell {name} missing from current run"));
            continue;
        };
        let r_ms = r.get("makespan_ns").and_then(Value::as_int).unwrap_or(0).max(1) as f64;
        let c_ms = c.get("makespan_ns").and_then(Value::as_int).unwrap_or(0) as f64;
        if c_ms > r_ms * factor {
            errs.push(format!(
                "cell {name}: makespan {c_ms} > {factor}x reference {r_ms}"
            ));
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_matrix_is_deterministic_and_well_formed() {
        let a = run_matrix(true);
        let b = run_matrix(true);
        assert_eq!(a.to_json(), b.to_json(), "sim matrix must be reproducible");
        assert!(check_schema(&a).is_empty(), "{:?}", check_schema(&a));
    }

    #[test]
    fn quick_matrix_covers_the_parameter_space() {
        let cells = matrix_cells(true);
        // 3 value sizes x 2 redundancy + 1 wait_version cell, sim only.
        assert_eq!(cells.len(), 7);
        assert!(cells.iter().all(|c| c.transport == TransportKind::Sim));
        let full = matrix_cells(false);
        assert_eq!(full.len(), 21, "3 transports x 7 cells");
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let v = phase_value(vec![10, 20, 30, 40]);
        assert_eq!(v.get("p50_ns").and_then(Value::as_int), Some(20));
        assert_eq!(v.get("max_ns").and_then(Value::as_int), Some(40));
    }

    #[test]
    fn regression_check_flags_slowdowns_only() {
        let reference = run_matrix(true);
        assert!(check_regression(&reference, &reference, 2.0).is_empty());
        // A fabricated 3x slower "current" run must trip the check.
        let mut slow = reference.clone();
        if let Value::Object(doc) = &mut slow {
            if let Some(Value::Array(cells)) = doc.get_mut("cells") {
                if let Some(Value::Object(cell)) = cells.first_mut() {
                    let ms = cell.get("makespan_ns").and_then(Value::as_int).unwrap();
                    cell.insert("makespan_ns".into(), Value::from(ms * 3));
                }
            }
        }
        assert!(!check_regression(&slow, &reference, 2.0).is_empty());
    }

    #[test]
    fn optimization_margin_is_measured_and_positive() {
        let report = optimization_report();
        let speedup = match report.get("makespan_speedup") {
            Some(Value::Float(f)) => *f,
            other => panic!("{other:?}"),
        };
        let bytes_saved = report.get("bytes_saved").and_then(Value::as_int).unwrap();
        assert!(
            bytes_saved > 0,
            "batching must cut setroot broadcast bytes (saved {bytes_saved})"
        );
        assert!(
            speedup > 1.0,
            "optimized path must beat the pre-PR baseline (speedup {speedup})"
        );
    }
}
