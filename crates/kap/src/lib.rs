//! # flux-kap
//!
//! KAP — *KVS Access Patterns* — the dedicated test the paper uses to
//! evaluate the CMB and KVS prototypes (§V): *"KAP allows a configurable
//! number of producers to write key-value objects into our KVS and a
//! configurable number of consumers to read these objects after ensuring
//! the consistent KVS state."*
//!
//! A run has the paper's four phases:
//!
//! 1. **setup** — one tester process per core (16 per node, consecutive
//!    ranks on consecutive nodes) joins a collective barrier;
//! 2. **producer** — each producer issues `nputs` `kvs_put`s of
//!    `value_size`-byte values under unique keys;
//! 3. **synchronization** — everyone enters `kvs_fence`;
//! 4. **consumer** — each consumer issues `kvs_get`s for its slice of the
//!    objects.
//!
//! The metric is the paper's: **maximum phase latency** across processes
//! — the critical path of bootstrap-style coordinated KVS use.
//!
//! Parameters mirror §V: value size (8 B – 32 KiB), producer/consumer
//! counts, per-consumer access counts and striding, unique vs *redundant*
//! values (Fig. 3), and single- vs multi-directory key layouts of at most
//! 128 objects per directory (Fig. 4).


#![forbid(unsafe_code)]
#![deny(missing_docs)]
pub mod bench;
pub mod layout;
pub mod model;
pub mod report;
mod runner;

pub use runner::{
    run_kap, run_kap_full, run_kap_on, KapParams, KapResult, KapRun, ProcPhases, ProducerMode,
    Role, SyncMode,
};
