//! The paper's analytic performance models (§V-B).
//!
//! For the consumer phase with all keys in one directory, the paper
//! derives
//!
//! ```text
//! max consumer latency = log2(C) × T(G)
//! ```
//!
//! where `C` is the consumer count and `T(G)` the time to replicate the
//! `G` objects into one slave cache from its CMB-tree parent: the miss
//! wave fills caches level by level down the tree, and each of the
//! `log2(C)` levels costs one `T(G)` bulk transfer. The corollary is the
//! geometric-series argument: if `G` grows proportionally to `C`, the
//! latency becomes linear — "the only way to gain true logarithmic
//! scaling is when G stays constant regardless of scale."

/// `T(G)`: time to move `G` objects of `value_bytes` each over one hop,
/// under a latency + bandwidth cost model (the directory object itself
/// dominates when values are small — `dir_entry_bytes ≈ 50` per entry).
pub fn transfer_time_ns(
    g_objects: u64,
    value_bytes: u64,
    per_hop_latency_ns: u64,
    ns_per_kib: u64,
) -> u64 {
    let dir_entry_bytes = 50;
    let bytes = g_objects * (value_bytes + dir_entry_bytes);
    per_hop_latency_ns + bytes * ns_per_kib / 1024
}

/// The paper's consumer-phase model: `log2(C) × T(G)`.
pub fn consumer_latency_model_ns(consumers: u64, t_g_ns: u64) -> u64 {
    (64 - consumers.max(1).leading_zeros() as u64 - 1).max(1) * t_g_ns
}

/// The doubling prediction of §V-B: if `G` doubles whenever `C` doubles,
/// the latency per doubling is `2·T(2G) / 2·T(G)` — i.e. it doubles too
/// (linear in scale). Returns the predicted latency ratio between scale
/// `k+1` and scale `k`.
pub fn doubling_ratio(g_at_k: u64, value_bytes: u64, latency_ns: u64, ns_per_kib: u64) -> f64 {
    let t1 = transfer_time_ns(g_at_k, value_bytes, latency_ns, ns_per_kib) as f64;
    let t2 = transfer_time_ns(2 * g_at_k, value_bytes, latency_ns, ns_per_kib) as f64;
    // One extra tree level (log2 grows by 1) times the bigger transfer.
    // With log2(C) levels at scale k, latency_k = log2(C)·T(G) and
    // latency_{k+1} = (log2(C)+1)·T(2G); in the large-G limit the ratio
    // approaches 2·T(2G)/2·T(G) = T(2G)/T(G) ≈ 2.
    t2 / t1
}

/// Least-squares slope of `y` against `x` (for checking linear vs
/// logarithmic growth in measured sweeps).
pub fn slope(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    assert!(points.len() >= 2, "need at least two points");
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Coefficient of determination (R²) of the best linear fit of `y = a +
/// b·x` — used to ask "is this sweep closer to linear in C or linear in
/// log C?".
pub fn r_squared(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    let b = slope(points);
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let a = (sy - b * sx) / n;
    let mean_y = sy / n;
    let ss_res: f64 = points.iter().map(|p| (p.1 - (a + b * p.0)).powi(2)).sum();
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_payload() {
        let small = transfer_time_ns(10, 8, 1300, 305);
        let big = transfer_time_ns(10, 32768, 1300, 305);
        assert!(big > 50 * small);
        let more = transfer_time_ns(100, 8, 1300, 305);
        assert!(more > small);
    }

    #[test]
    fn consumer_model_is_logarithmic_in_consumers() {
        let t = 1_000;
        let l1k = consumer_latency_model_ns(1024, t);
        let l8k = consumer_latency_model_ns(8192, t);
        assert_eq!(l1k, 10 * t);
        assert_eq!(l8k, 13 * t);
        // Doubling consumers adds one T(G), not a factor.
        assert_eq!(consumer_latency_model_ns(2048, t) - l1k, t);
    }

    #[test]
    fn doubling_g_with_scale_doubles_latency() {
        let ratio = doubling_ratio(100_000, 8, 1300, 305);
        assert!((1.8..=2.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn slope_and_r2_detect_linearity() {
        let linear: Vec<(f64, f64)> = (1..=8).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((slope(&linear) - 3.0).abs() < 1e-9);
        assert!(r_squared(&linear) > 0.9999);
        let log: Vec<(f64, f64)> =
            (1..=8).map(|i| (i as f64, (i as f64).log2())).collect();
        // A log curve fits a line in x poorly vs a line in log2 x.
        let in_log_x: Vec<(f64, f64)> =
            log.iter().map(|&(x, y)| (x.log2(), y)).collect();
        assert!(r_squared(&in_log_x) > r_squared(&log));
    }
}
