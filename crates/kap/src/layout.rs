//! Key and value layout for KAP objects.

use flux_value::Value;

/// How keys are organized in the KVS name space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DirLayout {
    /// All objects in one directory (`kap.k<gid>`) — the Fig. 4(a) case.
    Single,
    /// Objects spread over directories of at most 128 each
    /// (`kap.d<gid/128>.k<gid>`) — the Fig. 4(b) case.
    Split128,
}

/// Objects per directory in the split layout (paper: "multiple
/// directories of at most 128 objects each").
pub const SPLIT_DIR_OBJECTS: u64 = 128;

/// The KVS key for object `gid` under a layout.
pub fn key_for(layout: DirLayout, gid: u64) -> String {
    match layout {
        DirLayout::Single => format!("kap.k{gid}"),
        DirLayout::Split128 => format!("kap.d{}.k{gid}", gid / SPLIT_DIR_OBJECTS),
    }
}

/// The value object `gid`'s producer writes: exactly `value_size` bytes
/// of string content. With `redundant = true` every producer writes the
/// *same* bytes, so content addressing deduplicates them during the fence
/// reduction (the Fig. 3 mechanism); otherwise the gid makes each value
/// unique.
pub fn value_for(gid: u64, value_size: usize, redundant: bool) -> Value {
    // An 8-hex-digit gid prefix keeps values distinct down to the paper's
    // smallest size (8 bytes) for any realistic object count.
    let prefix = if redundant { "vvvvvvvv:".to_owned() } else { format!("{gid:08x}:") };
    let mut s = prefix;
    if s.len() > value_size {
        s.truncate(value_size);
    } else {
        let fill = value_size - s.len();
        s.extend(std::iter::repeat_n('x', fill));
    }
    Value::Str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_layout_keys_share_a_directory() {
        assert_eq!(key_for(DirLayout::Single, 0), "kap.k0");
        assert_eq!(key_for(DirLayout::Single, 8191), "kap.k8191");
    }

    #[test]
    fn split_layout_caps_directory_population() {
        assert_eq!(key_for(DirLayout::Split128, 0), "kap.d0.k0");
        assert_eq!(key_for(DirLayout::Split128, 127), "kap.d0.k127");
        assert_eq!(key_for(DirLayout::Split128, 128), "kap.d1.k128");
        assert_eq!(key_for(DirLayout::Split128, 8191), "kap.d63.k8191");
    }

    #[test]
    fn values_have_exact_size() {
        for size in [8usize, 32, 128, 512, 2048, 8192, 32768] {
            let v = value_for(123, size, false);
            assert_eq!(v.as_str().unwrap().len(), size);
            let r = value_for(123, size, true);
            assert_eq!(r.as_str().unwrap().len(), size);
        }
    }

    #[test]
    fn unique_values_differ_redundant_do_not() {
        assert_ne!(value_for(1, 64, false), value_for(2, 64, false));
        assert_eq!(value_for(1, 64, true), value_for(2, 64, true));
        // And the redundant value differs from any unique one.
        assert_ne!(value_for(1, 64, true), value_for(1, 64, false));
    }

    #[test]
    fn tiny_values_stay_distinct_at_8_bytes() {
        let a = value_for(11111111, 8, false);
        let b = value_for(11111112, 8, false);
        assert_eq!(a.as_str().unwrap().len(), 8);
        assert_ne!(a, b);
    }
}
