//! Running KAP on any comms runtime.
//!
//! The workload is defined once as per-process [`Op`] scripts and runs
//! against the [`ScriptTransport`] abstraction: [`run_kap`] uses the
//! simulator (virtual time, the paper's cost model), while
//! [`run_kap_on`] accepts any transport — e.g. the live loopback-TCP
//! runtime — and measures wall-clock phases instead.

use crate::layout::{key_for, value_for, DirLayout};
use flux_broker::CommsModule;
use flux_kvs::{KvsConfig, KvsModule};
use flux_modules::BarrierModule;
use flux_rt::script::Op;
use flux_rt::transport::{ScriptTransport, SimTransport};
use flux_sim::NetParams;
use flux_wire::Rank;

/// The role a tester process plays.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// Writes objects only.
    Producer,
    /// Reads objects only.
    Consumer,
    /// Both (the paper's fully-populated configuration).
    Both,
    /// Joins the setup barrier and the fence but moves no data.
    Idle,
}

/// How producers make their writes durable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProducerMode {
    /// Writes ride the collective fence (the paper's KAP shape): puts
    /// stage locally and travel as merged fence contributions.
    Fence,
    /// Each producer issues an explicit `kvs.commit` after its puts:
    /// independent commits travel as concurrent `kvs.push` requests —
    /// the master-side batching hot path.
    Commit,
}

/// How consumers learn the producers' writes are visible.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncMode {
    /// Everyone enters `kvs.fence` (collective commit + barrier in one).
    Fence,
    /// Consumers `kvs.wait_version` for the producer's commit (causal
    /// consistency, no collective). Requires [`ProducerMode::Commit`]
    /// and a single producer, so the target version is exact even when
    /// the master coalesces pushes.
    WaitVersion,
}

/// One KAP configuration (paper §V-A parameter space).
#[derive(Clone, Debug)]
pub struct KapParams {
    /// Compute nodes in the session (paper: 64–512).
    pub nodes: u32,
    /// Tester processes per node (paper: 16, fully populating each node).
    pub procs_per_node: u32,
    /// Number of producers (first `producers` global process ids).
    pub producers: u64,
    /// Number of consumers (first `consumers` global process ids).
    pub consumers: u64,
    /// Bytes per value (paper: 8 … 32768).
    pub value_size: usize,
    /// `kvs_put`s per producer.
    pub nputs: u64,
    /// `kvs_get`s per consumer ("the key-value object access count of
    /// each consumer", 1 … total process count).
    pub naccess: u64,
    /// Consumer start stride through the object space.
    pub stride: u64,
    /// All values identical across producers (Fig. 3's redundant case).
    pub redundant: bool,
    /// Key layout (Fig. 4a single directory vs Fig. 4b split).
    pub layout: DirLayout,
    /// Tree plane fan-out (paper evaluates a binary tree).
    pub arity: u32,
    /// Simulated network parameters.
    pub net: NetParams,
    /// How producers persist their writes.
    pub producer_mode: ProducerMode,
    /// How consumers synchronize with the producers.
    pub sync_mode: SyncMode,
    /// KVS tuning for every broker in the session (batching, lookup
    /// memo, fence window) — the knob the optimization margin cell
    /// flips between baseline and optimized.
    pub kvs: KvsConfig,
}

impl KapParams {
    /// The paper's fully-populated configuration at `nodes` nodes: 16
    /// processes per node, every process both producer and consumer, one
    /// put each, one get each, 8-byte values, single directory.
    pub fn fully_populated(nodes: u32) -> KapParams {
        let procs = u64::from(nodes) * 16;
        KapParams {
            nodes,
            procs_per_node: 16,
            producers: procs,
            consumers: procs,
            value_size: 8,
            nputs: 1,
            naccess: 1,
            stride: 1,
            redundant: false,
            layout: DirLayout::Single,
            arity: 2,
            net: NetParams::default(),
            producer_mode: ProducerMode::Fence,
            sync_mode: SyncMode::Fence,
            kvs: KvsConfig::default(),
        }
    }

    /// Total tester processes.
    pub fn total_procs(&self) -> u64 {
        u64::from(self.nodes) * u64::from(self.procs_per_node)
    }

    /// Total objects written.
    pub fn total_objects(&self) -> u64 {
        self.producers * self.nputs
    }

    /// The role of global process `gid`.
    pub fn role_of(&self, gid: u64) -> Role {
        let p = gid < self.producers;
        let c = gid < self.consumers;
        match (p, c) {
            (true, true) => Role::Both,
            (true, false) => Role::Producer,
            (false, true) => Role::Consumer,
            (false, false) => Role::Idle,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on inconsistent parameters.
    pub fn validate(&self) {
        assert!(self.nodes > 0 && self.procs_per_node > 0, "empty session");
        let procs = self.total_procs();
        assert!(self.producers <= procs, "more producers than processes");
        assert!(self.consumers <= procs, "more consumers than processes");
        assert!(self.producers > 0, "need at least one producer");
        assert!(self.value_size >= 8, "values are at least 8 bytes (gid prefix)");
        assert!(self.nputs > 0, "producers must put");
        assert!(
            self.kvs.shards.max(1) <= self.nodes,
            "shard masters live on ranks 0..shards: {} shards need at least \
             {} nodes, session has {}",
            self.kvs.shards,
            self.kvs.shards,
            self.nodes
        );
        if self.sync_mode == SyncMode::WaitVersion {
            assert_eq!(
                self.kvs.shards.max(1),
                1,
                "wait_version sync needs a single shard: the target version \
                 is a shard-0 stream position, which says nothing about the \
                 other shards' commit visibility"
            );
            assert_eq!(
                self.producer_mode,
                ProducerMode::Commit,
                "wait_version sync needs explicit commits"
            );
            assert_eq!(
                self.producers, 1,
                "wait_version sync needs a single producer: with more, the \
                 master may coalesce pushes and the target version is not \
                 knowable in advance"
            );
        }
    }
}

/// Maximum per-phase latencies across all processes — the paper's metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KapResult {
    /// Max producer-phase latency (barrier exit → last put ack), ns.
    pub producer_ns: u64,
    /// Max synchronization-phase latency (last put ack → fence done), ns.
    pub sync_ns: u64,
    /// Max consumer-phase latency (fence done → last get done), ns.
    pub consumer_ns: u64,
    /// Virtual time when the whole run finished.
    pub makespan_ns: u64,
    /// Engine events processed (cost/diagnostics).
    pub events: u64,
    /// Bytes moved over all links.
    pub bytes: u64,
}

/// Where one process's phase boundaries sit in its op list.
#[derive(Clone, Copy, Debug)]
struct OpLayout {
    /// Index of the last producer-phase op (0 = no producer ops; the
    /// setup barrier sits at index 0).
    produce_end: usize,
    /// Index of the synchronization op, if this process has one.
    sync_at: Option<usize>,
}

/// The ops for one tester process, plus its phase layout.
fn script_for(p: &KapParams, gid: u64) -> (Vec<Op>, OpLayout) {
    let procs = p.total_procs();
    let mut ops = vec![Op::Barrier { name: "kap.setup".into(), nprocs: procs }];
    let role = p.role_of(gid);
    if matches!(role, Role::Producer | Role::Both) {
        for i in 0..p.nputs {
            let obj = gid * p.nputs + i;
            ops.push(Op::Put {
                key: key_for(p.layout, obj),
                val: value_for(obj, p.value_size, p.redundant),
            });
        }
        if p.producer_mode == ProducerMode::Commit {
            ops.push(Op::Commit);
        }
    }
    let produce_end = ops.len() - 1;
    let sync_at = match p.sync_mode {
        // Everyone participates in the collective (paper: "all of the
        // producers and consumers enter the synchronization phase").
        SyncMode::Fence => {
            ops.push(Op::Fence { name: "kap.sync".into(), nprocs: procs });
            Some(ops.len() - 1)
        }
        // Only readers wait; the producer's own commit ack is its sync
        // point (read-your-writes).
        SyncMode::WaitVersion if matches!(role, Role::Consumer | Role::Both) => {
            // One commit per producer; `validate` pins producers == 1 so
            // this target is exact even under master-side batching.
            ops.push(Op::WaitVersion(p.producers));
            Some(ops.len() - 1)
        }
        SyncMode::WaitVersion => None,
    };
    if matches!(role, Role::Consumer | Role::Both) {
        let total = p.total_objects();
        let start = gid.wrapping_mul(p.stride) % total;
        for i in 0..p.naccess.min(total) {
            let obj = (start + i) % total;
            ops.push(Op::Get { key: key_for(p.layout, obj) });
        }
    }
    (ops, OpLayout { produce_end, sync_at })
}

/// One process's observed phase latencies (ns).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcPhases {
    /// Producer phase: setup-barrier exit → last put/commit ack. Zero
    /// for pure consumers.
    pub producer_ns: u64,
    /// Synchronization phase: producer end → fence/wait_version done.
    /// Zero for processes with no sync op (producers in wait_version
    /// mode — their commit ack is the sync point).
    pub sync_ns: u64,
    /// Consumer phase: sync done → last get done. Zero for pure
    /// producers.
    pub consumer_ns: u64,
}

/// A full KAP run: per-process phase latencies plus transport totals —
/// the input the bench harness aggregates into percentiles.
#[derive(Clone, Debug)]
pub struct KapRun {
    /// Per-process phases, indexed by global process id.
    pub phases: Vec<ProcPhases>,
    /// Virtual (sim) or wall-clock (live) time for the whole run, ns.
    pub makespan_ns: u64,
    /// Engine events processed (sim only; 0 on live transports).
    pub events: u64,
    /// Bytes moved over all links (sim only; 0 on live transports).
    pub bytes: u64,
    /// Host wall-clock the engine spent dispatching, ns (sim only).
    pub wall_ns: u64,
    /// Engine self-reported dispatch rate, events per wall second (sim
    /// only). Diagnostic for "does paper scale run in seconds" checks;
    /// never folded into the deterministic bench records.
    pub events_per_sec: f64,
}

/// Runs one KAP configuration to completion on the simulator (the
/// paper's measurement setup: virtual time, modeled network).
pub fn run_kap(params: &KapParams) -> KapResult {
    run_kap_on(params, &SimTransport { net: params.net, ..SimTransport::default() })
}

/// Runs one KAP configuration on any script-capable transport and
/// reduces to the paper's metric: maximum phase latency across
/// processes.
pub fn run_kap_on(params: &KapParams, transport: &dyn ScriptTransport) -> KapResult {
    let run = run_kap_full(params, transport);
    let mut producer_ns = 0u64;
    let mut sync_ns = 0u64;
    let mut consumer_ns = 0u64;
    for p in &run.phases {
        producer_ns = producer_ns.max(p.producer_ns);
        sync_ns = sync_ns.max(p.sync_ns);
        consumer_ns = consumer_ns.max(p.consumer_ns);
    }
    KapResult {
        producer_ns,
        sync_ns,
        consumer_ns,
        makespan_ns: run.makespan_ns,
        events: run.events,
        bytes: run.bytes,
    }
}

/// Runs one KAP configuration on any script-capable transport — the
/// simulator, OS threads, or loopback TCP — and reports every process's
/// phase latencies. Live transports report wall-clock latencies and zero
/// engine events/bytes.
pub fn run_kap_full(params: &KapParams, transport: &dyn ScriptTransport) -> KapRun {
    params.validate();

    // Launch testers: consecutive global ranks on consecutive nodes
    // ("consecutive rank processes are distributed to consecutive
    // nodes"), i.e. round-robin placement.
    let procs = params.total_procs();
    let mut layouts = Vec::with_capacity(procs as usize);
    let scripts: Vec<(Rank, Vec<Op>)> = (0..procs)
        .map(|gid| {
            let node = Rank((gid % u64::from(params.nodes)) as u32);
            let (ops, layout) = script_for(params, gid);
            layouts.push(layout);
            (node, ops)
        })
        .collect();

    let kvs = params.kvs;
    let report = transport.run_scripts(params.nodes, params.arity, &move |_| {
        vec![
            Box::new(KvsModule::with_config(kvs)) as Box<dyn CommsModule>,
            Box::new(BarrierModule::new()),
        ]
    }, scripts);

    let mut phases = Vec::with_capacity(procs as usize);
    for (gid, out) in report.outcomes.iter().enumerate() {
        assert!(out.finished, "process {gid} did not finish its script");
        assert!(
            out.op_err.iter().all(|&e| e == 0),
            "process {gid} had op errors: {:?}",
            out.op_err
        );
        let layout = layouts[gid];
        let barrier_done = out.op_done_ns[0];
        let produce_end = out.op_done_ns[layout.produce_end];
        let sync_done = layout.sync_at.map(|i| out.op_done_ns[i]).unwrap_or(produce_end);
        let consumer_end = *out.op_done_ns.last().expect("nonempty");
        let has_gets = out.op_done_ns.len() - 1 > layout.sync_at.unwrap_or(layout.produce_end);
        phases.push(ProcPhases {
            producer_ns: produce_end - barrier_done,
            sync_ns: sync_done - produce_end,
            consumer_ns: if has_gets { consumer_end - sync_done } else { 0 },
        });
    }

    KapRun {
        phases,
        makespan_ns: report.makespan_ns,
        events: report.events,
        bytes: report.bytes,
        wall_ns: report.wall_ns,
        events_per_sec: report.events_per_sec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(nodes: u32) -> KapParams {
        let mut p = KapParams::fully_populated(nodes);
        p.procs_per_node = 4;
        p.producers = p.total_procs();
        p.consumers = p.total_procs();
        p
    }

    #[test]
    fn roles_partition_processes() {
        let mut p = KapParams::fully_populated(4);
        p.producers = 16;
        p.consumers = 64;
        assert_eq!(p.role_of(0), Role::Both);
        assert_eq!(p.role_of(15), Role::Both);
        assert_eq!(p.role_of(16), Role::Consumer);
        assert_eq!(p.role_of(63), Role::Consumer);
        p.producers = 64;
        p.consumers = 16;
        assert_eq!(p.role_of(40), Role::Producer);
    }

    #[test]
    fn script_shape_matches_phases() {
        let p = quick(2);
        let (ops, layout) = script_for(&p, 0);
        assert!(matches!(ops[0], Op::Barrier { .. }));
        assert!(matches!(ops[1], Op::Put { .. }));
        assert!(matches!(ops[2], Op::Fence { .. }));
        assert!(matches!(ops[3], Op::Get { .. }));
        assert_eq!(ops.len(), 4);
        assert_eq!(layout.produce_end, 1);
        assert_eq!(layout.sync_at, Some(2));
    }

    #[test]
    fn commit_mode_appends_a_commit_per_producer() {
        let mut p = quick(2);
        p.producer_mode = ProducerMode::Commit;
        let (ops, layout) = script_for(&p, 0);
        assert!(matches!(ops[1], Op::Put { .. }));
        assert!(matches!(ops[2], Op::Commit));
        assert!(matches!(ops[3], Op::Fence { .. }));
        assert_eq!(layout.produce_end, 2);
        assert_eq!(layout.sync_at, Some(3));
    }

    #[test]
    fn wait_version_sync_replaces_the_fence_for_consumers() {
        let mut p = quick(2);
        p.producer_mode = ProducerMode::Commit;
        p.sync_mode = SyncMode::WaitVersion;
        p.producers = 1;
        // gid 0 is Both: put, commit, wait, get.
        let (ops, layout) = script_for(&p, 0);
        assert!(matches!(ops[2], Op::Commit));
        assert!(matches!(ops[3], Op::WaitVersion(1)));
        assert_eq!(layout.sync_at, Some(3));
        // gid 1 is a pure consumer: barrier, wait, get.
        let (ops, layout) = script_for(&p, 1);
        assert!(matches!(ops[1], Op::WaitVersion(1)));
        assert!(matches!(ops[2], Op::Get { .. }));
        assert_eq!(layout.sync_at, Some(1));
    }

    #[test]
    fn wait_version_run_completes_and_reads_latest() {
        let mut p = quick(4);
        p.producer_mode = ProducerMode::Commit;
        p.sync_mode = SyncMode::WaitVersion;
        p.producers = 1;
        p.nputs = 4;
        p.naccess = 2;
        let run = run_kap_full(&p, &SimTransport { net: p.net, ..SimTransport::default() });
        assert_eq!(run.phases.len(), p.total_procs() as usize);
        // Consumers waited and read: their sync + consumer phases cost time.
        let consumer = run.phases[(p.total_procs() - 1) as usize];
        assert!(consumer.sync_ns > 0, "wait_version costs time");
        assert!(consumer.consumer_ns > 0, "gets cost time");
    }

    #[test]
    #[should_panic(expected = "single producer")]
    fn wait_version_rejects_multiple_producers() {
        let mut p = quick(2);
        p.producer_mode = ProducerMode::Commit;
        p.sync_mode = SyncMode::WaitVersion;
        run_kap(&p);
    }

    #[test]
    fn small_run_completes_with_ordered_phases() {
        let r = run_kap(&quick(4));
        assert!(r.makespan_ns > 0);
        assert!(r.sync_ns > 0, "fence costs time");
        assert!(r.consumer_ns > 0, "gets cost time");
        assert!(r.events > 0 && r.bytes > 0);
    }

    #[test]
    fn consumer_only_and_producer_only_roles_work() {
        let mut p = quick(2);
        p.producers = 3;
        p.consumers = p.total_procs();
        let r = run_kap(&p);
        assert!(r.consumer_ns > 0);
        let mut p = quick(2);
        p.consumers = 3;
        p.producers = p.total_procs();
        let r = run_kap(&p);
        assert!(r.producer_ns > 0);
    }

    #[test]
    fn redundant_values_speed_up_sync() {
        let mut unique = quick(8);
        unique.value_size = 4096;
        let mut redundant = unique.clone();
        redundant.redundant = true;
        let u = run_kap(&unique);
        let r = run_kap(&redundant);
        assert!(
            r.sync_ns < u.sync_ns,
            "redundant {} >= unique {}",
            r.sync_ns,
            u.sync_ns
        );
        // And strictly less data on the wire.
        assert!(r.bytes < u.bytes);
    }

    #[test]
    fn split_layout_speeds_up_consumers() {
        // The directory effect needs a well-populated directory: 32
        // producers x 32 puts = 1024 objects (8 KiB of directory entries
        // in the single layout vs 128-entry directories in the split).
        let mut single = quick(8);
        single.nputs = 32;
        single.naccess = 4;
        let mut split = single.clone();
        split.layout = DirLayout::Split128;
        let a = run_kap(&single);
        let b = run_kap(&split);
        assert!(
            b.consumer_ns < a.consumer_ns,
            "split {} >= single {}",
            b.consumer_ns,
            a.consumer_ns
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let p = quick(4);
        assert_eq!(run_kap(&p), run_kap(&p));
    }

    #[test]
    fn same_workload_runs_on_live_transports() {
        use flux_rt::transport::{TcpTransport, ThreadTransport};
        let mut p = KapParams::fully_populated(2);
        p.procs_per_node = 2;
        p.producers = p.total_procs();
        p.consumers = p.total_procs();
        for transport in [&ThreadTransport as &dyn ScriptTransport, &TcpTransport::default()] {
            let r = run_kap_on(&p, transport);
            assert!(r.makespan_ns > 0, "{} ran", transport.name());
            assert_eq!(r.events, 0, "live transports have no engine stats");
        }
    }

    #[test]
    #[should_panic(expected = "more producers")]
    fn validation_rejects_oversubscription() {
        let mut p = quick(2);
        p.producers = 1_000_000;
        run_kap(&p);
    }

    #[test]
    #[should_panic(expected = "shard masters live on ranks")]
    fn validation_rejects_more_shards_than_nodes() {
        let mut p = quick(2);
        p.kvs.shards = 3;
        run_kap(&p);
    }

    #[test]
    #[should_panic(expected = "single shard")]
    fn wait_version_rejects_sharding() {
        let mut p = quick(4);
        p.producer_mode = ProducerMode::Commit;
        p.sync_mode = SyncMode::WaitVersion;
        p.producers = 1;
        p.kvs.shards = 2;
        run_kap(&p);
    }

    #[test]
    fn sharded_commit_run_completes_deterministically() {
        let mut p = quick(4);
        p.producer_mode = ProducerMode::Commit;
        p.kvs.shards = 4;
        p.nputs = 2;
        p.naccess = 2;
        let a = run_kap(&p);
        assert!(a.makespan_ns > 0 && a.events > 0);
        assert_eq!(a, run_kap(&p), "sharded sim run must be reproducible");
    }
}
