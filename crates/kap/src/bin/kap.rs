//! The KAP driver: regenerates every figure of the paper's evaluation.
//!
//! ```text
//! kap [--quick] [fig2|fig3|fig4a|fig4b|model|table1|scaling|all]
//! kap bench [--quick] [--out FILE] [--check REF]
//! kap scale-smoke [--ranks N] [--budget-secs S] [--shards N]
//! ```
//!
//! Full mode sweeps the paper's scales (64–512 nodes × 16 processes =
//! 1024–8192 testers). `--quick` runs a reduced sweep for smoke testing.
//! Output is markdown; EXPERIMENTS.md embeds it.
//!
//! `bench` runs the evaluation-harness matrix instead and emits the
//! machine-readable `BENCH_kap.json` document (schema
//! `flux-kap-bench/v1`). `--quick` restricts to the deterministic
//! simulator cells; `--check REF` validates the fresh run against a
//! committed reference (schema + ≤2× makespan on sim cells) and exits
//! non-zero on failure — the CI bench-smoke job.

#![forbid(unsafe_code)]

use flux_kap::bench;
use flux_kap::layout::DirLayout;
use flux_kap::model;
use flux_kap::report::{ms, Table};
use flux_kap::{run_kap, KapParams};
use flux_rt::transport::SimTransport;
use flux_sim::NetParams;

/// The value sizes of the paper's sweeps (bytes).
const VSIZES: [usize; 7] = [8, 32, 128, 512, 2048, 8192, 32768];

struct Cfg {
    node_scales: Vec<u32>,
    procs_per_node: u32,
    vsizes: Vec<usize>,
}

impl Cfg {
    fn new(quick: bool) -> Cfg {
        if quick {
            Cfg {
                node_scales: vec![8, 16, 32],
                procs_per_node: 4,
                vsizes: vec![8, 512, 8192],
            }
        } else {
            Cfg {
                node_scales: vec![64, 128, 256, 512],
                procs_per_node: 16,
                vsizes: VSIZES.to_vec(),
            }
        }
    }

    fn params(&self, nodes: u32) -> KapParams {
        let mut p = KapParams::fully_populated(nodes);
        p.procs_per_node = self.procs_per_node;
        p.producers = p.total_procs();
        p.consumers = p.total_procs();
        p
    }
}

/// Fig. 2: maximum producer-phase latency (`kvs_put`) vs producer count,
/// one series per value size.
fn fig2(cfg: &Cfg) {
    let mut header = vec!["producers".to_string()];
    header.extend(cfg.vsizes.iter().map(|v| format!("vsize-{v} (ms)")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Fig. 2 — producer phase max latency (kvs_put), fully populated",
        &header_refs,
    );
    for &nodes in &cfg.node_scales {
        let mut row = vec![cfg.params(nodes).total_procs().to_string()];
        for &vsize in &cfg.vsizes {
            let mut p = cfg.params(nodes);
            p.value_size = vsize;
            let r = run_kap(&p);
            row.push(ms(r.producer_ns));
        }
        t.row(row);
        eprintln!("fig2: {nodes} nodes done");
    }
    println!("{}", t.render());
}

/// Fig. 3: maximum synchronization-phase latency (`kvs_fence`) vs
/// producer count, unique vs redundant values.
fn fig3(cfg: &Cfg) {
    let mut header = vec!["producers".to_string()];
    for &v in &cfg.vsizes {
        header.push(format!("vsize-{v} (ms)"));
        header.push(format!("red-vsize-{v} (ms)"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Fig. 3 — synchronization phase max latency (kvs_fence), unique vs redundant values",
        &header_refs,
    );
    for &nodes in &cfg.node_scales {
        let mut row = vec![cfg.params(nodes).total_procs().to_string()];
        for &vsize in &cfg.vsizes {
            for redundant in [false, true] {
                let mut p = cfg.params(nodes);
                p.value_size = vsize;
                p.redundant = redundant;
                let r = run_kap(&p);
                row.push(ms(r.sync_ns));
            }
        }
        t.row(row);
        eprintln!("fig3: {nodes} nodes done");
    }
    println!("{}", t.render());
}

/// Fig. 4: maximum consumer-phase latency (`kvs_get`) vs consumer count,
/// one series per per-consumer access count; 8-byte values.
fn fig4(cfg: &Cfg, layout: DirLayout, label: &str) {
    let accesses = [1u64, 4, 16];
    let mut header = vec!["consumers".to_string()];
    header.extend(accesses.iter().map(|a| format!("access-{a} (ms)")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(label, &header_refs);
    for &nodes in &cfg.node_scales {
        let mut row = vec![cfg.params(nodes).total_procs().to_string()];
        for &naccess in &accesses {
            let mut p = cfg.params(nodes);
            p.naccess = naccess;
            // Collective (overlapping) reads: every consumer reads the
            // same `naccess` objects — the paper's "G objects are read
            // collectively by C consumers". The directory object (G
            // entries) dominates the transfer in the single-dir layout.
            p.stride = 0;
            p.layout = layout;
            let r = run_kap(&p);
            row.push(ms(r.consumer_ns));
        }
        t.row(row);
        eprintln!("fig4 {layout:?}: {nodes} nodes done");
    }
    println!("{}", t.render());
}

/// §V-B model check: measured consumer latency vs `log2(C) × T(G)`, and
/// the G ∝ C linear-growth case.
fn model_check(cfg: &Cfg) {
    let _net = NetParams::default();
    let mut t = Table::new(
        "Model — measured single-directory consumer latency vs log2(C)·T(G)",
        &["consumers", "G", "measured (ms)", "model (ms)", "ratio"],
    );
    let mut points = Vec::new();
    for &nodes in &cfg.node_scales {
        let mut p = cfg.params(nodes);
        p.naccess = 1;
        p.stride = 0;
        let r = run_kap(&p);
        let c = p.total_procs();
        let g = p.total_objects();
        let t_g = model::transfer_time_ns(g, p.value_size as u64, 1_300, 305);
        let predicted = model::consumer_latency_model_ns(c, t_g);
        let ratio = r.consumer_ns as f64 / predicted as f64;
        points.push((c as f64, r.consumer_ns as f64 / 1e6));
        t.row(vec![
            c.to_string(),
            g.to_string(),
            ms(r.consumer_ns),
            ms(predicted),
            format!("{ratio:.2}"),
        ]);
        eprintln!("model: {nodes} nodes done");
    }
    println!("{}", t.render());
    // Shape verdict: G grows with C here, so the model predicts linear
    // growth in C (the paper's geometric-series argument).
    let r2_linear = model::r_squared(&points);
    let log_points: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.log2(), y)).collect();
    let r2_log = model::r_squared(&log_points);
    println!(
        "Shape check (G grows with C): R²(latency ~ C) = {r2_linear:.4}, \
         R²(latency ~ log2 C) = {r2_log:.4} — linear fit should win.\n"
    );
}

/// Scaling shapes: runs the `flux-kap-bench/v1` scale sweep
/// (128→8192 ranks) and renders the three shape claims the harness
/// tests pin — fence consumer latency ~linear in ranks, `wait_version`
/// consumer latency ~flat, and the unique/redundant fence ratio
/// widening with scale.
fn scaling() {
    let cells = bench::scale_sweep_cells();
    let run_max = |name: &str| -> (u64, u64) {
        let cell = cells
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("sweep cell {name} missing"));
        let run = flux_kap::run_kap_full(
            &cell.params,
            &SimTransport { net: cell.params.net, ..SimTransport::default() },
        );
        let sync = run.phases.iter().map(|ph| ph.sync_ns).max().unwrap_or(0);
        let consumer = run.phases.iter().map(|ph| ph.consumer_ns).max().unwrap_or(0);
        (sync, consumer)
    };
    let mut t = Table::new(
        "Scaling shapes — flux-kap-bench/v1 scale sweep (sim, max latency)",
        &[
            "ranks",
            "fence sync unique (ms)",
            "fence sync redundant (ms)",
            "unique/redundant",
            "fence consumer (ms)",
            "wait_version consumer (ms)",
        ],
    );
    let mut fence_consumer = Vec::new();
    let mut waitv_consumer = Vec::new();
    for &ranks in &bench::SWEEP_RANKS {
        let (u_sync, u_cons) = run_max(&format!("scale/fence/unique/r{ranks}"));
        let (r_sync, _) = run_max(&format!("scale/fence/redundant/r{ranks}"));
        let (_, w_cons) = run_max(&format!("scale/wait_version/r{ranks}"));
        fence_consumer.push((ranks as f64, u_cons as f64));
        waitv_consumer.push((ranks as f64, w_cons as f64));
        t.row(vec![
            ranks.to_string(),
            ms(u_sync),
            ms(r_sync),
            format!("{:.2}", u_sync as f64 / r_sync.max(1) as f64),
            ms(u_cons),
            ms(w_cons),
        ]);
        eprintln!("scaling: {ranks} ranks done");
    }
    println!("{}", t.render());
    let slope = |s: &[(f64, f64)]| {
        let (x0, y0) = s[0];
        let (x1, y1) = *s.last().expect("nonempty sweep");
        (y1 / y0).ln() / (x1 / x0).ln()
    };
    println!(
        "Shape check (log-log endpoint slopes): fence consumer {:.2} (~1 = linear), \
         wait_version consumer {:.2} (~0 = flat).\n",
        slope(&fence_consumer),
        slope(&waitv_consumer)
    );
}

/// Table I: the module inventory, each exercised in-process.
fn table1() {
    use flux_broker::client::ClientCore;
    use flux_broker::testing::TestNet;
    use flux_modules::standard_modules;
    use flux_proto::{
        BarrierMethod, GroupMethod, HbMethod, KvsMethod, LiveMethod, LogMethod, MonMethod,
        ResvcMethod, WexecMethod,
    };
    use flux_value::Value;
    use flux_wire::{Rank, Topic};

    let mut t = Table::new(
        "Table I — prototyped comms modules (each exercised on a 7-broker session)",
        &["module", "exercise", "status"],
    );
    let mut net = TestNet::new(7, 2, |_| standard_modules());
    let mut check = |name: &str, what: &str, topic: Topic, payload: Value| {
        let mut c = ClientCore::new(Rank(5), 42);
        let req = c.request(topic, payload, 0);
        net.client_send(Rank(5), 42, req);
        let mut replies = net.take_client_msgs(Rank(5), 42);
        for _ in 0..500 {
            if !replies.is_empty() {
                break;
            }
            if !net.fire_next_timer() {
                break;
            }
            replies.extend(net.take_client_msgs(Rank(5), 42));
        }
        let status = match replies.first() {
            Some(m) if !m.is_error() => "ok",
            Some(_) => "error",
            None => "no reply",
        };
        t.row(vec![name.into(), what.into(), status.into()]);
    };
    check("hb", "epoch query", HbMethod::Epoch.topic(), Value::object());
    check("live", "status query", LiveMethod::Status.topic(), Value::object());
    check(
        "log",
        "msg append",
        LogMethod::Msg.topic(),
        Value::from_pairs([("level", Value::Int(6)), ("text", Value::from("smoke"))]),
    );
    check(
        "mon",
        "add sampler",
        MonMethod::Add.topic(),
        Value::from_pairs([("name", Value::from("smoke")), ("metric", Value::from("load"))]),
    );
    check(
        "group",
        "join",
        GroupMethod::Join.topic(),
        Value::from_pairs([("name", Value::from("smoke"))]),
    );
    check(
        "barrier",
        "1-proc barrier",
        BarrierMethod::Enter.topic(),
        Value::from_pairs([("name", Value::from("smoke")), ("nprocs", Value::Int(1))]),
    );
    check(
        "kvs",
        "put",
        KvsMethod::Put.topic(),
        Value::from_pairs([("k", Value::from("smoke.k")), ("v", Value::Int(1))]),
    );
    check(
        "wexec",
        "run echo",
        WexecMethod::Run.topic(),
        Value::from_pairs([
            ("jobid", Value::Int(9)),
            ("cmd", Value::from("echo hi")),
            ("targets", Value::from("all")),
        ]),
    );
    check("resvc", "status", ResvcMethod::Status.topic(), Value::object());
    println!("{}", t.render());
}

/// The `bench` subcommand: run the matrix, write/print the JSON, and
/// optionally gate against a reference document.
fn bench_cmd(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    eprintln!("KAP bench: running {} matrix…", if quick { "quick (sim-only)" } else { "full" });
    let doc = bench::run_matrix(quick);
    let schema_errs = bench::check_schema(&doc);
    if !schema_errs.is_empty() {
        for e in &schema_errs {
            eprintln!("schema: {e}");
        }
        std::process::exit(1);
    }
    let json = doc.to_json_pretty();
    match flag_value("--out") {
        Some(path) => {
            std::fs::write(path, format!("{json}\n")).expect("write bench output");
            eprintln!("KAP bench: wrote {path}");
        }
        None => println!("{json}"),
    }
    if let Some(ref_path) = flag_value("--check") {
        let text = std::fs::read_to_string(ref_path).expect("read reference");
        let reference = match flux_value::Value::parse(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("check: reference {ref_path} is not valid JSON: {e:?}");
                std::process::exit(1);
            }
        };
        let mut errs = bench::check_schema(&reference);
        errs.extend(bench::check_regression(&doc, &reference, 2.0));
        if !errs.is_empty() {
            for e in &errs {
                eprintln!("check: {e}");
            }
            std::process::exit(1);
        }
        eprintln!("KAP bench: within 2x of {ref_path} on all deterministic cells");
    }
}

/// The `scale-smoke` subcommand: run one mid-scale sweep cell and fail
/// if it misses its wall-clock budget — the CI guard that paper-scale
/// DES cells keep completing in seconds, with the engine's own
/// events/sec self-report alongside.
fn scale_smoke_cmd(args: &[String]) {
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let ranks: u32 = flag_value("--ranks").map_or(2048, |s| s.parse().expect("--ranks N"));
    let budget_secs: u64 =
        flag_value("--budget-secs").map_or(60, |s| s.parse().expect("--budget-secs S"));
    let shards: u32 = flag_value("--shards").map_or(1, |s| s.parse().expect("--shards N"));
    // With --shards the smoke runs the concurrent-commit cell (the
    // sharded hot path); without it, the classic collective-fence cell.
    let cell = if shards > 1 {
        bench::commit_cell(ranks, shards)
    } else {
        let name = format!("scale/fence/unique/r{ranks}");
        bench::scale_sweep_cells()
            .into_iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("--ranks must be one of {:?}", bench::SWEEP_RANKS))
    };
    let name = cell.name.clone();
    // flux-lint: allow(nondet) — wall-clock smoke budget printed to stderr;
    // never enters the simulated run or its recorded results.
    let start = std::time::Instant::now();
    let run = cell.transport.run(&cell.params);
    let wall = start.elapsed();
    eprintln!(
        "scale-smoke {name}: wall {wall:.2?} (engine {:.2?}), {} events, \
         {:.0} events/s, makespan {:.1} ms",
        std::time::Duration::from_nanos(run.wall_ns),
        run.events,
        run.events_per_sec,
        run.makespan_ns as f64 / 1e6,
    );
    if wall.as_secs() >= budget_secs {
        eprintln!("scale-smoke: {wall:.2?} exceeds the {budget_secs}s budget");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench") {
        bench_cmd(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("scale-smoke") {
        scale_smoke_cmd(&args[1..]);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let what = args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("all");
    let cfg = Cfg::new(quick);
    eprintln!(
        "KAP: scales {:?} nodes x {} procs/node ({} mode)",
        cfg.node_scales,
        cfg.procs_per_node,
        if quick { "quick" } else { "full" }
    );
    match what {
        "fig2" => fig2(&cfg),
        "fig3" => fig3(&cfg),
        "fig4a" => fig4(&cfg, DirLayout::Single, "Fig. 4a — consumer phase max latency (kvs_get), single directory"),
        "fig4b" => fig4(&cfg, DirLayout::Split128, "Fig. 4b — consumer phase max latency (kvs_get), directories of ≤128 objects"),
        "model" => model_check(&cfg),
        "table1" => table1(),
        "scaling" => scaling(),
        "all" => {
            table1();
            fig2(&cfg);
            fig3(&cfg);
            fig4(&cfg, DirLayout::Single, "Fig. 4a — consumer phase max latency (kvs_get), single directory");
            fig4(&cfg, DirLayout::Split128, "Fig. 4b — consumer phase max latency (kvs_get), directories of ≤128 objects");
            model_check(&cfg);
            scaling();
        }
        other => {
            eprintln!("unknown sub-command {other}; use fig2|fig3|fig4a|fig4b|model|table1|scaling|all");
            std::process::exit(2);
        }
    }
}
