//! Plain-text table rendering for KAP sweeps (the `kap` binary's output;
//! EXPERIMENTS.md is generated from these tables).

/// A simple fixed-width table builder.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!(" {:>width$} |", c, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats nanoseconds as engineering-friendly milliseconds.
pub fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["procs", "latency_ms"]);
        t.row(vec!["1024".into(), ms(1_500_000)]);
        t.row(vec!["8192".into(), ms(12_000_000)]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| procs | latency_ms |"));
        assert!(s.contains("|  1024 |      1.500 |"));
        assert!(s.contains("|  8192 |     12.000 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_enforced() {
        Table::new("x", &["a", "b"]).row(vec!["1".into()]);
    }
}
