//! Scale probe: isolates which KAP phase dominates wall-clock time.
use flux_kap::layout::DirLayout;
use flux_kap::KapParams;

fn timed(label: &str, p: &KapParams) {
    let t0 = std::time::Instant::now();
    let r = flux_kap::run_kap(p);
    println!("{label:28} events {:8} bytes {:11} wall {:?}", r.events, r.bytes, t0.elapsed());
}

fn main() {
    let nodes = 256;
    let mut full = KapParams::fully_populated(nodes);
    timed("full (single dir)", &full);
    full.layout = DirLayout::Split128;
    timed("full (split128)", &full);
    let mut fence_only = KapParams::fully_populated(nodes);
    fence_only.consumers = 1;
    timed("fence only (1 consumer)", &fence_only);
    let mut big_vals = KapParams::fully_populated(nodes);
    big_vals.consumers = 1;
    big_vals.value_size = 32768;
    timed("fence only vsize 32768", &big_vals);
    let mut big_red = big_vals.clone();
    big_red.redundant = true;
    timed("fence only 32768 redundant", &big_red);
}
