//! Harness-level guarantees for the KAP bench matrix:
//!
//! * determinism — the sim-only matrix is byte-identical run to run;
//! * schema — the committed `BENCH_kap.json` golden file validates, and
//!   a fresh run matches its deterministic cells' exact numbers;
//! * regression — a fresh quick run stays within 2× of the golden file
//!   (the same gate the CI bench-smoke job applies).

use flux_kap::bench;
use flux_value::Value;

fn golden() -> Value {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kap.json");
    let text = std::fs::read_to_string(path).expect("committed BENCH_kap.json");
    Value::parse(&text).expect("BENCH_kap.json parses")
}

#[test]
fn sim_matrix_is_byte_identical_across_runs() {
    let a = bench::run_matrix(true).to_json_pretty();
    let b = bench::run_matrix(true).to_json_pretty();
    assert_eq!(a, b);
}

#[test]
fn golden_file_passes_the_schema_check() {
    let doc = golden();
    let errs = bench::check_schema(&doc);
    assert!(errs.is_empty(), "{errs:?}");
    // The acceptance floor: at least 12 (value size x redundancy x
    // transport) cells.
    let cells = doc.get("cells").and_then(Value::as_array).unwrap();
    assert!(cells.len() >= 12, "only {} cells committed", cells.len());
    // And the optimization margin is recorded and positive.
    let opt = doc.get("optimization").unwrap();
    assert!(opt.get("makespan_speedup").and_then(Value::as_float).unwrap() > 1.0);
    assert!(opt.get("bytes_saved").and_then(Value::as_int).unwrap() > 0);
}

#[test]
fn fresh_quick_run_is_within_2x_of_the_golden_file() {
    let current = bench::run_matrix(true);
    let mut errs = bench::check_schema(&current);
    errs.extend(bench::check_regression(&current, &golden(), 2.0));
    assert!(errs.is_empty(), "{errs:?}");
}

/// Deterministic cells of the golden file reproduce *exactly*, not just
/// within the regression factor — any sim-visible change to the KVS hot
/// path must regenerate `BENCH_kap.json` (`kap bench --out BENCH_kap.json`).
#[test]
fn golden_sim_cells_reproduce_exactly() {
    let current = bench::run_matrix(true);
    let cur = current.get("cells").and_then(Value::as_array).unwrap();
    let doc = golden();
    let refs = doc.get("cells").and_then(Value::as_array).unwrap();
    for r in refs {
        if r.get("deterministic").and_then(Value::as_bool) != Some(true) {
            continue;
        }
        let name = r.get("name").and_then(Value::as_str).unwrap();
        let c = cur
            .iter()
            .find(|c| c.get("name").and_then(Value::as_str) == Some(name))
            .unwrap_or_else(|| panic!("cell {name} missing from fresh run"));
        for field in ["makespan_ns", "bytes_on_wire", "events", "phases"] {
            assert_eq!(
                c.get(field),
                r.get(field),
                "cell {name}: {field} drifted — regenerate BENCH_kap.json"
            );
        }
    }
}
