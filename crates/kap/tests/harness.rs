//! Harness-level guarantees for the KAP bench matrix:
//!
//! * determinism — the sim-only matrix is byte-identical run to run;
//! * schema — the committed `BENCH_kap.json` golden file validates, and
//!   a fresh run matches its deterministic cells' exact numbers;
//! * regression — a fresh quick run stays within 2× of the golden file
//!   (the same gate the CI bench-smoke job applies).

use flux_kap::bench;
use flux_kap::{run_kap_full, KapParams};
use flux_rt::transport::SimTransport;
use flux_value::Value;

fn golden() -> Value {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kap.json");
    let text = std::fs::read_to_string(path).expect("committed BENCH_kap.json");
    Value::parse(&text).expect("BENCH_kap.json parses")
}

#[test]
fn sim_matrix_is_byte_identical_across_runs() {
    let a = bench::run_matrix(true).to_json_pretty();
    let b = bench::run_matrix(true).to_json_pretty();
    assert_eq!(a, b);
}

#[test]
fn golden_file_passes_the_schema_check() {
    let doc = golden();
    let errs = bench::check_schema(&doc);
    assert!(errs.is_empty(), "{errs:?}");
    // The acceptance floor: at least 12 (value size x redundancy x
    // transport) cells.
    let cells = doc.get("cells").and_then(Value::as_array).unwrap();
    assert!(cells.len() >= 12, "only {} cells committed", cells.len());
    // And the optimization margin is recorded and positive.
    let opt = doc.get("optimization").unwrap();
    assert!(opt.get("makespan_speedup").and_then(Value::as_float).unwrap() > 1.0);
    assert!(opt.get("bytes_saved").and_then(Value::as_int).unwrap() > 0);
}

#[test]
fn fresh_quick_run_is_within_2x_of_the_golden_file() {
    let current = bench::run_matrix(true);
    let mut errs = bench::check_schema(&current);
    errs.extend(bench::check_regression(&current, &golden(), 2.0));
    assert!(errs.is_empty(), "{errs:?}");
}

/// Pulls `(ranks, <metric>)` series for one scale-sweep cell family out
/// of the committed golden file.
fn sweep_series(doc: &Value, prefix: &str, phase: &str) -> Vec<(f64, f64)> {
    let ranks = doc
        .get("scale_sweep")
        .and_then(|s| s.get("ranks"))
        .and_then(Value::as_array)
        .expect("golden scale_sweep.ranks");
    let cells = doc
        .get("scale_sweep")
        .and_then(|s| s.get("cells"))
        .and_then(Value::as_array)
        .expect("golden scale_sweep.cells");
    ranks
        .iter()
        .map(|r| {
            let r = r.as_int().unwrap();
            let name = format!("{prefix}/r{r}");
            let cell = cells
                .iter()
                .find(|c| c.get("name").and_then(Value::as_str) == Some(name.as_str()))
                .unwrap_or_else(|| panic!("sweep cell {name} missing"));
            let v = cell
                .get("phases")
                .and_then(|p| p.get(phase))
                .and_then(|p| p.get("max_ns"))
                .and_then(Value::as_int)
                .unwrap_or_else(|| panic!("sweep cell {name}: no {phase} max_ns"));
            (r as f64, v as f64)
        })
        .collect()
}

/// Log-log endpoint slope: ~1 means latency grows linearly with ranks,
/// ~0 means it is flat.
fn loglog_slope(series: &[(f64, f64)]) -> f64 {
    let (x0, y0) = series[0];
    let (x1, y1) = *series.last().unwrap();
    (y1 / y0).ln() / (x1 / x0).ln()
}

/// The paper's scaling shapes, pinned against the committed sweep:
/// collective (fence) consumer reads grow ~linearly with rank count,
/// while `wait_version` consumers reading a fixed object set through the
/// cache tree stay ~flat (sub-linear).
#[test]
fn sweep_consumer_slopes_fence_linear_wait_version_sublinear() {
    let doc = golden();
    let fence = sweep_series(&doc, "scale/fence/unique", "consumer");
    let waitv = sweep_series(&doc, "scale/wait_version", "consumer");
    let fence_slope = loglog_slope(&fence);
    let waitv_slope = loglog_slope(&waitv);
    assert!(
        (0.8..=1.4).contains(&fence_slope),
        "fence consumer slope {fence_slope:.3} is not ~linear ({fence:?})"
    );
    assert!(
        waitv_slope < 0.3,
        "wait_version consumer slope {waitv_slope:.3} is not sub-linear ({waitv:?})"
    );
    assert!(waitv_slope < fence_slope / 2.0);
    // Both series must also grow monotonically — a slope fit alone would
    // accept a zig-zag.
    for s in [&fence, &waitv] {
        assert!(s.windows(2).all(|w| w[1].1 >= w[0].1), "non-monotone series {s:?}");
    }
}

/// Unique vs redundant values diverge with scale (the paper's Fig. 3
/// shape): at small scale the fence costs are comparable, at full scale
/// content dedup leaves the redundant series far behind the unique one.
#[test]
fn sweep_unique_redundant_divergence_grows_with_scale() {
    let doc = golden();
    let unique = sweep_series(&doc, "scale/fence/unique", "sync");
    let redundant = sweep_series(&doc, "scale/fence/redundant", "sync");
    let ratios: Vec<f64> =
        unique.iter().zip(&redundant).map(|(u, r)| u.1 / r.1).collect();
    assert!(
        ratios.windows(2).all(|w| w[1] > w[0]),
        "unique/redundant fence ratio must widen with scale: {ratios:?}"
    );
    assert!(ratios[0] < 1.5, "comparable at the smallest scale: {ratios:?}");
    assert!(
        *ratios.last().unwrap() > 2.0,
        "dedup must win clearly at full scale: {ratios:?}"
    );
}

/// Determinism at mid scale: the same 1024-rank cell run twice produces
/// identical engine statistics and virtual-time results. (Wall-clock
/// fields are excluded — they are the only nondeterministic outputs.)
#[test]
fn kap_1024_rank_cell_is_deterministic() {
    let mut p = KapParams::fully_populated(64);
    p.producers = p.total_procs();
    p.consumers = p.total_procs();
    assert_eq!(p.total_procs(), 1024);
    let transport = SimTransport { net: p.net, ..SimTransport::default() };
    let a = run_kap_full(&p, &transport);
    let b = run_kap_full(&p, &transport);
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.events, b.events);
    assert_eq!(a.bytes, b.bytes);
    assert_eq!(a.phases, b.phases, "per-process phase latencies must match exactly");
}

/// The sharded-commit pair: the committed `shard_scale` section
/// reproduces byte-for-byte from a fresh run (both cells are sim-only,
/// hence deterministic), and the 4-shard cell's commit throughput
/// strictly beats the single-master cell at the same rank count — the
/// scaling claim the section exists to pin.
#[test]
fn shard_scale_pair_reproduces_exactly_and_sharding_wins() {
    let fresh = bench::run_shard_scale();
    let doc = golden();
    let committed = doc.get("shard_scale").expect("golden shard_scale section");
    assert_eq!(
        fresh.to_json_pretty(),
        committed.to_json_pretty(),
        "shard_scale drifted — regenerate BENCH_kap.json"
    );
    let cells = fresh.get("cells").and_then(Value::as_array).unwrap();
    let tput =
        |c: &&Value| c.get("commit_throughput_per_s").and_then(Value::as_float).unwrap();
    let single = cells.iter().find(|c| c.get("shards").is_none()).expect("single-master cell");
    let sharded = cells.iter().find(|c| c.get("shards").is_some()).expect("sharded cell");
    assert!(
        tput(&sharded) > tput(&single),
        "sharding must beat the single master: {} vs {}",
        tput(&sharded),
        tput(&single)
    );
}

/// Deterministic cells of the golden file reproduce *exactly*, not just
/// within the regression factor — any sim-visible change to the KVS hot
/// path must regenerate `BENCH_kap.json` (`kap bench --out BENCH_kap.json`).
#[test]
fn golden_sim_cells_reproduce_exactly() {
    let current = bench::run_matrix(true);
    let cur = current.get("cells").and_then(Value::as_array).unwrap();
    let doc = golden();
    let refs = doc.get("cells").and_then(Value::as_array).unwrap();
    for r in refs {
        if r.get("deterministic").and_then(Value::as_bool) != Some(true) {
            continue;
        }
        let name = r.get("name").and_then(Value::as_str).unwrap();
        let c = cur
            .iter()
            .find(|c| c.get("name").and_then(Value::as_str) == Some(name))
            .unwrap_or_else(|| panic!("cell {name} missing from fresh run"));
        for field in ["makespan_ns", "bytes_on_wire", "events", "phases"] {
            assert_eq!(
                c.get(field),
                r.get(field),
                "cell {name}: {field} drifted — regenerate BENCH_kap.json"
            );
        }
    }
}
