//! Offline shim for the [proptest](https://docs.rs/proptest) API surface
//! used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! cannot depend on the real crate. This shim implements the same public
//! names with compatible semantics — deterministic random generation
//! driven per (test name, case index) — minus shrinking: a failing case
//! reports the exact generated inputs instead of a minimized one.
//! Test sources are unchanged; swapping the real crate back in is a
//! one-line Cargo.toml change.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod regex;
pub mod rng;
pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// Run-loop configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // PROPTEST_CASES mirrors the real crate's env override.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Why a test-case closure did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip the case without failing the test.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

/// Drives one property: generates `config.cases` inputs from `strategy`
/// and applies `run` to each. Called by the [`proptest!`] expansion.
pub fn run_property<S, F>(name: &str, config: &ProptestConfig, strategy: &S, run: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    for case in 0..u64::from(config.cases) {
        let mut rng = rng::TestRng::for_case(name, case);
        let value = strategy.new_value(&mut rng);
        let described = format!("{value:?}");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(value)));
        match result {
            Ok(Ok(())) | Ok(Err(TestCaseError::Reject)) => {}
            Ok(Err(TestCaseError::Fail(msg))) => panic!(
                "property {name} failed at case {case}: {msg}\n    input: {described}"
            ),
            Err(payload) => {
                eprintln!("property {name} panicked at case {case}\n    input: {described}");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Namespaced strategy constructors (`prop::collection`, `prop::option`,
/// `prop::num`), mirroring the real crate's module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;
        use std::collections::BTreeMap;
        use std::fmt::Debug;
        use std::ops::Range;

        /// Strategy for `Vec<T>` with a length drawn from `size`.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Vector of values from `element` with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.range_usize(self.size.start, self.size.end);
                (0..n).map(|_| self.element.new_value(rng)).collect()
            }
        }

        /// Strategy for `BTreeMap<K, V>` with size drawn from `size`.
        #[derive(Clone, Debug)]
        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: Range<usize>,
        }

        /// Map with keys/values from the given strategies. Duplicate keys
        /// collapse, so the final size may be below the lower bound —
        /// matching the real crate's behaviour.
        pub fn btree_map<K: Strategy, V: Strategy>(
            key: K,
            value: V,
            size: Range<usize>,
        ) -> BTreeMapStrategy<K, V> {
            BTreeMapStrategy { key, value, size }
        }

        impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
        where
            K::Value: Ord + Debug,
        {
            type Value = BTreeMap<K::Value, V::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.range_usize(self.size.start, self.size.end);
                (0..n).map(|_| (self.key.new_value(rng), self.value.new_value(rng))).collect()
            }
        }
    }

    /// `Option<T>` strategies.
    pub mod option {
        use crate::rng::TestRng;
        use crate::strategy::Strategy;

        /// Strategy for `Option<T>`.
        #[derive(Clone, Debug)]
        pub struct OptionStrategy<S>(S);

        /// `None` a quarter of the time, `Some` of the inner value otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.0.new_value(rng))
                }
            }
        }
    }

    /// Numeric domain strategies.
    pub mod num {
        /// `f64` domains.
        pub mod f64 {
            use crate::rng::TestRng;
            use crate::strategy::Strategy;

            /// Normal (finite, non-subnormal, non-zero) doubles.
            #[derive(Clone, Copy, Debug)]
            pub struct Normal;

            /// The normal-doubles strategy (proptest's `f64::NORMAL`).
            pub const NORMAL: Normal = Normal;

            impl Strategy for Normal {
                type Value = f64;
                fn new_value(&self, rng: &mut TestRng) -> f64 {
                    loop {
                        let v = f64::from_bits(rng.next_u64());
                        if v.is_normal() {
                            return v;
                        }
                    }
                }
            }
        }
    }
}

/// Everything a property-test module imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

/// Declares property tests. Accepts the real crate's syntax:
/// an optional `#![proptest_config(expr)]` header, then test functions
/// whose arguments are drawn from strategies via `pat in strategy`.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strat,)+);
            $crate::run_property(stringify!($name), &config, &strategy, |($($arg,)+)| {
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts inside a property; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}
