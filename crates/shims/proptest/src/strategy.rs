//! The `Strategy` trait and combinators.

use crate::regex::RegexGen;
use crate::rng::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A generator of test values. This shim generates without shrinking:
/// failures report the exact inputs (plus the case seed) instead of a
/// minimized counterexample.
pub trait Strategy: Sized {
    /// The type of value produced.
    type Value: Debug;

    /// Produces one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Builds recursive values: `self` is the leaf strategy, and `branch`
    /// turns a strategy for depth-`d` values into one for depth-`d+1`.
    /// `depth` bounds recursion; the size hints are accepted for API
    /// compatibility and unused.
    fn prop_recursive<R, F>(self, depth: u32, _desired_size: u32, _expected_branch: u32, branch: F) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut layer: BoxedStrategy<Self::Value> = self.boxed();
        let leaf = layer.clone();
        for _ in 0..depth {
            // Each layer may produce the previous layer's values (so depth
            // varies per case) — mix the leaf back in.
            let deeper = branch(layer.clone()).boxed();
            layer = Union::new(vec![deeper, leaf.clone(), layer]).boxed();
        }
        layer
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn new_value_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn new_value_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value_dyn(rng)
    }
}

/// Strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice between boxed alternatives (the `prop_oneof!` engine).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given arms; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.range_usize(0, self.arms.len());
        self.arms[i].new_value(rng)
    }
}

/// `any::<T>()` support.
pub trait Arbitrary: Debug + Sized {
    /// Produces an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for any value of `T`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the strategy generating unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Weight edge values so boundary bugs surface quickly.
                match rng.below(16) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 => 1 as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800 as u64) as u32).unwrap_or('a')
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String strategies from a regex-subset pattern (proptest's
/// `impl Strategy for &str`).
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        RegexGen::compile(self).generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
