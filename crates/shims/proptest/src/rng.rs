//! Deterministic PRNG for test-case generation (SplitMix64 core).

/// A small, fast, deterministic generator. Each test case derives its own
/// stream from (test name, case index), so runs are reproducible without
/// any persisted state.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seeded(seed: u64) -> TestRng {
        TestRng { state: seed.wrapping_add(0x9e3779b97f4a7c15) }
    }

    /// Derives a stream for `(name, case)` — the per-test-case seed.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::seeded(h ^ case.wrapping_mul(0x2545f4914f6cdd1d))
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` 0 yields 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift mapping; bias is negligible for test generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A random bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
