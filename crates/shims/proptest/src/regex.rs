//! Generation of strings matching a small regex subset.
//!
//! Supports exactly the constructs the workspace's test patterns use:
//! literals, escapes (`\.`), `.`, character classes (`[a-z0-9_-]`),
//! groups, alternation, and the quantifiers `?`, `*`, `+`, `{n}`,
//! `{m,n}`. Unsupported syntax panics at compile time of the pattern,
//! which in tests is the right failure mode.

use crate::rng::TestRng;

/// Characters `.` may generate: mostly printable ASCII, with a sprinkle
/// of exotic code points so parsers see multi-byte UTF-8 and controls.
const DOT_EXOTIC: &[char] = &[
    '\u{0}', '\t', '"', '\\', '\u{7f}', 'é', 'Ω', '→', '🦀', '\u{202e}', '\u{fffd}',
];

#[derive(Debug, Clone)]
enum Node {
    /// A sequence of nodes.
    Seq(Vec<Node>),
    /// One of several alternatives.
    Alt(Vec<Node>),
    /// A literal character.
    Lit(char),
    /// Any character (`.`).
    Dot,
    /// A character class as an explicit set.
    Class(Vec<char>),
    /// A repeated node.
    Repeat(Box<Node>, u32, u32),
}

/// A compiled generator for one pattern.
pub struct RegexGen {
    root: Node,
}

impl RegexGen {
    /// Compiles `pattern`; panics on syntax outside the supported subset.
    pub fn compile(pattern: &str) -> RegexGen {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let root = parse_alt(&chars, &mut pos);
        assert!(pos == chars.len(), "unsupported regex syntax in {pattern:?} at {pos}");
        RegexGen { root }
    }

    /// Produces one matching string.
    pub fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        emit(&self.root, rng, &mut out);
        out
    }
}

fn parse_alt(chars: &[char], pos: &mut usize) -> Node {
    let mut alts = vec![parse_seq(chars, pos)];
    while chars.get(*pos) == Some(&'|') {
        *pos += 1;
        alts.push(parse_seq(chars, pos));
    }
    if alts.len() == 1 {
        alts.pop().expect("one alt")
    } else {
        Node::Alt(alts)
    }
}

fn parse_seq(chars: &[char], pos: &mut usize) -> Node {
    let mut seq = Vec::new();
    while let Some(&c) = chars.get(*pos) {
        if c == ')' || c == '|' {
            break;
        }
        let atom = parse_atom(chars, pos);
        seq.push(parse_quantifier(chars, pos, atom));
    }
    Node::Seq(seq)
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
    match chars[*pos] {
        '(' => {
            *pos += 1;
            let inner = parse_alt(chars, pos);
            assert!(chars.get(*pos) == Some(&')'), "unclosed group");
            *pos += 1;
            inner
        }
        '[' => {
            *pos += 1;
            let mut set = Vec::new();
            assert!(chars.get(*pos) != Some(&'^'), "negated classes unsupported");
            while let Some(&c) = chars.get(*pos) {
                if c == ']' {
                    break;
                }
                if chars.get(*pos + 1) == Some(&'-') && chars.get(*pos + 2).is_some_and(|&e| e != ']') {
                    let lo = c as u32;
                    let hi = chars[*pos + 2] as u32;
                    assert!(lo <= hi, "bad class range");
                    for v in lo..=hi {
                        if let Some(ch) = char::from_u32(v) {
                            set.push(ch);
                        }
                    }
                    *pos += 3;
                } else {
                    set.push(c);
                    *pos += 1;
                }
            }
            assert!(chars.get(*pos) == Some(&']'), "unclosed class");
            *pos += 1;
            Node::Class(set)
        }
        '.' => {
            *pos += 1;
            Node::Dot
        }
        '\\' => {
            *pos += 1;
            let c = chars[*pos];
            *pos += 1;
            match c {
                'd' => Node::Class(('0'..='9').collect()),
                'w' => {
                    let mut set: Vec<char> = ('a'..='z').collect();
                    set.extend('A'..='Z');
                    set.extend('0'..='9');
                    set.push('_');
                    Node::Class(set)
                }
                's' => Node::Class(vec![' ', '\t', '\n']),
                other => Node::Lit(other),
            }
        }
        c => {
            assert!(!"?*+{".contains(c), "dangling quantifier in pattern");
            *pos += 1;
            Node::Lit(c)
        }
    }
}

fn parse_quantifier(chars: &[char], pos: &mut usize, atom: Node) -> Node {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, 1)
        }
        Some('*') => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, 8)
        }
        Some('+') => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 1, 8)
        }
        Some('{') => {
            *pos += 1;
            let mut lo = String::new();
            while chars[*pos].is_ascii_digit() {
                lo.push(chars[*pos]);
                *pos += 1;
            }
            let lo: u32 = lo.parse().expect("repeat count");
            let hi = if chars[*pos] == ',' {
                *pos += 1;
                let mut hi = String::new();
                while chars[*pos].is_ascii_digit() {
                    hi.push(chars[*pos]);
                    *pos += 1;
                }
                hi.parse().expect("repeat bound")
            } else {
                lo
            };
            assert!(chars[*pos] == '}', "unclosed repetition");
            *pos += 1;
            Node::Repeat(Box::new(atom), lo, hi)
        }
        _ => atom,
    }
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Seq(items) => {
            for n in items {
                emit(n, rng, out);
            }
        }
        Node::Alt(alts) => {
            let i = rng.range_usize(0, alts.len());
            emit(&alts[i], rng, out);
        }
        Node::Lit(c) => out.push(*c),
        Node::Dot => {
            // 3/4 printable ASCII (not newline), 1/4 exotic.
            if rng.below(4) < 3 {
                out.push(char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('x'));
            } else {
                out.push(DOT_EXOTIC[rng.range_usize(0, DOT_EXOTIC.len())]);
            }
        }
        Node::Class(set) => out.push(set[rng.range_usize(0, set.len())]),
        Node::Repeat(inner, lo, hi) => {
            let n = *lo + rng.below(u64::from(hi - lo) + 1) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}
