//! Offline shim for the [criterion](https://docs.rs/criterion) API
//! surface used by this workspace's benches.
//!
//! The build environment has no access to crates.io. This shim keeps the
//! bench sources compiling and running unchanged: it performs a short
//! warm-up, then a fixed number of timed samples per benchmark, and
//! prints a `name  time: [median]  (min .. max)` line per benchmark.
//! No statistics engine, no HTML reports.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Accepted by `bench_function` in place of a string id.
pub trait IntoBenchmarkId {
    /// The display id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Throughput annotation (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing for `iter_batched` (accepted, not used for sizing).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The per-benchmark measurement driver.
pub struct Bencher {
    samples: u64,
    /// Measured sample durations, one per sample, each normalized per iter.
    per_iter: Vec<Duration>,
}

impl Bencher {
    fn new(samples: u64) -> Bencher {
        Bencher { samples, per_iter: Vec::new() }
    }

    /// Times `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that takes ~2ms.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let el = t0.elapsed();
            if el > Duration::from_millis(2) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.per_iter.push(t0.elapsed() / iters as u32);
        }
    }

    /// The routine reports its own duration for `iters` iterations
    /// (criterion's escape hatch for virtual-time measurements).
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let total = routine(1);
            self.per_iter.push(total);
        }
    }

    /// Times `routine` on inputs built by `setup` (setup excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.per_iter.push(t0.elapsed());
        }
    }
}

fn print_result(name: &str, throughput: Option<Throughput>, per_iter: &mut [Duration]) {
    if per_iter.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    per_iter.sort_unstable();
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    let med = per_iter[per_iter.len() / 2];
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!(
            "  {:.1} MiB/s",
            n as f64 / med.as_secs_f64() / (1024.0 * 1024.0)
        ),
        Throughput::Elements(n) => format!("  {:.0} elem/s", n as f64 / med.as_secs_f64()),
    });
    println!(
        "{name:<48} time: [{med:?}]  ({min:?} .. {max:?}){}",
        rate.unwrap_or_default()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Annotates following benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Declares measurement time (accepted for compatibility, unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        print_result(&full, self.throughput, &mut b.per_iter);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Disables plot generation (no-op here).
    pub fn without_plots(self) -> Self {
        self
    }

    /// Applies command-line configuration (no-op here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, _parent: self }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_id();
        let mut b = Bencher::new(10);
        f(&mut b);
        print_result(&name, None, &mut b.per_iter);
        self
    }
}

/// Declares a benchmark group, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
