//! The `flux` utility.
//!
//! Paper §IV-A: *"A flux utility wraps command line access to about two
//! dozen modular Flux sub-commands."* This binary hosts an ephemeral
//! threaded comms session (there are no long-running daemons in the
//! reproduction) and runs one or more sub-commands against it:
//!
//! ```text
//! flux [--size N] [--arity K] [--transport threads|tcp] <command> [; <command>]...
//!
//! commands:
//!   start                        wire up the session and ping every rank
//!   info                         broker/session facts (from a leaf)
//!   ping <rank>                  rank-addressed ping over the ring
//!   kvs put <key> <json>         write-back put
//!   kvs get <key>                read a value
//!   kvs dir <key>                list a directory
//!   kvs unlink <key>             delete a key
//!   kvs commit                   flush this client's puts
//!   kvs version                  current root version
//!   kvs stats                    local cache statistics
//!   barrier <name> <nprocs>      enter a collective barrier
//!   run <jobid> <cmd...>         wexec bulk-launch on all ranks
//!   wait-job <jobid>             watch until a job's completion record lands
//!   ps                           local wexec process table
//!   log msg <level> <text...>    append to the session log
//!   log query                    dump the root session log
//!   log dump <rank>              a rank's circular debug buffer
//!   mon add <name> <metric>      register a sampler
//!   group join|info|leave <name> group membership
//!   resvc status|alloc|free ...  resource service
//!   up                           liveness view
//!   kap [--json] [--full]        KAP evaluation-harness matrix
//! ```
//!
//! `flux kap` is special: it runs the KAP benchmark harness (producers
//! `put`/`commit`, fence or `wait_version` sync, consumer `get`s) over
//! its own transports instead of the hosted session. `--json` emits the
//! machine-readable `flux-kap-bench/v1` document (the `BENCH_kap.json`
//! schema); the default is a human summary. `--full` adds the live
//! threads/tcp cells to the deterministic sim matrix.
//!
//! Multiple commands separated by `;` run against the *same* session, so
//! `flux kvs put a.b 42 ; kvs commit ; kvs get a.b` round-trips.
//!
//! `--transport` selects the wire hosting the ephemeral session:
//! `threads` (in-process channels, the default) or `tcp` (brokers linked
//! over loopback TCP sockets; `reactor` is an accepted alias — each
//! broker runs one poll-based reactor thread driving all of its
//! nonblocking sockets, see DESIGN.md §19). `flux --transport tcp
//! start` wires up a real-socket session and pings every rank.
//!
//! `--faults SEED:SPEC` runs the session under a deterministic fault
//! plan (see `flux_rt::FaultPlan::parse`): e.g.
//! `flux --faults 7:drop=0.01,delay=0.05/2ms,kill=3@6..14 start` drops
//! 1% of messages, delays 5% by up to 2 ms, and silences rank 3 for
//! heartbeat epochs 6..14. The same `SEED:SPEC` reproduces the same
//! per-link fault decisions run to run.

#![forbid(unsafe_code)]

use flux_broker::client::{ClientCore, Delivery};
use flux_modules::{standard_modules, standard_modules_with_kvs};
use flux_proto::{
    keys, BarrierMethod, CmbMethod, GroupMethod, KvsMethod, LiveMethod, LogMethod, MonMethod,
    ResvcMethod, WexecMethod,
};
use flux_rt::transport::{FaultyTransport, TransportKind};
use flux_rt::{FaultPlan, LiveClient};
use flux_value::Value;
use flux_wire::{Message, Rank, Topic};
use std::process::ExitCode;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

struct Cli {
    conn: LiveClient,
    core: ClientCore,
    tag: u64,
    size: u32,
    transport: TransportKind,
}

impl Cli {
    fn rpc(&mut self, topic: Topic, payload: Value) -> Result<Message, String> {
        self.tag += 1;
        self.conn.send(self.core.request(topic, payload, self.tag));
        self.wait_reply()
    }

    fn rpc_to(&mut self, rank: Rank, topic: Topic, payload: Value) -> Result<Message, String> {
        self.tag += 1;
        self.conn.send(self.core.request_to(rank, topic, payload, self.tag));
        self.wait_reply()
    }

    /// Blocks until `key` holds a value, without polling: the KVS watch
    /// protocol answers with an immediate snapshot (`Null` for a missing
    /// key) and then streams one update per root change, so the client
    /// parks in `recv_timeout` instead of a sleep/re-get loop.
    fn wait_key(&mut self, key: &str) -> Result<Value, String> {
        self.tag += 1;
        let req = self.core.request(
            KvsMethod::Watch.topic(),
            Value::from_pairs([("k", Value::from(key))]),
            self.tag,
        );
        let watch_id = req.header.id;
        self.core.expect_stream(watch_id);
        self.conn.send(req);
        let deadline = std::time::Instant::now() + TIMEOUT;
        let result = loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                break Err("timed out waiting for the key".into());
            }
            let Some(msg) = self.conn.recv_timeout(left) else { continue };
            match self.core.deliver(msg) {
                Delivery::Response { msg, .. } => {
                    if msg.is_error() {
                        break Err(format!(
                            "{} ({})",
                            flux_wire::errnum::strerror(msg.header.errnum),
                            msg.header.errnum
                        ));
                    }
                    let v = msg.payload.get("v").cloned().unwrap_or(Value::Null);
                    if v != Value::Null {
                        break Ok(v);
                    }
                    // Initial snapshot of a missing key — keep waiting.
                }
                Delivery::Event(_) | Delivery::Unmatched(_) => continue,
            }
        };
        // Tear down the stream and the broker-side watcher either way.
        self.core.cancel(watch_id);
        let _ = self.rpc(
            KvsMethod::Unwatch.topic(),
            Value::from_pairs([("k", Value::from(key))]),
        );
        result
    }

    fn wait_reply(&mut self) -> Result<Message, String> {
        let deadline = std::time::Instant::now() + TIMEOUT;
        loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return Err("timed out waiting for a reply".into());
            }
            let Some(msg) = self.conn.recv_timeout(left) else { continue };
            match self.core.deliver(msg) {
                Delivery::Response { msg, .. } => {
                    if msg.is_error() {
                        return Err(format!(
                            "{} ({})",
                            flux_wire::errnum::strerror(msg.header.errnum),
                            msg.header.errnum
                        ));
                    }
                    return Ok(msg);
                }
                Delivery::Event(_) | Delivery::Unmatched(_) => continue,
            }
        }
    }
}

fn parse_json_arg(s: &str) -> Value {
    Value::parse(s).unwrap_or_else(|_| Value::from(s))
}

fn run_command(cli: &mut Cli, cmd: &[String]) -> Result<String, String> {
    let words: Vec<&str> = cmd.iter().map(String::as_str).collect();
    match words.as_slice() {
        ["start"] => {
            // Prove the overlay is wired end to end: a rank-addressed
            // ping makes a full trip over the ring to every broker.
            for r in 0..cli.size {
                cli.rpc_to(Rank(r), CmbMethod::Ping.topic(), Value::object())
                    .map_err(|e| format!("rank {r} unreachable: {e}"))?;
            }
            Ok(format!(
                "session of {} brokers up over {} (all ranks answered ping)",
                cli.size, cli.transport
            ))
        }
        ["info"] => {
            let m = cli.rpc(CmbMethod::Info.topic(), Value::Null)?;
            Ok(m.payload.to_json_pretty())
        }
        ["ping", rank] => {
            let r: u32 = rank.parse().map_err(|_| "bad rank".to_string())?;
            let t0 = std::time::Instant::now();
            let m = cli.rpc_to(Rank(r), CmbMethod::Ping.topic(), Value::object())?;
            Ok(format!(
                "pong from rank {} in {:?}",
                m.payload.get("pong").cloned().unwrap_or(Value::Null),
                t0.elapsed()
            ))
        }
        ["kvs", "put", key, json] => {
            let payload = Value::from_pairs([("k", Value::from(*key)), ("v", parse_json_arg(json))]);
            cli.rpc(KvsMethod::Put.topic(), payload)?;
            Ok(format!("{key} staged (commit to publish)"))
        }
        ["kvs", "get", key] => {
            let m = cli.rpc(KvsMethod::Get.topic(), Value::from_pairs([("k", Value::from(*key))]))?;
            Ok(m.payload.get("v").cloned().unwrap_or(Value::Null).to_json_pretty())
        }
        ["kvs", "dir", key] => {
            let m = cli.rpc(
                KvsMethod::Get.topic(),
                Value::from_pairs([("k", Value::from(*key)), ("dir", Value::Bool(true))]),
            )?;
            let listing = m.payload.get("dir").cloned().unwrap_or(Value::object());
            let names: Vec<String> = listing
                .as_object()
                .map(|o| o.keys().cloned().collect())
                .unwrap_or_default();
            Ok(names.join("\n"))
        }
        ["kvs", "unlink", key] => {
            cli.rpc(KvsMethod::Unlink.topic(), Value::from_pairs([("k", Value::from(*key))]))?;
            Ok(format!("{key} unlink staged"))
        }
        ["kvs", "commit"] => {
            let m = cli.rpc(KvsMethod::Commit.topic(), Value::object())?;
            // A sharded session answers with the per-shard frontier
            // instead of a single version/root pair.
            if let Some(frontier) = m.payload.get("frontier").and_then(Value::as_array) {
                let slots: Vec<String> = frontier
                    .iter()
                    .map(|s| {
                        format!(
                            "shard {} version {}",
                            s.get("shard").cloned().unwrap_or(Value::Null),
                            s.get("version").cloned().unwrap_or(Value::Null),
                        )
                    })
                    .collect();
                return Ok(format!("committed: {}", slots.join(", ")));
            }
            Ok(format!(
                "committed: version {} root {}",
                m.payload.get("version").cloned().unwrap_or(Value::Null),
                m.payload.get("root").and_then(Value::as_str).unwrap_or("?")
            ))
        }
        ["kvs", "version"] => {
            let m = cli.rpc(KvsMethod::GetVersion.topic(), Value::object())?;
            Ok(m.payload.to_json())
        }
        ["kvs", "stats"] => {
            let m = cli.rpc(KvsMethod::Stats.topic(), Value::object())?;
            Ok(m.payload.to_json_pretty())
        }
        ["barrier", name, nprocs] => {
            let n: i64 = nprocs.parse().map_err(|_| "bad nprocs".to_string())?;
            let m = cli.rpc(
                BarrierMethod::Enter.topic(),
                Value::from_pairs([("name", Value::from(*name)), ("nprocs", Value::Int(n))]),
            )?;
            Ok(format!("barrier {} released", m.payload.get("name").unwrap_or(&Value::Null)))
        }
        ["run", jobid, rest @ ..] if !rest.is_empty() => {
            let id: i64 = jobid.parse().map_err(|_| "bad jobid".to_string())?;
            let m = cli.rpc(
                WexecMethod::Run.topic(),
                Value::from_pairs([
                    ("jobid", Value::Int(id)),
                    ("cmd", Value::from(rest.join(" "))),
                    ("targets", Value::from("all")),
                ]),
            )?;
            Ok(format!(
                "job {id}: {} tasks launched (stdout in lwj.{id}.<rank>.stdout)",
                m.payload.get("ntasks").cloned().unwrap_or(Value::Null)
            ))
        }
        ["wait-job", jobid] => {
            let id: i64 = jobid.parse().map_err(|_| "bad jobid".to_string())?;
            let key = keys::lwj::complete_key(id as u64);
            let v = cli
                .wait_key(&key)
                .map_err(|e| format!("job {id} did not complete: {e}"))?;
            Ok(format!("job {id} complete: {}", v.to_json()))
        }
        ["ps"] => {
            let m = cli.rpc(WexecMethod::Ps.topic(), Value::object())?;
            Ok(m.payload.to_json_pretty())
        }
        ["log", "msg", level, rest @ ..] if !rest.is_empty() => {
            let lvl: i64 = level.parse().map_err(|_| "bad level".to_string())?;
            cli.rpc(
                LogMethod::Msg.topic(),
                Value::from_pairs([
                    ("level", Value::Int(lvl)),
                    ("text", Value::from(rest.join(" "))),
                ]),
            )?;
            Ok("logged".into())
        }
        ["log", "query"] => {
            let m = cli.rpc(LogMethod::Query.topic(), Value::object())?;
            let entries = m.payload.get("entries").cloned().unwrap_or(Value::array());
            let mut out = String::new();
            for e in entries.as_array().unwrap_or(&[]) {
                out.push_str(&format!(
                    "[{}] r{}: {}\n",
                    e.get("level").cloned().unwrap_or(Value::Null),
                    e.get("rank").cloned().unwrap_or(Value::Null),
                    e.get("text").and_then(Value::as_str).unwrap_or("")
                ));
            }
            Ok(out.trim_end().to_owned())
        }
        ["log", "dump", rank] => {
            let r: u32 = rank.parse().map_err(|_| "bad rank".to_string())?;
            let m = cli.rpc_to(Rank(r), LogMethod::Dump.topic(), Value::object())?;
            Ok(m.payload.to_json_pretty())
        }
        ["mon", "add", name, metric] => {
            cli.rpc(
                MonMethod::Add.topic(),
                Value::from_pairs([
                    ("name", Value::from(*name)),
                    ("metric", Value::from(*metric)),
                    ("period", Value::Int(1)),
                ]),
            )?;
            Ok(format!("sampler {name} registered (data under mon.data.{name}.*)"))
        }
        ["group", verb @ ("join" | "leave" | "info"), name] => {
            let method = match *verb {
                "join" => GroupMethod::Join,
                "leave" => GroupMethod::Leave,
                _ => GroupMethod::Info,
            };
            let m = cli.rpc(method.topic(), Value::from_pairs([("name", Value::from(*name))]))?;
            Ok(m.payload.to_json())
        }
        ["resvc", "status"] => {
            let m = cli.rpc(ResvcMethod::Status.topic(), Value::object())?;
            Ok(m.payload.to_json())
        }
        ["resvc", "alloc", jobid, nnodes] => {
            let id: i64 = jobid.parse().map_err(|_| "bad jobid".to_string())?;
            let n: i64 = nnodes.parse().map_err(|_| "bad nnodes".to_string())?;
            let m = cli.rpc(
                ResvcMethod::Alloc.topic(),
                Value::from_pairs([("jobid", Value::Int(id)), ("nnodes", Value::Int(n))]),
            )?;
            Ok(m.payload.to_json())
        }
        ["resvc", "free", jobid] => {
            let id: i64 = jobid.parse().map_err(|_| "bad jobid".to_string())?;
            let m = cli.rpc(ResvcMethod::Free.topic(), Value::from_pairs([("jobid", Value::Int(id))]))?;
            Ok(m.payload.to_json())
        }
        ["up"] => {
            let m = cli.rpc(LiveMethod::Status.topic(), Value::object())?;
            Ok(m.payload.to_json())
        }
        _ => Err(format!("unknown command: {}", words.join(" "))),
    }
}

/// `flux kap [--json] [--full]`: the KAP evaluation harness, run
/// directly (the harness drives its own transports).
fn kap_cmd(args: &[String]) -> ExitCode {
    let json = args.iter().any(|a| a == "--json");
    let quick = !args.iter().any(|a| a == "--full");
    let doc = flux_kap::bench::run_matrix(quick);
    if json {
        println!("{}", doc.to_json_pretty());
        return ExitCode::SUCCESS;
    }
    let cells = doc.get("cells").and_then(Value::as_array).map(<[Value]>::len).unwrap_or(0);
    println!("KAP bench: {cells} cells ({} matrix)", if quick { "quick" } else { "full" });
    for c in doc.get("cells").and_then(Value::as_array).unwrap_or(&[]) {
        println!(
            "  {:<28} makespan {:>10} ns  bytes {:>9}",
            c.get("name").and_then(Value::as_str).unwrap_or("?"),
            c.get("makespan_ns").and_then(Value::as_int).unwrap_or(0),
            c.get("bytes_on_wire").and_then(Value::as_int).unwrap_or(0),
        );
    }
    if let Some(opt) = doc.get("optimization") {
        println!(
            "optimization ({}): makespan x{:.3}, {} wire bytes saved",
            opt.get("cell").and_then(Value::as_str).unwrap_or("?"),
            opt.get("makespan_speedup").and_then(Value::as_float).unwrap_or(0.0),
            opt.get("bytes_saved").and_then(Value::as_int).unwrap_or(0),
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut size = 8u32;
    let mut arity = 2u32;
    let mut shards = 1u32;
    let mut transport = TransportKind::Threads;
    let mut faults: Option<String> = None;
    while let Some(flag) = args.first().filter(|a| a.starts_with("--")).cloned() {
        args.remove(0);
        match flag.as_str() {
            "--size" => size = args.remove(0).parse().unwrap_or(8),
            "--arity" => arity = args.remove(0).parse().unwrap_or(2),
            "--shards" => shards = args.remove(0).parse().unwrap_or(1),
            "--transport" => match args.remove(0).parse() {
                Ok(t) => transport = t,
                Err(e) => {
                    eprintln!("flux: {e}");
                    return ExitCode::from(2);
                }
            },
            "--faults" => faults = Some(args.remove(0)),
            "--help" => {
                eprintln!("see `flux` module docs; e.g. flux kvs put a.b 42 \\; kvs commit \\; kvs get a.b");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::from(2);
            }
        }
    }
    if args.is_empty() {
        eprintln!(
            "usage: flux [--size N] [--arity K] [--shards N] [--transport threads|tcp] \
             [--faults SEED:SPEC] <command> [; <command>]..."
        );
        return ExitCode::from(2);
    }
    // The KAP harness drives its own transports; no hosted session.
    if args[0] == "kap" {
        return kap_cmd(&args[1..]);
    }
    if size == 0 || arity == 0 {
        eprintln!("flux: --size and --arity must be at least 1");
        return ExitCode::from(2);
    }
    if shards == 0 || shards > size {
        eprintln!("flux: --shards must be 1..=size (shard masters live on ranks 0..shards)");
        return ExitCode::from(2);
    }

    // Host an ephemeral session over the chosen transport; attach at the
    // last rank (a leaf).
    let Some(mut live) = transport.live() else {
        eprintln!("flux: the sim transport runs in virtual time; use threads or tcp");
        return ExitCode::from(2);
    };
    if let Some(flag) = faults {
        // Epoch windows in the spec are scaled by the default heartbeat
        // period (the CLI does not override broker configs).
        let hb = flux_broker::BrokerConfig::new(Rank(0), size).hb_period_ns;
        match FaultPlan::parse_flag(&flag, hb) {
            Ok(plan) => live = Box::new(FaultyTransport::new(live, plan)),
            Err(e) => {
                eprintln!("flux: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let factory = move |_: Rank| {
        if shards > 1 {
            standard_modules_with_kvs(flux_kvs::KvsConfig { shards, ..Default::default() })
        } else {
            standard_modules()
        }
    };
    let mut builder = live.open(size, arity, &factory);
    let leaf = Rank(size - 1);
    let conn = builder.attach_client(leaf);
    let session = builder.start();
    let core = ClientCore::new(leaf, conn.client_id);
    let mut cli = Cli { conn, core, tag: 0, size, transport };

    let mut status = ExitCode::SUCCESS;
    for cmd in args.split(|a| a == ";") {
        if cmd.is_empty() {
            continue;
        }
        match run_command(&mut cli, cmd) {
            Ok(out) => {
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            Err(e) => {
                eprintln!("flux: {}: {e}", cmd.join(" "));
                status = ExitCode::FAILURE;
            }
        }
    }
    session.shutdown();
    status
}
