//! End-to-end tests of the `flux` utility binary.

use std::process::Command;

fn flux(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_flux"))
        .args(args)
        .output()
        .expect("flux binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn kvs_roundtrip_via_cli() {
    let (stdout, stderr, ok) = flux(&[
        "--size", "6", "kvs", "put", "cli.x", "42", ";", "kvs", "commit", ";", "kvs", "get",
        "cli.x",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("cli.x staged"), "{stdout}");
    // The exact version races with resvc's startup enumeration fence
    // (which also commits), so only the shape is asserted.
    assert!(stdout.contains("committed: version"), "{stdout}");
    assert!(stdout.trim_end().ends_with("42"), "{stdout}");
}

#[test]
fn json_values_pass_through() {
    let (stdout, _, ok) = flux(&[
        "kvs", "put", "cli.obj", r#"{"a": [1, 2]}"#, ";", "kvs", "commit", ";", "kvs", "get",
        "cli.obj",
    ]);
    assert!(ok);
    assert!(stdout.contains("\"a\""), "{stdout}");
}

#[test]
fn ping_and_info() {
    let (stdout, _, ok) = flux(&["--size", "5", "ping", "2", ";", "info"]);
    assert!(ok);
    assert!(stdout.contains("pong from rank 2"), "{stdout}");
    assert!(stdout.contains("\"size\": 5"), "{stdout}");
    assert!(stdout.contains("\"modules\""), "{stdout}");
}

#[test]
fn wexec_run_and_read_output() {
    let (stdout, stderr, ok) = flux(&[
        "--size", "4", "run", "5", "echo", "hi-$RANK", ";", "wait-job", "5", ";", "kvs",
        "get", "lwj.5.2.stdout",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("4 tasks launched"), "{stdout}");
    assert!(stdout.contains("job 5 complete"), "{stdout}");
    assert!(stdout.contains("hi-2"), "{stdout}");
}

#[test]
fn wait_job_blocks_until_late_completion() {
    // `sleep 200` finishes 200 ms after launch, so the completion record
    // does not exist when `wait-job` starts: the initial watch snapshot
    // is null and the wait must ride a later watch update (regression
    // for the old sleep/re-get poll loop, which flux-lint's block pass
    // now forbids in sans-io code).
    let (stdout, stderr, ok) =
        flux(&["--size", "3", "run", "9", "sleep", "200", ";", "wait-job", "9"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("job 9 complete"), "{stdout}");
}

#[test]
fn resvc_alloc_and_free() {
    let (stdout, _, ok) = flux(&[
        "--size", "6", "resvc", "alloc", "9", "2", ";", "resvc", "status", ";", "resvc",
        "free", "9", ";", "resvc", "status",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("\"ranks\":[0,1]"), "{stdout}");
    assert!(stdout.contains("\"free\":4"), "{stdout}");
    assert!(stdout.contains("\"free\":6"), "{stdout}");
}

#[test]
fn errors_reported_with_nonzero_status() {
    let (_, stderr, ok) = flux(&["kvs", "get", "does.not.exist"]);
    assert!(!ok);
    assert!(stderr.contains("no such key"), "{stderr}");

    let (_, stderr, ok) = flux(&["bogus", "subcommand"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");
}

#[test]
fn group_membership_via_cli() {
    let (stdout, _, ok) = flux(&[
        "group", "join", "ops", ";", "group", "info", "ops", ";", "group", "leave", "ops", ";",
        "group", "info", "ops",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("\"size\":1"), "{stdout}");
    assert!(stdout.contains("\"size\":0"), "{stdout}");
}
