//! The `live` module: hierarchical liveness detection.
//!
//! On every heartbeat each non-root broker sends a `live.hello` to its
//! effective tree parent. The parent tracks the epoch of each child's
//! last hello; once a child has missed `BrokerConfig::live_miss_limit`
//! consecutive heartbeats, a `live.down` event is published for it.
//! The broker core consumes `live.down`/`live.up` events to update its
//! liveness view, which re-parents the dead node's subtree — the planes'
//! self-healing. A hello from a rank previously declared dead produces a
//! `live.up` event (a replaced node re-joining).

use flux_broker::{CommsModule, ModuleCtx};
use flux_proto::{Event, LiveMethod};
use flux_value::Value;
use flux_wire::{errnum, Message, Rank};
use std::collections::HashMap;

/// Per-child tracking state at a parent.
struct ChildState {
    last_hello_epoch: u64,
    reported_down: bool,
}

/// The liveness module.
pub struct LiveModule {
    /// The current heartbeat epoch as seen by this broker.
    epoch: u64,
    /// Children this broker has heard from: rank → state.
    children: HashMap<Rank, ChildState>,
    /// The effective-children set as of the previous heartbeat, to spot
    /// newly adopted children (a dead child's orphans, or a subtree
    /// returned by a `live.up`) whose old tracking state is stale.
    prev_children: Vec<Rank>,
    /// Downs this instance has reported (for tests/tools).
    downs_reported: u64,
}

impl LiveModule {
    /// Creates the module.
    pub fn new() -> LiveModule {
        LiveModule {
            epoch: 0,
            children: HashMap::new(),
            prev_children: Vec::new(),
            downs_reported: 0,
        }
    }
}

impl Default for LiveModule {
    fn default() -> Self {
        Self::new()
    }
}

impl CommsModule for LiveModule {
    fn name(&self) -> &'static str {
        "live"
    }

    fn on_heartbeat(&mut self, ctx: &mut ModuleCtx<'_>, epoch: u64) {
        // Deaf guard: if the epoch jumped by more than one, *this* broker
        // was out of the loop (restarted after a crash, or cut off by a
        // partition) — its child bookkeeping is stale, not its children.
        // Refresh every live child's grace to the new epoch and judge
        // nobody this round; genuinely dead children will still miss the
        // next `miss_limit` consecutive heartbeats.
        let deaf = epoch > self.epoch.saturating_add(1);
        // Stale heartbeat (epoch at or behind what we've seen): events
        // can arrive duplicated or reordered under fault injection. Track
        // the max but never let an old epoch trigger judgements.
        let stale = epoch <= self.epoch && self.epoch != 0;
        self.epoch = self.epoch.max(epoch);
        if deaf {
            for state in self.children.values_mut() {
                if !state.reported_down {
                    state.last_hello_epoch = state.last_hello_epoch.max(epoch);
                }
            }
        }
        // Child side: hello to the (effective) parent.
        if !ctx.is_root() {
            let payload = Value::from_pairs([("rank", Value::from(ctx.rank().0))]);
            let _ = ctx.notify_upstream(LiveMethod::Hello.topic(), payload);
        }
        // Parent side: check for silent children.
        let miss_limit = u64::from(ctx.config().live_miss_limit);
        let current = ctx.children();
        // A child adopted since the last heartbeat (its old parent died,
        // or it returned here after a live.up elsewhere) may carry stale
        // tracking state from an earlier adoption episode — its hellos
        // went to another parent in between. Grant it fresh grace rather
        // than judging it on ancient history.
        for child in &current {
            if !self.prev_children.contains(child) {
                if let Some(state) = self.children.get_mut(child) {
                    if !state.reported_down {
                        state.last_hello_epoch = state.last_hello_epoch.max(epoch);
                    }
                }
            }
        }
        self.prev_children = current.clone();
        let mut to_report = Vec::new();
        for child in current {
            let state = self.children.entry(child).or_insert(ChildState {
                // Grace: an unseen child counts as heard-from now, so
                // session startup (and adoption after a re-parent) does
                // not trigger false positives.
                last_hello_epoch: epoch,
                reported_down: false,
            });
            if state.reported_down || deaf || stale {
                continue;
            }
            if epoch.saturating_sub(state.last_hello_epoch) > miss_limit {
                state.reported_down = true;
                to_report.push(child);
            }
        }
        for child in to_report {
            self.downs_reported += 1;
            ctx.publish(
                Event::LiveDown.topic(),
                Value::from_pairs([("rank", Value::from(child.0))]),
            );
        }
    }

    fn handle_request(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        match LiveMethod::from_method(msg.header.topic.method()) {
            Some(LiveMethod::Hello) => {
                let Some(rank) = msg.payload.get("rank").and_then(Value::as_uint) else {
                    return; // one-way; malformed hellos are dropped
                };
                if rank >= u64::from(ctx.size()) {
                    return; // hello from a rank outside the session
                }
                let rank = Rank(rank as u32);
                let epoch = self.epoch;
                let state = self
                    .children
                    .entry(rank)
                    .or_insert(ChildState { last_hello_epoch: epoch, reported_down: false });
                state.last_hello_epoch = state.last_hello_epoch.max(epoch);
                // A hello from a declared-dead child: it is back.
                if state.reported_down {
                    state.reported_down = false;
                    ctx.publish(
                        Event::LiveUp.topic(),
                        Value::from_pairs([("rank", Value::from(rank.0))]),
                    );
                }
            }
            Some(LiveMethod::Status) => {
                // Local liveness view for tools.
                let size = ctx.size();
                let up: Vec<Value> = (0..size)
                    .filter(|&r| ctx.is_up(Rank(r)))
                    .map(Value::from)
                    .collect();
                ctx.respond(
                    msg,
                    Value::from_pairs([
                        ("up", Value::Array(up)),
                        ("downs_reported", Value::from(self.downs_reported as i64)),
                    ]),
                );
            }
            None => ctx.respond_err(msg, errnum::ENOSYS),
        }
    }
}
