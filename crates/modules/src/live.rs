//! The `live` module: hierarchical liveness detection.
//!
//! On every heartbeat each non-root broker sends a `live.hello` to its
//! effective tree parent. The parent tracks the epoch of each child's
//! last hello; once a child has missed `BrokerConfig::live_miss_limit`
//! consecutive heartbeats, a `live.down` event is published for it.
//! The broker core consumes `live.down`/`live.up` events to update its
//! liveness view, which re-parents the dead node's subtree — the planes'
//! self-healing. A hello from a rank previously declared dead produces a
//! `live.up` event (a replaced node re-joining).

use flux_broker::{CommsModule, ModuleCtx};
use flux_value::Value;
use flux_wire::{errnum, Message, Rank, Topic};
use std::collections::HashMap;

/// Per-child tracking state at a parent.
struct ChildState {
    last_hello_epoch: u64,
    reported_down: bool,
}

/// The liveness module.
pub struct LiveModule {
    /// The current heartbeat epoch as seen by this broker.
    epoch: u64,
    /// Children this broker has heard from: rank → state.
    children: HashMap<Rank, ChildState>,
    /// Downs this instance has reported (for tests/tools).
    downs_reported: u64,
}

impl LiveModule {
    /// Creates the module.
    pub fn new() -> LiveModule {
        LiveModule { epoch: 0, children: HashMap::new(), downs_reported: 0 }
    }
}

impl Default for LiveModule {
    fn default() -> Self {
        Self::new()
    }
}

impl CommsModule for LiveModule {
    fn name(&self) -> &'static str {
        "live"
    }

    fn on_heartbeat(&mut self, ctx: &mut ModuleCtx<'_>, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
        // Child side: hello to the (effective) parent.
        if !ctx.is_root() {
            let payload = Value::from_pairs([("rank", Value::from(ctx.rank().0))]);
            let _ = ctx.notify_upstream(Topic::from_static("live.hello"), payload);
        }
        // Parent side: check for silent children.
        let miss_limit = u64::from(ctx.config().live_miss_limit);
        let mut to_report = Vec::new();
        for child in ctx.children() {
            let state = self.children.entry(child).or_insert(ChildState {
                // Grace: an unseen child counts as heard-from now, so
                // session startup (and adoption after a re-parent) does
                // not trigger false positives.
                last_hello_epoch: epoch,
                reported_down: false,
            });
            if state.reported_down {
                continue;
            }
            if epoch.saturating_sub(state.last_hello_epoch) > miss_limit {
                state.reported_down = true;
                to_report.push(child);
            }
        }
        for child in to_report {
            self.downs_reported += 1;
            ctx.publish(
                Topic::from_static("live.down"),
                Value::from_pairs([("rank", Value::from(child.0))]),
            );
        }
    }

    fn handle_request(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        match msg.header.topic.method() {
            "hello" => {
                let Some(rank) = msg.payload.get("rank").and_then(Value::as_uint) else {
                    return; // one-way; malformed hellos are dropped
                };
                let rank = Rank(rank as u32);
                let epoch = self.epoch;
                let state = self
                    .children
                    .entry(rank)
                    .or_insert(ChildState { last_hello_epoch: epoch, reported_down: false });
                state.last_hello_epoch = state.last_hello_epoch.max(epoch);
                // A hello from a declared-dead child: it is back.
                if state.reported_down {
                    state.reported_down = false;
                    ctx.publish(
                        Topic::from_static("live.up"),
                        Value::from_pairs([("rank", Value::from(rank.0))]),
                    );
                }
            }
            "status" => {
                // Local liveness view for tools.
                let size = ctx.size();
                let up: Vec<Value> = (0..size)
                    .filter(|&r| ctx.is_up(Rank(r)))
                    .map(Value::from)
                    .collect();
                ctx.respond(
                    msg,
                    Value::from_pairs([
                        ("up", Value::Array(up)),
                        ("downs_reported", Value::from(self.downs_reported as i64)),
                    ]),
                );
            }
            _ => ctx.respond_err(msg, errnum::ENOSYS),
        }
    }
}
