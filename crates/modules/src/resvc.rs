//! The `resvc` module: resource enumeration and allocation.
//!
//! At session start every broker enumerates its node's resources into the
//! KVS under `resource.r<rank>` (cores, memory) — "Resources are
//! enumerated in the KVS and allocated when the scheduler runs an
//! application." Allocation requests (`resvc.alloc {jobid, nnodes}`)
//! route to the root instance, which maintains the free set, records the
//! allocation under `lwj.<jobid>.ranks`, and answers with the granted
//! ranks. `resvc.free {jobid}` returns them. The Flux framework layer
//! (flux-core) drives this interface from its schedulers.

use flux_broker::{CommsModule, ModuleCtx};
use flux_proto::{keys, KvsMethod, ResvcMethod};
use flux_value::Value;
use flux_wire::{errnum, Message};
use std::collections::BTreeSet;
use std::collections::HashMap;

/// Per-node synthetic inventory, standing in for hwloc discovery on the
/// paper's testbed nodes (2× 8-core Xeon E5-2670, 32 GB).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeInventory {
    /// Cores per node.
    pub cores: u32,
    /// Memory per node in GiB.
    pub mem_gb: u32,
}

impl Default for NodeInventory {
    fn default() -> Self {
        NodeInventory { cores: 16, mem_gb: 32 }
    }
}

/// The resource service module.
pub struct ResvcModule {
    inventory: NodeInventory,
    /// Root only: ranks not currently allocated.
    free: BTreeSet<u32>,
    /// Root only: jobid → allocated ranks.
    allocations: HashMap<u64, Vec<u32>>,
    /// Non-root: relayed alloc/free requests awaiting the root.
    relays: HashMap<flux_wire::MsgId, Message>,
}

impl ResvcModule {
    /// Creates the module with the default inventory.
    pub fn new() -> ResvcModule {
        Self::with_inventory(NodeInventory::default())
    }

    /// Creates the module with an explicit per-node inventory.
    pub fn with_inventory(inventory: NodeInventory) -> ResvcModule {
        ResvcModule {
            inventory,
            free: BTreeSet::new(),
            allocations: HashMap::new(),
            relays: HashMap::new(),
        }
    }

    fn relay_to_root(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        match ctx.request_upstream(msg.header.topic.clone(), msg.payload.clone()) {
            Ok(id) => {
                self.relays.insert(id, msg.clone());
            }
            Err(e) => ctx.respond_err(msg, e),
        }
    }

    fn handle_alloc(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        debug_assert!(ctx.is_root());
        let (Some(jobid), Some(nnodes)) = (
            msg.payload.get("jobid").and_then(Value::as_uint),
            msg.payload.get("nnodes").and_then(Value::as_uint),
        ) else {
            ctx.respond_err(msg, errnum::EINVAL);
            return;
        };
        if nnodes == 0 || self.allocations.contains_key(&jobid) {
            ctx.respond_err(msg, errnum::EINVAL);
            return;
        }
        if (self.free.len() as u64) < nnodes {
            ctx.respond_err(msg, errnum::EAGAIN);
            return;
        }
        let granted: Vec<u32> = self.free.iter().take(nnodes as usize).copied().collect();
        for r in &granted {
            self.free.remove(r);
        }
        self.allocations.insert(jobid, granted.clone());
        // Record the allocation in the KVS for provenance.
        let ranks_val =
            Value::Array(granted.iter().map(|&r| Value::from(r)).collect());
        let _ = ctx.local_request(
            KvsMethod::Put.topic(),
            Value::from_pairs([
                ("k", Value::from(keys::lwj::ranks_key(jobid))),
                ("v", ranks_val.clone()),
            ]),
        );
        let _ = ctx.local_request(KvsMethod::Commit.topic(), Value::object());
        ctx.respond(
            msg,
            Value::from_pairs([
                ("jobid", Value::from(jobid as i64)),
                ("ranks", ranks_val),
            ]),
        );
    }

    fn handle_free(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        debug_assert!(ctx.is_root());
        let Some(jobid) = msg.payload.get("jobid").and_then(Value::as_uint) else {
            ctx.respond_err(msg, errnum::EINVAL);
            return;
        };
        let Some(ranks) = self.allocations.remove(&jobid) else {
            ctx.respond_err(msg, errnum::ENOENT);
            return;
        };
        self.free.extend(ranks);
        let _ = ctx.local_request(
            KvsMethod::Unlink.topic(),
            Value::from_pairs([("k", Value::from(keys::lwj::ranks_key(jobid)))]),
        );
        let _ = ctx.local_request(KvsMethod::Commit.topic(), Value::object());
        ctx.respond(msg, Value::object());
    }
}

impl Default for ResvcModule {
    fn default() -> Self {
        Self::new()
    }
}

impl CommsModule for ResvcModule {
    fn name(&self) -> &'static str {
        "resvc"
    }

    fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
        // Enumerate this node's resources into the KVS.
        let key = keys::resvc::resource_key(ctx.rank().0);
        let inv = Value::from_pairs([
            ("cores", Value::from(self.inventory.cores)),
            ("mem_gb", Value::from(self.inventory.mem_gb)),
            ("rank", Value::from(ctx.rank().0)),
        ]);
        let _ = ctx.local_request(
            KvsMethod::Put.topic(),
            Value::from_pairs([("k", Value::from(key)), ("v", inv)]),
        );
        // The enumeration lands with a collective fence across all
        // brokers, so `resource.*` is complete once the fence resolves.
        let _ = ctx.local_request(
            KvsMethod::Fence.topic(),
            Value::from_pairs([
                ("name", Value::from(keys::resvc::ENUMERATE_FENCE)),
                ("nprocs", Value::from(i64::from(ctx.size() as i32))),
            ]),
        );
        if ctx.is_root() {
            self.free = (0..ctx.size()).collect();
        }
    }

    fn handle_request(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        match ResvcMethod::from_method(msg.header.topic.method()) {
            Some(ResvcMethod::Alloc) => {
                if ctx.is_root() {
                    self.handle_alloc(ctx, msg);
                } else {
                    self.relay_to_root(ctx, msg);
                }
            }
            Some(ResvcMethod::Free) => {
                if ctx.is_root() {
                    self.handle_free(ctx, msg);
                } else {
                    self.relay_to_root(ctx, msg);
                }
            }
            Some(ResvcMethod::Status) => {
                if ctx.is_root() {
                    ctx.respond(
                        msg,
                        Value::from_pairs([
                            ("free", Value::from(self.free.len())),
                            ("total", Value::from(ctx.size())),
                            ("allocated_jobs", Value::from(self.allocations.len())),
                        ]),
                    );
                } else {
                    self.relay_to_root(ctx, msg);
                }
            }
            None => ctx.respond_err(msg, errnum::ENOSYS),
        }
    }

    fn handle_response(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        if let Some(original) = self.relays.remove(&msg.header.id) {
            if msg.is_error() {
                ctx.respond_err(&original, msg.header.errnum);
            } else {
                ctx.respond(&original, msg.payload.clone());
            }
        }
        // Responses to our own kvs put/commit/fence bookkeeping need no
        // action.
    }
}
