//! # flux-modules
//!
//! The comms modules of Table I of the ICPP'14 Flux paper, minus `kvs`
//! (which lives in its own crate, `flux-kvs`):
//!
//! | module | paper description |
//! |--------|-------------------|
//! | [`HbModule`] | "A periodic heartbeat event multicast across the comms session synchronizes background activity to reduce scheduling jitter." |
//! | [`LiveModule`] | "Each tree node receives heartbeat-synchronized hello messages from its children. After a configurable number of missed messages, a liveliness event is issued for a dead child." |
//! | [`LogModule`] | "Log messages are reduced and filtered before being placed in a log file at the session root. A circular debug buffer provides log context in response to a fault event." |
//! | [`MonModule`] | "Scripts stored in the KVS activate heartbeat-synchronized sampling. Samples are reduced and stored in the KVS." |
//! | [`GroupModule`] | "Flux groups define and manage collections of processes that can participate in collective operations." |
//! | [`BarrierModule`] | "Collective barriers provide synchronization across Flux groups." |
//! | [`WexecModule`] | "Remote processes can be launched in bulk, monitored, receive signals, and have standard I/O captured in the KVS." |
//! | [`ResvcModule`] | "Resources are enumerated in the KVS and allocated when the scheduler runs an application." |
//!
//! [`standard_modules`] builds the full Table I set (including the KVS)
//! for one broker — what a production session loads on every node.


#![forbid(unsafe_code)]
#![deny(missing_docs)]
mod barrier;
mod group;
mod hb;
mod live;
mod log;
mod mon;
mod resvc;
mod wexec;

pub use barrier::BarrierModule;
pub use group::GroupModule;
pub use hb::HbModule;
pub use live::LiveModule;
pub use log::{level as log_level, LogEntry, LogModule};
pub use mon::MonModule;
pub use resvc::ResvcModule;
pub use wexec::WexecModule;

use flux_broker::CommsModule;

/// The full Table I module set for one broker, in load order.
pub fn standard_modules() -> Vec<Box<dyn CommsModule>> {
    standard_modules_with_kvs(flux_kvs::KvsConfig::default())
}

/// The standard module set with an explicit KVS configuration — the
/// chaos suites use this to sweep batching/lookup-memo settings under
/// faults without forking the rest of the stack.
pub fn standard_modules_with_kvs(kvs: flux_kvs::KvsConfig) -> Vec<Box<dyn CommsModule>> {
    vec![
        Box::new(HbModule::new()),
        Box::new(LiveModule::new()),
        Box::new(log::LogModule::new()),
        Box::new(MonModule::new()),
        Box::new(GroupModule::new()),
        Box::new(BarrierModule::new()),
        Box::new(flux_kvs::KvsModule::with_config(kvs)),
        Box::new(WexecModule::new()),
        Box::new(ResvcModule::new()),
    ]
}
