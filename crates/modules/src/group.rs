//! The `group` module: named process groups.
//!
//! Membership is recorded in the KVS under `groups.<name>.<member>`, so
//! group state is globally visible, versioned, and survives the usual
//! consistency reasoning. Members are identified by their broker rank and
//! local client id. Collective operations across a group use the group's
//! size with the `barrier` module (`group.info` reports the size).

use flux_broker::{CommsModule, ModuleCtx};
use flux_proto::{keys, GroupMethod, KvsMethod};
use flux_value::Value;
use flux_wire::{errnum, Message, MsgId};
use std::collections::HashMap;

/// What an outstanding internal KVS request was for.
enum PendingKind {
    /// Join/leave commit: answer the original request.
    Commit(Message),
    /// Listing fetch for `group.info`: answer with the member set.
    Listing(Message),
}

/// The group module.
pub struct GroupModule {
    pending: HashMap<MsgId, PendingKind>,
}

impl GroupModule {
    /// Creates the module.
    pub fn new() -> GroupModule {
        GroupModule { pending: HashMap::new() }
    }

    /// The KVS key for one member of a group.
    fn member_key(name: &str, msg: &Message) -> String {
        // The requester identity: its broker rank plus the local client
        // hop (or "m" for module-originated joins).
        let rank = msg.header.src;
        let client = msg
            .header
            .hops
            .first()
            .and_then(|h| h.as_client_hop())
            .map(|c| format!("c{c}"))
            .unwrap_or_else(|| "m".to_owned());
        keys::group::member_key(name, &format!("r{}-{client}", rank.0))
    }

    fn kvs(&mut self, ctx: &mut ModuleCtx<'_>, method: KvsMethod, payload: Value) -> MsgId {
        ctx.local_request(method.topic(), payload)
    }
}

impl Default for GroupModule {
    fn default() -> Self {
        Self::new()
    }
}

impl CommsModule for GroupModule {
    fn name(&self) -> &'static str {
        "group"
    }

    fn handle_request(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        let Some(name) = msg.payload.get("name").and_then(Value::as_str).map(str::to_owned)
        else {
            ctx.respond_err(msg, errnum::EINVAL);
            return;
        };
        if name.is_empty() || name.contains('.') {
            ctx.respond_err(msg, errnum::EINVAL);
            return;
        }
        match GroupMethod::from_method(msg.header.topic.method()) {
            Some(GroupMethod::Join) => {
                let key = Self::member_key(&name, msg);
                let put = Value::from_pairs([
                    ("k", Value::from(key)),
                    (
                        "v",
                        Value::from_pairs([
                            ("rank", Value::from(msg.header.src.0)),
                            ("joined_ns", Value::from(ctx.now_ns() as i64)),
                        ]),
                    ),
                ]);
                let _ = self.kvs(ctx, KvsMethod::Put, put);
                let id = self.kvs(ctx, KvsMethod::Commit, Value::object());
                self.pending.insert(id, PendingKind::Commit(msg.clone()));
            }
            Some(GroupMethod::Leave) => {
                let key = Self::member_key(&name, msg);
                let unlink = Value::from_pairs([("k", Value::from(key))]);
                let _ = self.kvs(ctx, KvsMethod::Unlink, unlink);
                let id = self.kvs(ctx, KvsMethod::Commit, Value::object());
                self.pending.insert(id, PendingKind::Commit(msg.clone()));
            }
            Some(GroupMethod::Info) => {
                let get = Value::from_pairs([
                    ("k", Value::from(keys::group::dir(&name))),
                    ("dir", Value::Bool(true)),
                ]);
                let id = self.kvs(ctx, KvsMethod::Get, get);
                self.pending.insert(id, PendingKind::Listing(msg.clone()));
            }
            None => ctx.respond_err(msg, errnum::ENOSYS),
        }
    }

    fn handle_response(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        let Some(kind) = self.pending.remove(&msg.header.id) else { return };
        match kind {
            PendingKind::Commit(original) => {
                if msg.is_error() {
                    ctx.respond_err(&original, msg.header.errnum);
                } else {
                    let version =
                        msg.payload.get("version").cloned().unwrap_or(Value::Null);
                    ctx.respond(&original, Value::from_pairs([("version", version)]));
                }
            }
            PendingKind::Listing(original) => {
                if msg.is_error() {
                    if msg.header.errnum == errnum::ENOENT {
                        // Unknown group = empty group.
                        ctx.respond(
                            &original,
                            Value::from_pairs([
                                ("size", Value::Int(0)),
                                ("members", Value::array()),
                            ]),
                        );
                    } else {
                        ctx.respond_err(&original, msg.header.errnum);
                    }
                    return;
                }
                let members: Vec<Value> = msg
                    .payload
                    .get("dir")
                    .and_then(Value::as_object)
                    .map(|m| m.keys().map(|k| Value::from(k.as_str())).collect())
                    .unwrap_or_default();
                ctx.respond(
                    &original,
                    Value::from_pairs([
                        ("size", Value::from(members.len())),
                        ("members", Value::Array(members)),
                    ]),
                );
            }
        }
    }
}
