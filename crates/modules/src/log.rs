//! The `log` module: reduced, filtered session logging.
//!
//! `log.msg {level, text}` appends to a per-broker circular debug buffer;
//! entries at or above the forwarding level are batched and flushed
//! upstream on each heartbeat, merging with other brokers' batches on the
//! way (the reduction), until they land in the session log at the root.
//! A `log.fault` event makes every broker dump its circular buffer
//! upstream — the paper's "circular debug buffer provides log context in
//! response to a fault event". `log.dump` returns the local buffer
//! (rank-addressable for debugging); `log.query` returns the root log.

use flux_broker::{CommsModule, ModuleCtx};
use flux_proto::{Event, LogMethod};
use flux_value::Value;
use flux_wire::{errnum, Message, MsgId};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Severity levels, syslog-flavoured: lower is more severe.
pub mod level {
    /// Unrecoverable errors.
    pub const ERR: i64 = 3;
    /// Warnings.
    pub const WARN: i64 = 4;
    /// Informational.
    pub const INFO: i64 = 6;
    /// Debug chatter (kept in the circular buffer, not forwarded).
    pub const DEBUG: i64 = 7;
}

/// One log record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Originating broker rank.
    pub rank: u32,
    /// Severity (see [`level`]).
    pub level: i64,
    /// Message text.
    pub text: String,
    /// Origin timestamp in nanoseconds.
    pub time_ns: u64,
}

impl LogEntry {
    fn to_value(&self) -> Value {
        Value::from_pairs([
            ("rank", Value::from(self.rank)),
            ("level", Value::Int(self.level)),
            ("text", Value::from(self.text.as_str())),
            ("time_ns", Value::Int(self.time_ns as i64)),
        ])
    }

    fn from_value(v: &Value) -> Option<LogEntry> {
        Some(LogEntry {
            rank: v.get("rank")?.as_uint()? as u32,
            level: v.get("level")?.as_int()?,
            text: v.get("text")?.as_str()?.to_owned(),
            time_ns: v.get("time_ns")?.as_int()? as u64,
        })
    }
}

/// Log module tuning.
#[derive(Clone, Copy, Debug)]
pub struct LogConfig {
    /// Circular debug buffer capacity per broker.
    pub ring_capacity: usize,
    /// Only entries at or above (numerically ≤) this level forward to the
    /// root on heartbeats.
    pub forward_level: i64,
    /// Root session log capacity (oldest entries drop beyond this).
    pub root_capacity: usize,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig { ring_capacity: 256, forward_level: level::INFO, root_capacity: 65536 }
    }
}

/// The log module.
pub struct LogModule {
    cfg: LogConfig,
    /// Circular debug buffer (all levels).
    ring: VecDeque<LogEntry>,
    /// Entries awaiting the next heartbeat flush.
    batch: Vec<LogEntry>,
    /// Root only: the session log.
    session_log: VecDeque<LogEntry>,
    /// Outstanding relayed queries: upstream id → original request.
    query_relays: HashMap<MsgId, Message>,
}

impl LogModule {
    /// Creates the module with default tuning.
    pub fn new() -> LogModule {
        Self::with_config(LogConfig::default())
    }

    /// Creates the module with explicit tuning.
    pub fn with_config(cfg: LogConfig) -> LogModule {
        LogModule {
            cfg,
            ring: VecDeque::new(),
            batch: Vec::new(),
            session_log: VecDeque::new(),
            query_relays: HashMap::new(),
        }
    }

    fn append(&mut self, ctx: &mut ModuleCtx<'_>, entry: LogEntry) {
        if self.ring.len() == self.cfg.ring_capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(entry.clone());
        if entry.level <= self.cfg.forward_level {
            if ctx.is_root() {
                self.root_store(entry);
            } else {
                self.batch.push(entry);
            }
        }
    }

    fn root_store(&mut self, entry: LogEntry) {
        if self.session_log.len() == self.cfg.root_capacity {
            self.session_log.pop_front();
        }
        self.session_log.push_back(entry);
    }

    fn entries_value(entries: impl Iterator<Item = LogEntry>) -> Value {
        Value::Array(entries.map(|e| e.to_value()).collect())
    }

    fn flush_batch(&mut self, ctx: &mut ModuleCtx<'_>) {
        if self.batch.is_empty() || ctx.is_root() {
            return;
        }
        let entries = std::mem::take(&mut self.batch);
        let payload = Value::from_pairs([(
            "entries",
            Self::entries_value(entries.into_iter()),
        )]);
        let _ = ctx.notify_upstream(LogMethod::Batch.topic(), payload);
    }
}

impl Default for LogModule {
    fn default() -> Self {
        Self::new()
    }
}

impl CommsModule for LogModule {
    fn name(&self) -> &'static str {
        "log"
    }

    fn subscriptions(&self) -> Vec<String> {
        vec![Event::LogFault.topic_str().to_owned()]
    }

    fn handle_request(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        match LogMethod::from_method(msg.header.topic.method()) {
            Some(LogMethod::Msg) => {
                let level = msg.payload.get("level").and_then(Value::as_int).unwrap_or(level::INFO);
                let Some(text) = msg.payload.get("text").and_then(Value::as_str) else {
                    ctx.respond_err(msg, errnum::EINVAL);
                    return;
                };
                let entry = LogEntry {
                    rank: ctx.rank().0,
                    level,
                    text: text.to_owned(),
                    time_ns: ctx.now_ns(),
                };
                self.append(ctx, entry);
                ctx.respond(msg, Value::object());
            }
            Some(LogMethod::Batch) => {
                // Merged entries climbing the tree (one-way). Interior
                // brokers re-batch; the root stores.
                let Some(arr) = msg.payload.get("entries").and_then(Value::as_array) else {
                    return;
                };
                let entries: Vec<LogEntry> =
                    arr.iter().filter_map(LogEntry::from_value).collect();
                if ctx.is_root() {
                    for e in entries {
                        self.root_store(e);
                    }
                } else {
                    self.batch.extend(entries);
                }
            }
            Some(LogMethod::Dump) => {
                // Local circular buffer (rank-addressable for debugging).
                ctx.respond(
                    msg,
                    Value::from_pairs([(
                        "entries",
                        Self::entries_value(self.ring.iter().cloned()),
                    )]),
                );
            }
            Some(LogMethod::Query) => {
                if ctx.is_root() {
                    let min_level =
                        msg.payload.get("level").and_then(Value::as_int).unwrap_or(i64::MAX);
                    let entries = self
                        .session_log
                        .iter()
                        .filter(|e| e.level <= min_level)
                        .cloned();
                    ctx.respond(
                        msg,
                        Value::from_pairs([("entries", Self::entries_value(entries))]),
                    );
                } else {
                    // Relay to the root's instance.
                    match ctx.request_upstream(LogMethod::Query.topic(), msg.payload.clone()) {
                        Ok(id) => {
                            self.query_relays.insert(id, msg.clone());
                        }
                        Err(e) => ctx.respond_err(msg, e),
                    }
                }
            }
            None => ctx.respond_err(msg, errnum::ENOSYS),
        }
    }

    fn handle_response(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        if let Some(original) = self.query_relays.remove(&msg.header.id) {
            if msg.is_error() {
                ctx.respond_err(&original, msg.header.errnum);
            } else {
                ctx.respond(&original, msg.payload.clone());
            }
        }
    }

    fn handle_event(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        if msg.header.topic.as_str() != Event::LogFault.topic_str() {
            return;
        }
        // Fault: every broker dumps its debug ring to the root for
        // post-mortem context, regardless of forward level.
        if !ctx.is_root() && !self.ring.is_empty() {
            let payload = Value::from_pairs([(
                "entries",
                Self::entries_value(self.ring.iter().cloned()),
            )]);
            let _ = ctx.notify_upstream(LogMethod::Batch.topic(), payload);
        }
    }

    fn on_heartbeat(&mut self, ctx: &mut ModuleCtx<'_>, _epoch: u64) {
        self.flush_batch(ctx);
    }
}
