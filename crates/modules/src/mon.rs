//! The `mon` module: heartbeat-synchronized monitoring.
//!
//! Sampler specifications live in the KVS under `mon.samplers.<name>`
//! (the paper stores the sampling scripts themselves in the KVS; we store
//! a spec naming a built-in synthetic metric — see the substitution table
//! in DESIGN.md). Every broker samples on matching heartbeat epochs,
//! contributions reduce (sum/min/max/count) on their way up the tree, and
//! the root stores the aggregate back into the KVS under
//! `mon.data.<name>.e<epoch>`.

use flux_broker::{CommsModule, ModuleCtx};
use flux_proto::{keys, KvsMethod, MonMethod};
use flux_value::Value;
use flux_wire::{errnum, Message, MsgId};
use std::collections::HashMap;

/// A sampler specification.
#[derive(Debug, Clone, PartialEq)]
struct Spec {
    metric: String,
    period: u64,
}

/// A partial aggregate travelling up the tree.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Agg {
    sum: f64,
    min: f64,
    max: f64,
    count: u64,
}

impl Agg {
    fn of(v: f64) -> Agg {
        Agg { sum: v, min: v, max: v, count: 1 }
    }

    fn merge(&mut self, o: Agg) {
        self.sum += o.sum;
        self.min = self.min.min(o.min);
        self.max = self.max.max(o.max);
        self.count += o.count;
    }
}

/// Deterministic synthetic metric: stands in for the paper's Linux
/// sampling scripts (no real /proc in the simulator). Spread and
/// per-epoch variation make reductions meaningful.
pub fn synth_metric(metric: &str, rank: u32, epoch: u64) -> f64 {
    let seed = metric.bytes().fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(u64::from(b)));
    let x = seed
        .wrapping_add(u64::from(rank).wrapping_mul(2_654_435_761))
        .wrapping_add(epoch.wrapping_mul(40_503))
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407);
    ((x >> 33) % 10_000) as f64 / 100.0
}

/// What an outstanding internal KVS request was for.
enum PendingKind {
    /// A `mon.add` waiting for its commit; answer the original request.
    AddCommit(Message),
    /// Spec-refresh directory listing.
    DirListing,
    /// Spec body fetch for this sampler name.
    SpecFetch(String),
    /// Fire-and-forget bookkeeping write.
    Ignore,
}

/// The monitoring module.
pub struct MonModule {
    specs: HashMap<String, Spec>,
    /// Directory listing fingerprint from the last refresh.
    listing: HashMap<String, String>,
    /// (name, epoch) → partial aggregate.
    acc: HashMap<(String, u64), Agg>,
    pending: HashMap<MsgId, PendingKind>,
    epoch: u64,
    /// Aggregates finalized at the root (for tests/tools).
    finalized: u64,
}

impl MonModule {
    /// Creates the module.
    pub fn new() -> MonModule {
        MonModule {
            specs: HashMap::new(),
            listing: HashMap::new(),
            acc: HashMap::new(),
            pending: HashMap::new(),
            epoch: 0,
            finalized: 0,
        }
    }

    fn kvs(&mut self, ctx: &mut ModuleCtx<'_>, method: KvsMethod, payload: Value, kind: PendingKind) {
        let id = ctx.local_request(method.topic(), payload);
        self.pending.insert(id, kind);
    }

    fn refresh_specs(&mut self, ctx: &mut ModuleCtx<'_>) {
        self.kvs(
            ctx,
            KvsMethod::Get,
            Value::from_pairs([
                ("k", Value::from(keys::mon::SAMPLERS_DIR)),
                ("dir", Value::Bool(true)),
            ]),
            PendingKind::DirListing,
        );
    }

    fn contribute(&mut self, ctx: &mut ModuleCtx<'_>, name: &str, epoch: u64, agg: Agg) {
        self.acc
            .entry((name.to_owned(), epoch))
            .and_modify(|a| a.merge(agg))
            .or_insert(agg);
        let _ = ctx; // flushes happen on heartbeats
    }

    fn flush(&mut self, ctx: &mut ModuleCtx<'_>, current_epoch: u64) {
        // At the root, hold an epoch open long enough for contributions
        // from the deepest brokers to climb the tree (one flush level per
        // heartbeat); interiors forward anything older than the current
        // epoch immediately.
        let lag = if ctx.is_root() { u64::from(ctx.tree_height()) + 1 } else { 0 };
        let ready: Vec<((String, u64), Agg)> = {
            let keys: Vec<(String, u64)> = self
                .acc
                .keys()
                .filter(|(_, e)| e + lag < current_epoch)
                .cloned()
                .collect();
            keys.into_iter()
                .map(|k| {
                    let agg = self.acc.remove(&k).expect("key present");
                    (k, agg)
                })
                .collect()
        };
        if ready.is_empty() {
            return;
        }
        if ctx.is_root() {
            // Finalize: store aggregates into the KVS in one commit.
            for ((name, epoch), agg) in ready {
                self.finalized += 1;
                let payload = Value::from_pairs([
                    ("k", Value::from(keys::mon::data_key(&name, epoch))),
                    (
                        "v",
                        Value::from_pairs([
                            ("sum", Value::Float(agg.sum)),
                            ("min", Value::Float(agg.min)),
                            ("max", Value::Float(agg.max)),
                            ("count", Value::from(agg.count as i64)),
                            ("avg", Value::Float(agg.sum / agg.count as f64)),
                        ]),
                    ),
                ]);
                self.kvs(ctx, KvsMethod::Put, payload, PendingKind::Ignore);
            }
            self.kvs(ctx, KvsMethod::Commit, Value::object(), PendingKind::Ignore);
        } else {
            for ((name, epoch), agg) in ready {
                let payload = Value::from_pairs([
                    ("name", Value::from(name)),
                    ("epoch", Value::from(epoch as i64)),
                    ("sum", Value::Float(agg.sum)),
                    ("min", Value::Float(agg.min)),
                    ("max", Value::Float(agg.max)),
                    ("count", Value::from(agg.count as i64)),
                ]);
                let _ = ctx.notify_upstream(MonMethod::Up.topic(), payload);
            }
        }
    }
}

impl Default for MonModule {
    fn default() -> Self {
        Self::new()
    }
}

impl CommsModule for MonModule {
    fn name(&self) -> &'static str {
        "mon"
    }

    fn handle_request(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        match MonMethod::from_method(msg.header.topic.method()) {
            Some(MonMethod::Add) => {
                let (Some(name), Some(metric)) = (
                    msg.payload.get("name").and_then(Value::as_str),
                    msg.payload.get("metric").and_then(Value::as_str),
                ) else {
                    ctx.respond_err(msg, errnum::EINVAL);
                    return;
                };
                let period = msg.payload.get("period").and_then(Value::as_uint).unwrap_or(1);
                let spec_val = Value::from_pairs([
                    ("metric", Value::from(metric)),
                    ("period", Value::from(period as i64)),
                ]);
                let put = Value::from_pairs([
                    ("k", Value::from(keys::mon::sampler_key(name))),
                    ("v", spec_val),
                ]);
                self.kvs(ctx, KvsMethod::Put, put, PendingKind::Ignore);
                self.kvs(
                    ctx,
                    KvsMethod::Commit,
                    Value::object(),
                    PendingKind::AddCommit(msg.clone()),
                );
            }
            Some(MonMethod::Up) => {
                let (Some(name), Some(epoch), Some(sum), Some(min), Some(max), Some(count)) = (
                    msg.payload.get("name").and_then(Value::as_str).map(str::to_owned),
                    msg.payload.get("epoch").and_then(Value::as_uint),
                    msg.payload.get("sum").and_then(Value::as_float),
                    msg.payload.get("min").and_then(Value::as_float),
                    msg.payload.get("max").and_then(Value::as_float),
                    msg.payload.get("count").and_then(Value::as_uint),
                ) else {
                    return; // one-way
                };
                self.contribute(ctx, &name, epoch, Agg { sum, min, max, count });
            }
            Some(MonMethod::List) => {
                let mut specs = flux_value::Map::new();
                // flux-lint: allow(nondet) — entries are re-keyed into the
                // ordered flux_value::Map, so the reply encoding is canonical.
                for (name, spec) in &self.specs {
                    specs.insert(
                        name.clone(),
                        Value::from_pairs([
                            ("metric", Value::from(spec.metric.as_str())),
                            ("period", Value::from(spec.period as i64)),
                        ]),
                    );
                }
                ctx.respond(msg, Value::from_pairs([("samplers", Value::Object(specs))]));
            }
            None => ctx.respond_err(msg, errnum::ENOSYS),
        }
    }

    fn handle_response(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        let Some(kind) = self.pending.remove(&msg.header.id) else { return };
        match kind {
            PendingKind::Ignore => {}
            PendingKind::AddCommit(original) => {
                if msg.is_error() {
                    ctx.respond_err(&original, msg.header.errnum);
                } else {
                    ctx.respond(&original, Value::object());
                }
            }
            PendingKind::DirListing => {
                if msg.is_error() {
                    // No samplers registered yet.
                    return;
                }
                let Some(listing) = msg.payload.get("dir").and_then(Value::as_object) else {
                    return;
                };
                for (name, idv) in listing {
                    let hex = idv.as_str().unwrap_or_default().to_owned();
                    if self.listing.get(name) != Some(&hex) {
                        self.listing.insert(name.clone(), hex);
                        let get = Value::from_pairs([(
                            "k",
                            Value::from(keys::mon::sampler_key(name)),
                        )]);
                        self.kvs(ctx, KvsMethod::Get, get, PendingKind::SpecFetch(name.clone()));
                    }
                }
            }
            PendingKind::SpecFetch(name) => {
                if msg.is_error() {
                    return;
                }
                let v = msg.payload.get("v");
                let metric = v
                    .and_then(|v| v.get("metric"))
                    .and_then(Value::as_str)
                    .unwrap_or("load")
                    .to_owned();
                let period = v
                    .and_then(|v| v.get("period"))
                    .and_then(Value::as_uint)
                    .unwrap_or(1)
                    .max(1);
                self.specs.insert(name, Spec { metric, period });
            }
        }
    }

    fn on_heartbeat(&mut self, ctx: &mut ModuleCtx<'_>, epoch: u64) {
        self.epoch = epoch;
        // Flush the previous epoch's partial aggregates upward (or, at the
        // root, into the KVS).
        self.flush(ctx, epoch);
        // Sample local metrics for this epoch.
        let rank = ctx.rank().0;
        let samples: Vec<(String, Agg)> = self
            .specs
            .iter()
            .filter(|(_, s)| epoch.is_multiple_of(s.period))
            .map(|(name, s)| (name.clone(), Agg::of(synth_metric(&s.metric, rank, epoch))))
            .collect();
        for (name, agg) in samples {
            self.contribute(ctx, &name, epoch, agg);
        }
        // Keep the spec set fresh (cheap: local KVS walk, cached objects).
        self.refresh_specs(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_metric_is_deterministic_and_bounded() {
        for metric in ["load", "mem", "net"] {
            for rank in [0u32, 1, 511] {
                for epoch in [1u64, 2, 100] {
                    let a = synth_metric(metric, rank, epoch);
                    let b = synth_metric(metric, rank, epoch);
                    assert_eq!(a, b);
                    assert!((0.0..100.0).contains(&a), "{a}");
                }
            }
        }
        assert_ne!(synth_metric("load", 0, 1), synth_metric("load", 1, 1));
        assert_ne!(synth_metric("load", 0, 1), synth_metric("mem", 0, 1));
    }

    #[test]
    fn agg_merge_combines() {
        let mut a = Agg::of(1.0);
        a.merge(Agg::of(5.0));
        a.merge(Agg::of(3.0));
        assert_eq!(a.sum, 9.0);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 5.0);
        assert_eq!(a.count, 3);
    }
}
