//! The `hb` module: the session heartbeat.
//!
//! The root broker's instance publishes an `hb` event every
//! `BrokerConfig::hb_period_ns`; the broker core delivers it to every
//! module's `on_heartbeat` hook session-wide. Synchronizing background
//! activity (liveness hellos, log flushes, monitoring samples, cache
//! expiry) to one pulse is the paper's jitter-reduction mechanism.

use flux_broker::{CommsModule, ModuleCtx};
use flux_proto::{Event, HbMethod};
use flux_value::Value;
use flux_wire::{errnum, Message};

/// The heartbeat module. Only the root instance is active; instances on
/// other ranks merely answer `hb.epoch` queries from the last event seen.
pub struct HbModule {
    epoch: u64,
}

impl HbModule {
    /// Creates the module.
    pub fn new() -> HbModule {
        HbModule { epoch: 0 }
    }

    /// The last epoch this broker has seen.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Default for HbModule {
    fn default() -> Self {
        Self::new()
    }
}

const TIMER_PULSE: u64 = 1;

impl CommsModule for HbModule {
    fn name(&self) -> &'static str {
        "hb"
    }

    fn on_start(&mut self, ctx: &mut ModuleCtx<'_>) {
        if ctx.is_root() {
            ctx.set_timer(ctx.config().hb_period_ns, TIMER_PULSE);
        }
    }

    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, token: u64) {
        if token != TIMER_PULSE || !ctx.is_root() {
            return;
        }
        self.epoch += 1;
        ctx.publish(
            Event::Hb.topic(),
            Value::from_pairs([("epoch", Value::from(self.epoch as i64))]),
        );
        ctx.set_timer(ctx.config().hb_period_ns, TIMER_PULSE);
    }

    fn on_heartbeat(&mut self, _ctx: &mut ModuleCtx<'_>, epoch: u64) {
        // Non-root instances track the epoch from the event itself.
        self.epoch = self.epoch.max(epoch);
    }

    fn handle_request(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        match HbMethod::from_method(msg.header.topic.method()) {
            Some(HbMethod::Epoch) => ctx.respond(
                msg,
                Value::from_pairs([("epoch", Value::from(self.epoch as i64))]),
            ),
            None => ctx.respond_err(msg, errnum::ENOSYS),
        }
    }
}
