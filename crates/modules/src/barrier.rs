//! The `barrier` module: collective synchronization.
//!
//! Clients enter with `barrier.enter {name, nprocs}`. Entry counts are
//! aggregated up the tree — each broker batches contributions within a
//! short window before forwarding one merged `barrier.up` — and when the
//! root's count reaches `nprocs`, it publishes a `barrier.exit` event;
//! every broker then releases its local waiters. This is the same
//! reduction/event shape as `kvs.fence` minus the data, and the module
//! the paper's KAP uses for phase alignment.

use flux_broker::{CommsModule, ModuleCtx};
use flux_proto::{BarrierMethod, Event};
use flux_value::Value;
use flux_wire::{errnum, Message};
use std::collections::{HashMap, HashSet};

/// Per-barrier accumulation state.
#[derive(Default)]
struct BarrierAcc {
    nprocs: u64,
    count: u64,
    unflushed: u64,
    waiters: Vec<Message>,
    window_armed: bool,
    /// `(source rank, batch id)` of child batches already merged here: a
    /// transport-duplicated `barrier.up` frame must not double-count its
    /// contributions and release the barrier early (the same at-most-once
    /// hazard the KVS fence dedups — found by flux-mc duplicate-delivery
    /// exploration).
    seen_batches: HashSet<(u32, u64)>,
}

/// Tuning for the aggregation window.
#[derive(Clone, Copy, Debug)]
pub struct BarrierConfig {
    /// Contributions arriving within this window merge into one upstream
    /// message.
    pub window_ns: u64,
}

impl Default for BarrierConfig {
    fn default() -> Self {
        BarrierConfig { window_ns: 20_000 }
    }
}

/// The barrier module.
pub struct BarrierModule {
    cfg: BarrierConfig,
    barriers: HashMap<String, BarrierAcc>,
    tokens: HashMap<u64, String>,
    next_token: u64,
    /// Monotonic id stamped on every flushed batch, so parents can
    /// recognise (and discard) transport-duplicated batches.
    next_batch: u64,
    /// Completed barriers (root only; for tests/tools).
    completed: u64,
}

impl BarrierModule {
    /// Creates the module with default tuning.
    pub fn new() -> BarrierModule {
        Self::with_config(BarrierConfig::default())
    }

    /// Creates the module with explicit tuning.
    pub fn with_config(cfg: BarrierConfig) -> BarrierModule {
        BarrierModule {
            cfg,
            barriers: HashMap::new(),
            tokens: HashMap::new(),
            next_token: 0,
            next_batch: 0,
            completed: 0,
        }
    }

    fn contribute(
        &mut self,
        ctx: &mut ModuleCtx<'_>,
        name: &str,
        nprocs: u64,
        count: u64,
        waiter: Option<Message>,
    ) {
        let acc = self.barriers.entry(name.to_owned()).or_default();
        if acc.nprocs == 0 {
            acc.nprocs = nprocs;
        }
        acc.count += count;
        acc.unflushed += count;
        if let Some(w) = waiter {
            acc.waiters.push(w);
        }
        if ctx.is_root() {
            self.check_complete(ctx, name);
        } else if !self.barriers[name].window_armed {
            self.next_token += 1;
            self.tokens.insert(self.next_token, name.to_owned());
            ctx.set_timer(self.cfg.window_ns, self.next_token);
            self.barriers.get_mut(name).expect("just inserted").window_armed = true;
        }
    }

    fn check_complete(&mut self, ctx: &mut ModuleCtx<'_>, name: &str) {
        let Some(acc) = self.barriers.get(name) else { return };
        if acc.nprocs == 0 || acc.count < acc.nprocs {
            return;
        }
        let acc = self.barriers.remove(name).expect("checked");
        self.completed += 1;
        ctx.publish(
            Event::BarrierExit.topic(),
            Value::from_pairs([("name", Value::from(name))]),
        );
        for req in acc.waiters {
            ctx.respond(&req, Value::from_pairs([("name", Value::from(name))]));
        }
    }

    fn flush(&mut self, ctx: &mut ModuleCtx<'_>, name: &str) {
        self.next_batch += 1;
        let batch = self.next_batch;
        let src = ctx.rank().0;
        let Some(acc) = self.barriers.get_mut(name) else { return };
        acc.window_armed = false;
        if acc.unflushed == 0 {
            return;
        }
        let count = std::mem::take(&mut acc.unflushed);
        let payload = Value::from_pairs([
            ("name", Value::from(name)),
            ("nprocs", Value::from(acc.nprocs as i64)),
            ("count", Value::from(count as i64)),
            ("src", Value::from(src)),
            ("batch", Value::from(batch as i64)),
        ]);
        let _ = ctx.notify_upstream(BarrierMethod::Up.topic(), payload);
    }
}

impl Default for BarrierModule {
    fn default() -> Self {
        Self::new()
    }
}

impl CommsModule for BarrierModule {
    fn name(&self) -> &'static str {
        "barrier"
    }

    fn subscriptions(&self) -> Vec<String> {
        vec![Event::BarrierExit.topic_str().to_owned()]
    }

    fn handle_request(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        match BarrierMethod::from_method(msg.header.topic.method()) {
            Some(BarrierMethod::Enter) => {
                let (Some(name), Some(nprocs)) = (
                    msg.payload.get("name").and_then(Value::as_str).map(str::to_owned),
                    msg.payload.get("nprocs").and_then(Value::as_uint),
                ) else {
                    ctx.respond_err(msg, errnum::EINVAL);
                    return;
                };
                if nprocs == 0 {
                    ctx.respond_err(msg, errnum::EINVAL);
                    return;
                }
                self.contribute(ctx, &name, nprocs, 1, Some(msg.clone()));
            }
            Some(BarrierMethod::Up) => {
                let (Some(name), Some(nprocs), Some(count)) = (
                    msg.payload.get("name").and_then(Value::as_str).map(str::to_owned),
                    msg.payload.get("nprocs").and_then(Value::as_uint),
                    msg.payload.get("count").and_then(Value::as_uint),
                ) else {
                    return; // one-way
                };
                // Idempotence under duplicated frames: merge any given
                // child batch at most once.
                if let (Some(src), Some(batch)) = (
                    msg.payload.get("src").and_then(Value::as_uint),
                    msg.payload.get("batch").and_then(Value::as_uint),
                ) {
                    let acc = self.barriers.entry(name.clone()).or_default();
                    if !acc.seen_batches.insert((src as u32, batch)) {
                        return; // already merged this batch
                    }
                }
                self.contribute(ctx, &name, nprocs, count, None);
            }
            None => ctx.respond_err(msg, errnum::ENOSYS),
        }
    }

    fn handle_event(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        if msg.header.topic.as_str() != Event::BarrierExit.topic_str() {
            return;
        }
        let Some(name) = msg.payload.get("name").and_then(Value::as_str) else { return };
        if let Some(acc) = self.barriers.remove(name) {
            for req in acc.waiters {
                ctx.respond(&req, Value::from_pairs([("name", Value::from(name))]));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, token: u64) {
        if let Some(name) = self.tokens.remove(&token) {
            self.flush(ctx, &name);
        }
    }
}
