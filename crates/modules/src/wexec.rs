//! The `wexec` module: bulk remote execution.
//!
//! `wexec.run {jobid, targets, cmd}` fans out as a session event; every
//! targeted broker launches the task, captures its standard output into
//! the KVS under `lwj.<jobid>.<rank>.stdout`, and reports exit status up
//! the tree (statuses reduce on the way). When all targets have reported,
//! the root records `lwj.<jobid>.complete` in the KVS and publishes a
//! `wexec.complete` event. `wexec.kill` signals every task of a job.
//!
//! ## Simulated processes
//!
//! Real `fork`/`exec` does not exist inside the simulator, so commands
//! are interpreted by a tiny built-in executor (see DESIGN.md's
//! substitution table):
//!
//! * `sleep <ms>` — completes after virtual `<ms>` milliseconds, exit 0;
//! * `echo <text>` — writes `<text>` (with `$RANK` expanded) to stdout,
//!   exit 0;
//! * `work <ms> <text>` — sleeps, then writes, exit 0;
//! * `fail <code>` — exits immediately with `<code>`;
//! * anything else — exit 127, like a shell.
//!
//! The protocol (bulk launch, monitoring, signals, I/O capture in the
//! KVS) is exactly the paper's; only the process body is synthetic.

use flux_broker::{CommsModule, ModuleCtx};
use flux_proto::{keys, Event, KvsMethod, WexecMethod};
use flux_value::Value;
use flux_wire::{errnum, Message, Rank};
use std::collections::HashMap;

/// A local task's lifecycle.
#[derive(Debug, Clone, PartialEq)]
enum TaskState {
    /// Waiting on its completion timer.
    Running,
    /// Finished with this exit code.
    Exited(i64),
}

struct Task {
    jobid: u64,
    state: TaskState,
    cmd: String,
}

/// Root-side per-job completion tracking.
#[derive(Default)]
struct JobAcc {
    expected: u64,
    reported: u64,
    failed: u64,
    max_code: i64,
}

/// The wexec module.
pub struct WexecModule {
    /// Local tasks by timer token (== task handle).
    tasks: HashMap<u64, Task>,
    next_token: u64,
    /// Root only: job completion accounting.
    jobs: HashMap<u64, JobAcc>,
    /// Status contributions not yet flushed upstream (slaves).
    unflushed: HashMap<u64, (u64, u64, i64)>, // jobid → (reported, failed, max_code)
}

impl WexecModule {
    /// Creates the module.
    pub fn new() -> WexecModule {
        WexecModule {
            tasks: HashMap::new(),
            next_token: 0,
            jobs: HashMap::new(),
            unflushed: HashMap::new(),
        }
    }

    /// Interprets a command for this rank: returns (runtime_ns, stdout,
    /// exit code).
    fn interpret(cmd: &str, rank: Rank) -> (u64, Option<String>, i64) {
        let mut parts = cmd.splitn(3, ' ');
        match parts.next() {
            Some("sleep") => {
                let ms: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                (ms * 1_000_000, None, 0)
            }
            Some("echo") => {
                let text = cmd.strip_prefix("echo ").unwrap_or("").to_owned();
                (0, Some(text.replace("$RANK", &rank.0.to_string())), 0)
            }
            Some("work") => {
                let ms: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
                let text = parts.next().unwrap_or("").to_owned();
                (ms * 1_000_000, Some(text.replace("$RANK", &rank.0.to_string())), 0)
            }
            Some("fail") => {
                let code: i64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(1);
                (0, None, code)
            }
            _ => (0, None, 127),
        }
    }

    fn targeted(targets: &Value, rank: Rank) -> bool {
        match targets {
            Value::Str(s) if s == "all" => true,
            Value::Array(ranks) => {
                ranks.iter().any(|r| r.as_uint() == Some(u64::from(rank.0)))
            }
            _ => false,
        }
    }

    fn launch(&mut self, ctx: &mut ModuleCtx<'_>, jobid: u64, cmd: &str) {
        let (runtime_ns, stdout, code) = Self::interpret(cmd, ctx.rank());
        self.next_token += 1;
        let token = self.next_token;
        self.tasks.insert(
            token,
            Task { jobid, state: TaskState::Running, cmd: cmd.to_owned() },
        );
        if let Some(out) = stdout {
            // Standard I/O captured in the KVS (paper, Table I). Written
            // back lazily: the job-completion commit flushes it.
            let key = keys::lwj::stdout_key(jobid, ctx.rank().0);
            let _ = ctx.local_request(
                KvsMethod::Put.topic(),
                Value::from_pairs([("k", Value::from(key)), ("v", Value::from(out))]),
            );
            let _ = ctx.local_request(KvsMethod::Commit.topic(), Value::object());
        }
        if runtime_ns == 0 {
            self.finish_task(ctx, token, code);
        } else {
            // Exit code is decided at launch for synthetic tasks; kill can
            // still override it before the timer fires.
            self.tasks.get_mut(&token).expect("just inserted").state = TaskState::Running;
            ctx.set_timer(runtime_ns, token);
            // Stash the natural exit code in the command string? No — keep
            // it simple: synthetic tasks always exit 0 after sleeping; the
            // `fail` command has zero runtime and exits above.
        }
    }

    fn finish_task(&mut self, ctx: &mut ModuleCtx<'_>, token: u64, code: i64) {
        let Some(task) = self.tasks.get_mut(&token) else { return };
        if matches!(task.state, TaskState::Exited(_)) {
            return;
        }
        task.state = TaskState::Exited(code);
        let jobid = task.jobid;
        self.report_status(ctx, jobid, 1, u64::from(code != 0), code);
    }

    /// Merge a status contribution and (at the root) check completion.
    fn report_status(
        &mut self,
        ctx: &mut ModuleCtx<'_>,
        jobid: u64,
        reported: u64,
        failed: u64,
        max_code: i64,
    ) {
        if ctx.is_root() {
            let acc = self.jobs.entry(jobid).or_default();
            acc.reported += reported;
            acc.failed += failed;
            acc.max_code = acc.max_code.max(max_code);
            self.check_job_complete(ctx, jobid);
        } else {
            let e = self.unflushed.entry(jobid).or_insert((0, 0, 0));
            e.0 += reported;
            e.1 += failed;
            e.2 = e.2.max(max_code);
        }
    }

    fn check_job_complete(&mut self, ctx: &mut ModuleCtx<'_>, jobid: u64) {
        let Some(acc) = self.jobs.get(&jobid) else { return };
        if acc.expected == 0 || acc.reported < acc.expected {
            return;
        }
        let acc = self.jobs.remove(&jobid).expect("checked");
        let complete = Value::from_pairs([
            ("ntasks", Value::from(acc.expected as i64)),
            ("failed", Value::from(acc.failed as i64)),
            ("max_code", Value::Int(acc.max_code)),
        ]);
        let _ = ctx.local_request(
            KvsMethod::Put.topic(),
            Value::from_pairs([
                ("k", Value::from(keys::lwj::complete_key(jobid))),
                ("v", complete.clone()),
            ]),
        );
        let _ = ctx.local_request(KvsMethod::Commit.topic(), Value::object());
        let mut payload = complete;
        payload.insert("jobid", Value::from(jobid as i64));
        ctx.publish(Event::WexecComplete.topic(), payload);
    }
}

impl Default for WexecModule {
    fn default() -> Self {
        Self::new()
    }
}

impl CommsModule for WexecModule {
    fn name(&self) -> &'static str {
        "wexec"
    }

    fn subscriptions(&self) -> Vec<String> {
        vec![
            Event::WexecRun.topic_str().to_owned(),
            Event::WexecKill.topic_str().to_owned(),
        ]
    }

    fn handle_request(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        match WexecMethod::from_method(msg.header.topic.method()) {
            Some(WexecMethod::Run) => {
                let (Some(jobid), Some(cmd), Some(targets)) = (
                    msg.payload.get("jobid").and_then(Value::as_uint),
                    msg.payload.get("cmd").and_then(Value::as_str),
                    msg.payload.get("targets"),
                ) else {
                    ctx.respond_err(msg, errnum::EINVAL);
                    return;
                };
                let ntasks = match targets {
                    Value::Str(s) if s == "all" => u64::from(ctx.size()),
                    Value::Array(a) => a.len() as u64,
                    _ => {
                        ctx.respond_err(msg, errnum::EINVAL);
                        return;
                    }
                };
                // Fan out as an event; every broker (including this one)
                // sees it in the session total order.
                ctx.publish(
                    Event::WexecRun.topic(),
                    Value::from_pairs([
                        ("jobid", Value::from(jobid as i64)),
                        ("cmd", Value::from(cmd)),
                        ("targets", targets.clone()),
                        ("ntasks", Value::from(ntasks as i64)),
                    ]),
                );
                ctx.respond(
                    msg,
                    Value::from_pairs([
                        ("jobid", Value::from(jobid as i64)),
                        ("ntasks", Value::from(ntasks as i64)),
                    ]),
                );
            }
            Some(WexecMethod::Kill) => {
                let Some(jobid) = msg.payload.get("jobid").and_then(Value::as_uint) else {
                    ctx.respond_err(msg, errnum::EINVAL);
                    return;
                };
                ctx.publish(
                    Event::WexecKill.topic(),
                    Value::from_pairs([("jobid", Value::from(jobid as i64))]),
                );
                ctx.respond(msg, Value::object());
            }
            Some(WexecMethod::StatusUp) => {
                let (Some(jobid), Some(reported), Some(failed), Some(max_code)) = (
                    msg.payload.get("jobid").and_then(Value::as_uint),
                    msg.payload.get("reported").and_then(Value::as_uint),
                    msg.payload.get("failed").and_then(Value::as_uint),
                    msg.payload.get("max_code").and_then(Value::as_int),
                ) else {
                    return; // one-way
                };
                self.report_status(ctx, jobid, reported, failed, max_code);
            }
            Some(WexecMethod::Ps) => {
                let running: Vec<Value> = self
                    .tasks
                    .values()
                    .filter(|t| t.state == TaskState::Running)
                    .map(|t| {
                        Value::from_pairs([
                            ("jobid", Value::from(t.jobid as i64)),
                            ("cmd", Value::from(t.cmd.as_str())),
                        ])
                    })
                    .collect();
                ctx.respond(msg, Value::from_pairs([("tasks", Value::Array(running))]));
            }
            None => ctx.respond_err(msg, errnum::ENOSYS),
        }
    }

    fn handle_event(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        match Event::from_topic_str(msg.header.topic.as_str()) {
            Some(Event::WexecRun) => {
                let (Some(jobid), Some(cmd), Some(targets)) = (
                    msg.payload.get("jobid").and_then(Value::as_uint),
                    msg.payload.get("cmd").and_then(Value::as_str).map(str::to_owned),
                    msg.payload.get("targets"),
                ) else {
                    return;
                };
                if ctx.is_root() {
                    let ntasks =
                        msg.payload.get("ntasks").and_then(Value::as_uint).unwrap_or(0);
                    let acc = self.jobs.entry(jobid).or_default();
                    acc.expected = ntasks;
                }
                if Self::targeted(targets, ctx.rank()) {
                    self.launch(ctx, jobid, &cmd);
                }
                if ctx.is_root() {
                    self.check_job_complete(ctx, jobid);
                }
            }
            Some(Event::WexecKill) => {
                let Some(jobid) = msg.payload.get("jobid").and_then(Value::as_uint) else {
                    return;
                };
                let tokens: Vec<u64> = self
                    .tasks
                    .iter()
                    .filter(|(_, t)| t.jobid == jobid && t.state == TaskState::Running)
                    .map(|(&tok, _)| tok)
                    .collect();
                for tok in tokens {
                    // 128 + SIGKILL, shell convention.
                    self.finish_task(ctx, tok, 137);
                }
            }
            _ => {}
        }
    }

    fn on_heartbeat(&mut self, ctx: &mut ModuleCtx<'_>, _epoch: u64) {
        // Flush merged status contributions upstream (the reduction).
        if ctx.is_root() {
            return;
        }
        for (jobid, (reported, failed, max_code)) in std::mem::take(&mut self.unflushed) {
            let payload = Value::from_pairs([
                ("jobid", Value::from(jobid as i64)),
                ("reported", Value::from(reported as i64)),
                ("failed", Value::from(failed as i64)),
                ("max_code", Value::Int(max_code)),
            ]);
            let _ = ctx.notify_upstream(WexecMethod::StatusUp.topic(), payload);
        }
    }

    fn on_timer(&mut self, ctx: &mut ModuleCtx<'_>, token: u64) {
        self.finish_task(ctx, token, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpret_commands() {
        assert_eq!(WexecModule::interpret("sleep 50", Rank(1)), (50_000_000, None, 0));
        assert_eq!(
            WexecModule::interpret("echo hi $RANK", Rank(3)),
            (0, Some("hi 3".to_owned()), 0)
        );
        assert_eq!(
            WexecModule::interpret("work 10 r$RANK", Rank(2)),
            (10_000_000, Some("r2".to_owned()), 0)
        );
        assert_eq!(WexecModule::interpret("fail 42", Rank(0)), (0, None, 42));
        assert_eq!(WexecModule::interpret("bogus", Rank(0)), (0, None, 127));
    }

    #[test]
    fn targeting() {
        assert!(WexecModule::targeted(&Value::from("all"), Rank(7)));
        let some = Value::from(vec![1i64, 3, 5]);
        assert!(WexecModule::targeted(&some, Rank(3)));
        assert!(!WexecModule::targeted(&some, Rank(2)));
        assert!(!WexecModule::targeted(&Value::Null, Rank(0)));
    }
}
