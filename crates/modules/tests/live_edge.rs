//! LiveModule edge cases: malformed hellos, reordered heartbeat epochs,
//! and `reported_down` bookkeeping across a kill → revive → re-kill
//! cycle.

use flux_broker::client::ClientCore;
use flux_broker::testing::TestNet;
use flux_broker::CommsModule;
use flux_modules::{standard_modules, LiveModule};
use flux_value::Value;
use flux_wire::{Rank, Topic};

fn topic(s: &str) -> Topic {
    Topic::new(s).unwrap()
}

/// Subscribes `cid` at `rank` to `live.*` events and drains the inbox.
fn subscribe_live(net: &mut TestNet, rank: Rank, cid: u32) {
    let sub = ClientCore::new(rank, cid).request(
        topic("cmb.sub"),
        Value::from_pairs([("prefix", Value::from("live"))]),
        0,
    );
    net.client_send(rank, cid, sub);
    let _ = net.take_client_msgs(rank, cid);
}

fn live_events(net: &mut TestNet, rank: Rank, cid: u32) -> Vec<(String, u64)> {
    net.take_client_msgs(rank, cid)
        .into_iter()
        .filter_map(|m| {
            let r = m.payload.get("rank").and_then(Value::as_uint)?;
            Some((m.header.topic.as_str().to_owned(), r))
        })
        .collect()
}

fn up_list(net: &mut TestNet, rank: Rank, cid: u32) -> Vec<u64> {
    let req = ClientCore::new(rank, cid).request(topic("live.status"), Value::object(), 1);
    net.client_send(rank, cid, req);
    let resp = net
        .take_client_msgs(rank, cid)
        .into_iter()
        .next()
        .expect("live.status reply");
    resp.payload
        .get("up")
        .and_then(Value::as_array)
        .map(|a| a.iter().filter_map(Value::as_uint).collect())
        .unwrap_or_default()
}

/// A hello naming a rank outside the session must be ignored: no child
/// entry, no events, and the liveness view stays full.
#[test]
fn hello_from_unknown_rank_is_ignored() {
    let mut net = TestNet::new(7, 2, |_| standard_modules());
    for _ in 0..40 {
        net.fire_next_timer();
    }
    subscribe_live(&mut net, Rank(0), 7);

    // A direct client request stands in for a forged/late peer hello.
    for bogus in [7u64, 99, u64::MAX] {
        let hello = ClientCore::new(Rank(0), 8).request(
            topic("live.hello"),
            Value::from_pairs([("rank", Value::from(bogus as i64))]),
            0,
        );
        net.client_send(Rank(0), 8, hello);
    }
    for _ in 0..60 {
        net.fire_next_timer();
    }
    assert_eq!(live_events(&mut net, Rank(0), 7), vec![], "no events for out-of-range ranks");
    assert_eq!(up_list(&mut net, Rank(0), 7), vec![0, 1, 2, 3, 4, 5, 6]);
}

/// Heartbeat epochs arriving out of order (duplicated or reordered under
/// fault injection) must never trigger spurious downs: an old epoch is
/// tracked but judges nobody, and a forward jump only refreshes grace.
#[test]
fn backwards_epochs_cause_no_spurious_downs() {
    // Live module only: heartbeats are published by hand so epochs can
    // be driven out of order.
    let mut net =
        TestNet::new(7, 2, |_| vec![Box::new(LiveModule::new()) as Box<dyn CommsModule>]);
    subscribe_live(&mut net, Rank(0), 7);
    let hb = |net: &mut TestNet, epoch: i64| {
        net.publish_from_root(topic("hb"), Value::from_pairs([("epoch", Value::from(epoch))]));
    };
    for e in 1..=4 {
        hb(&mut net, e);
    }
    // A stale epoch replayed (far) behind the watermark…
    hb(&mut net, 2);
    hb(&mut net, 1);
    // …then a jump well past miss_limit (deaf-guard path), then stale again.
    hb(&mut net, 12);
    hb(&mut net, 3);
    // Normal progression resumes from the watermark.
    for e in 13..=20 {
        hb(&mut net, e);
    }
    assert_eq!(
        live_events(&mut net, Rank(0), 7),
        vec![],
        "reordered epochs must not report downs"
    );
    assert_eq!(up_list(&mut net, Rank(0), 7), vec![0, 1, 2, 3, 4, 5, 6]);
}

/// Kill → `live.down`; revive → hello → `live.up` resets
/// `reported_down`, so a second kill is detected again.
#[test]
fn rejoin_resets_reported_down() {
    let mut net = TestNet::new(7, 2, |_| standard_modules());
    for _ in 0..40 {
        net.fire_next_timer();
    }
    subscribe_live(&mut net, Rank(0), 7);

    net.kill(Rank(1));
    for _ in 0..500 {
        net.fire_next_timer();
    }
    assert_eq!(live_events(&mut net, Rank(0), 7), vec![("live.down".to_owned(), 1)]);
    assert!(!up_list(&mut net, Rank(0), 7).contains(&1));

    // Revive with state intact: the next heartbeat reaches it (parents
    // keep fanning to down children), its hello flows, live.up fires.
    net.revive(Rank(1));
    for _ in 0..300 {
        net.fire_next_timer();
    }
    assert_eq!(live_events(&mut net, Rank(0), 7), vec![("live.up".to_owned(), 1)]);
    assert!(up_list(&mut net, Rank(0), 7).contains(&1));

    // reported_down was reset: a second death is detected afresh.
    net.kill(Rank(1));
    for _ in 0..500 {
        net.fire_next_timer();
    }
    assert_eq!(live_events(&mut net, Rank(0), 7), vec![("live.down".to_owned(), 1)]);
}
