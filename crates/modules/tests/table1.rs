//! Table I end-to-end: every prototyped comms module exercised over a
//! full session (the `kvs` column is covered in flux-kvs's own tests).

use flux_broker::client::ClientCore;
use flux_broker::testing::TestNet;
use flux_modules::standard_modules;
use flux_value::Value;
use flux_wire::{Message, Rank, Topic};

fn net(size: u32) -> TestNet {
    TestNet::new(size, 2, |_| standard_modules())
}

fn topic(s: &str) -> Topic {
    Topic::new(s).unwrap()
}

/// Pumps timers (heartbeats included) until the client has ≥ `want`
/// messages or `max_timers` fire.
fn pump(net: &mut TestNet, rank: Rank, cid: u32, want: usize, max_timers: usize) -> Vec<Message> {
    let mut out = Vec::new();
    for _ in 0..max_timers {
        out.extend(net.take_client_msgs(rank, cid));
        if out.len() >= want {
            return out;
        }
        if !net.fire_next_timer() {
            break;
        }
    }
    out.extend(net.take_client_msgs(rank, cid));
    out
}

fn rpc(net: &mut TestNet, rank: Rank, cid: u32, msg: Message) -> Message {
    net.client_send(rank, cid, msg);
    let msgs = pump(net, rank, cid, 1, 500);
    assert!(!msgs.is_empty(), "no reply to {rank}/{cid}");
    msgs.into_iter().next().unwrap()
}

#[test]
fn all_nine_modules_load() {
    let net = net(3);
    let names = net.broker(Rank(0)).module_names();
    for expected in ["hb", "live", "log", "mon", "group", "barrier", "kvs", "wexec", "resvc"] {
        assert!(names.contains(&expected), "{expected} missing from {names:?}");
    }
    assert_eq!(names.len(), 9);
}

#[test]
fn hb_heartbeats_propagate_epochs() {
    let mut net = net(7);
    // Fire enough timers for a few heartbeats (early timers include
    // resvc's enumeration-fence windows).
    for _ in 0..50 {
        assert!(net.fire_next_timer());
    }
    // Ask a leaf broker's hb module for its epoch.
    let mut c = ClientCore::new(Rank(6), 0);
    let req = c.request(topic("hb.epoch"), Value::Null, 1);
    let resp = rpc(&mut net, Rank(6), 0, req);
    let epoch = resp.payload.get("epoch").and_then(Value::as_int).unwrap();
    assert!(epoch >= 1, "leaf saw heartbeat epochs, got {epoch}");
}

#[test]
fn barrier_releases_all_participants() {
    let size = 7u32;
    let mut net = net(size);
    let mut clients: Vec<ClientCore> =
        (0..size).map(|r| ClientCore::new(Rank(r), 0)).collect();
    for r in 0..size {
        let req = clients[r as usize].request(
            topic("barrier.enter"),
            Value::from_pairs([
                ("name", Value::from("b1")),
                ("nprocs", Value::from(i64::from(size))),
            ]),
            1,
        );
        net.client_send(Rank(r), 0, req);
    }
    for r in 0..size {
        let msgs = pump(&mut net, Rank(r), 0, 1, 500);
        assert_eq!(msgs.len(), 1, "rank {r} released");
        assert!(!msgs[0].is_error());
        assert_eq!(msgs[0].payload.get("name"), Some(&Value::from("b1")));
    }
}

#[test]
fn two_sequential_barriers_with_same_name() {
    let size = 3u32;
    let mut net = net(size);
    for round in 0u32..2 {
        let mut clients: Vec<ClientCore> =
            (0..size).map(|r| ClientCore::new(Rank(r), round)).collect();
        for r in 0..size {
            let req = clients[r as usize].request(
                topic("barrier.enter"),
                Value::from_pairs([
                    ("name", Value::from(format!("round{round}"))),
                    ("nprocs", Value::from(i64::from(size))),
                ]),
                1,
            );
            net.client_send(Rank(r), round, req);
        }
        for r in 0..size {
            let msgs = pump(&mut net, Rank(r), round, 1, 500);
            assert_eq!(msgs.len(), 1, "round {round} rank {r}");
        }
    }
}

#[test]
fn log_messages_reduce_to_root_session_log() {
    let mut net = net(7);
    // Log from three different ranks.
    for (r, text) in [(3u32, "from three"), (5, "from five"), (0, "from zero")] {
        let mut c = ClientCore::new(Rank(r), 0);
        let req = c.request(
            topic("log.msg"),
            Value::from_pairs([
                ("level", Value::Int(6)),
                ("text", Value::from(text)),
            ]),
            1,
        );
        let resp = rpc(&mut net, Rank(r), 0, req);
        assert!(!resp.is_error());
    }
    // Heartbeats flush batches upstream (may need several to traverse
    // interior hops).
    for _ in 0..40 {
        net.fire_next_timer();
    }
    // Query the session log (relayed to the root from a leaf).
    let mut c = ClientCore::new(Rank(6), 1);
    let req = c.request(topic("log.query"), Value::object(), 2);
    let resp = rpc(&mut net, Rank(6), 1, req);
    let entries = resp.payload.get("entries").unwrap().as_array().unwrap();
    let texts: Vec<&str> =
        entries.iter().filter_map(|e| e.get("text").and_then(Value::as_str)).collect();
    for want in ["from three", "from five", "from zero"] {
        assert!(texts.contains(&want), "{want} missing from {texts:?}");
    }
}

#[test]
fn log_dump_returns_local_ring_rank_addressed() {
    let mut net = net(5);
    let mut local = ClientCore::new(Rank(4), 0);
    let req = local.request(
        topic("log.msg"),
        Value::from_pairs([("level", Value::Int(7)), ("text", Value::from("debug r4"))]),
        1,
    );
    let _ = rpc(&mut net, Rank(4), 0, req);
    // Rank-addressed dump of rank 4's ring from rank 1 (the paper's
    // debugging-over-the-ring use case).
    let mut remote = ClientCore::new(Rank(1), 0);
    let req = remote.request_to(Rank(4), topic("log.dump"), Value::object(), 2);
    let resp = rpc(&mut net, Rank(1), 0, req);
    let entries = resp.payload.get("entries").unwrap().as_array().unwrap();
    assert!(entries
        .iter()
        .any(|e| e.get("text").and_then(Value::as_str) == Some("debug r4")));
}

#[test]
fn mon_samples_reduce_into_kvs() {
    let size = 7u32;
    let mut net = net(size);
    // Register a sampler.
    let mut c = ClientCore::new(Rank(2), 0);
    let req = c.request(
        topic("mon.add"),
        Value::from_pairs([
            ("name", Value::from("load")),
            ("metric", Value::from("load")),
            ("period", Value::Int(1)),
        ]),
        1,
    );
    let resp = rpc(&mut net, Rank(2), 0, req);
    assert!(!resp.is_error(), "{resp:?}");
    // Let several heartbeats elapse: spec discovery, sampling, reduction,
    // root finalization.
    for _ in 0..60 {
        if !net.fire_next_timer() {
            break;
        }
    }
    // Some epoch's aggregate must exist in the KVS with count == size.
    let mut probe = ClientCore::new(Rank(0), 1);
    let req = probe.request(
        topic("kvs.get"),
        Value::from_pairs([("k", Value::from("mon.data.load")), ("dir", Value::Bool(true))]),
        2,
    );
    let resp = rpc(&mut net, Rank(0), 1, req);
    assert!(!resp.is_error(), "no mon data: {resp:?}");
    let epochs: Vec<String> =
        resp.payload.get("dir").unwrap().as_object().unwrap().keys().cloned().collect();
    assert!(!epochs.is_empty());
    // Spec discovery is not synchronized, so the earliest epoch may have a
    // partial count; a settled epoch must cover the full session.
    let mut best_count = 0;
    for epoch in &epochs {
        let req = probe.request(
            topic("kvs.get"),
            Value::from_pairs([("k", Value::from(format!("mon.data.load.{epoch}")))]),
            3,
        );
        let resp = rpc(&mut net, Rank(0), 1, req);
        let agg = resp.payload.get("v").unwrap();
        let count = agg.get("count").and_then(Value::as_int).unwrap();
        let avg = agg.get("avg").and_then(Value::as_float).unwrap();
        let min = agg.get("min").and_then(Value::as_float).unwrap();
        let max = agg.get("max").and_then(Value::as_float).unwrap();
        assert!(min <= avg && avg <= max);
        best_count = best_count.max(count);
    }
    assert_eq!(best_count, i64::from(size), "a settled epoch covers all brokers");
}

#[test]
fn group_join_info_leave() {
    let mut net = net(5);
    // Three clients join from different ranks.
    for r in [0u32, 2, 4] {
        let mut c = ClientCore::new(Rank(r), 0);
        let req = c.request(
            topic("group.join"),
            Value::from_pairs([("name", Value::from("tools"))]),
            1,
        );
        let resp = rpc(&mut net, Rank(r), 0, req);
        assert!(!resp.is_error(), "join from {r}: {resp:?}");
    }
    let mut probe = ClientCore::new(Rank(3), 0);
    let req = probe.request(
        topic("group.info"),
        Value::from_pairs([("name", Value::from("tools"))]),
        2,
    );
    let resp = rpc(&mut net, Rank(3), 0, req);
    assert_eq!(resp.payload.get("size"), Some(&Value::Int(3)), "{resp:?}");
    // One leaves.
    let mut c = ClientCore::new(Rank(2), 0);
    let req = c.request(
        topic("group.leave"),
        Value::from_pairs([("name", Value::from("tools"))]),
        3,
    );
    let resp = rpc(&mut net, Rank(2), 0, req);
    assert!(!resp.is_error());
    let req = probe.request(
        topic("group.info"),
        Value::from_pairs([("name", Value::from("tools"))]),
        4,
    );
    let resp = rpc(&mut net, Rank(3), 0, req);
    assert_eq!(resp.payload.get("size"), Some(&Value::Int(2)));
    // Unknown group reads as empty.
    let req = probe.request(
        topic("group.info"),
        Value::from_pairs([("name", Value::from("nobody"))]),
        5,
    );
    let resp = rpc(&mut net, Rank(3), 0, req);
    assert_eq!(resp.payload.get("size"), Some(&Value::Int(0)));
}

#[test]
fn wexec_bulk_launch_captures_stdout_and_completes() {
    let size = 7u32;
    let mut net = net(size);
    let mut c = ClientCore::new(Rank(3), 0);
    // Subscribe to completion events first.
    let sub = c.request(
        topic("cmb.sub"),
        Value::from_pairs([("prefix", Value::from("wexec.complete"))]),
        0,
    );
    let _ = rpc(&mut net, Rank(3), 0, sub);
    // Launch `echo` on all ranks.
    let run = c.request(
        topic("wexec.run"),
        Value::from_pairs([
            ("jobid", Value::Int(1)),
            ("cmd", Value::from("echo out-$RANK")),
            ("targets", Value::from("all")),
        ]),
        1,
    );
    let ack = rpc(&mut net, Rank(3), 0, run);
    assert_eq!(ack.payload.get("ntasks"), Some(&Value::Int(i64::from(size))));
    // Pump heartbeats until the completion event arrives.
    let msgs = pump(&mut net, Rank(3), 0, 1, 500);
    let complete = msgs
        .iter()
        .find(|m| m.header.topic.as_str() == "wexec.complete")
        .unwrap_or_else(|| panic!("no completion event in {msgs:?}"));
    assert_eq!(complete.payload.get("failed"), Some(&Value::Int(0)));
    // Stdout of every rank captured in the KVS.
    let mut probe = ClientCore::new(Rank(0), 1);
    for r in 0..size {
        let req = probe.request(
            topic("kvs.get"),
            Value::from_pairs([("k", Value::from(format!("lwj.1.{r}.stdout")))]),
            2,
        );
        let resp = rpc(&mut net, Rank(0), 1, req);
        assert_eq!(
            resp.payload.get("v"),
            Some(&Value::from(format!("out-{r}"))),
            "rank {r} stdout"
        );
    }
    // Completion record in the KVS.
    let req = probe.request(
        topic("kvs.get"),
        Value::from_pairs([("k", Value::from("lwj.1.complete"))]),
        3,
    );
    let resp = rpc(&mut net, Rank(0), 1, req);
    assert_eq!(resp.payload.get("v").unwrap().get("ntasks"), Some(&Value::Int(i64::from(size))));
}

#[test]
fn wexec_kill_terminates_sleepers() {
    let mut net = net(3);
    let mut c = ClientCore::new(Rank(0), 0);
    let sub = c.request(
        topic("cmb.sub"),
        Value::from_pairs([("prefix", Value::from("wexec.complete"))]),
        0,
    );
    let _ = rpc(&mut net, Rank(0), 0, sub);
    // Long sleepers everywhere.
    let run = c.request(
        topic("wexec.run"),
        Value::from_pairs([
            ("jobid", Value::Int(2)),
            ("cmd", Value::from("sleep 3600000")),
            ("targets", Value::from("all")),
        ]),
        1,
    );
    let _ = rpc(&mut net, Rank(0), 0, run);
    // Kill the job.
    let kill = c.request(
        topic("wexec.kill"),
        Value::from_pairs([("jobid", Value::Int(2))]),
        2,
    );
    let _ = rpc(&mut net, Rank(0), 0, kill);
    let msgs = pump(&mut net, Rank(0), 0, 1, 500);
    let complete = msgs
        .iter()
        .find(|m| m.header.topic.as_str() == "wexec.complete")
        .unwrap_or_else(|| panic!("no completion event in {msgs:?}"));
    assert_eq!(complete.payload.get("failed"), Some(&Value::Int(3)));
    assert_eq!(complete.payload.get("max_code"), Some(&Value::Int(137)));
}

#[test]
fn resvc_enumerates_and_allocates() {
    let size = 7u32;
    let mut net = net(size);
    // Resource enumeration completes via a fence; pump it.
    for _ in 0..100 {
        if !net.fire_next_timer() {
            break;
        }
    }
    let mut probe = ClientCore::new(Rank(0), 1);
    // Every rank's inventory is in the KVS.
    for r in 0..size {
        let req = probe.request(
            topic("kvs.get"),
            Value::from_pairs([("k", Value::from(format!("resource.r{r}")))]),
            1,
        );
        let resp = rpc(&mut net, Rank(0), 1, req);
        assert!(!resp.is_error(), "resource.r{r}: {resp:?}");
        assert_eq!(resp.payload.get("v").unwrap().get("cores"), Some(&Value::Int(16)));
    }
    // Allocate 3 nodes from a leaf.
    let mut c = ClientCore::new(Rank(6), 0);
    let req = c.request(
        topic("resvc.alloc"),
        Value::from_pairs([("jobid", Value::Int(10)), ("nnodes", Value::Int(3))]),
        2,
    );
    let resp = rpc(&mut net, Rank(6), 0, req);
    let ranks = resp.payload.get("ranks").unwrap().as_array().unwrap();
    assert_eq!(ranks.len(), 3);
    // Status reflects the allocation.
    let req = c.request(topic("resvc.status"), Value::object(), 3);
    let resp = rpc(&mut net, Rank(6), 0, req);
    assert_eq!(resp.payload.get("free"), Some(&Value::Int(i64::from(size) - 3)));
    // Over-allocation is refused with EAGAIN.
    let req = c.request(
        topic("resvc.alloc"),
        Value::from_pairs([("jobid", Value::Int(11)), ("nnodes", Value::Int(100))]),
        4,
    );
    let resp = rpc(&mut net, Rank(6), 0, req);
    assert_eq!(resp.header.errnum, flux_wire::errnum::EAGAIN);
    // Free and reallocate.
    let req = c.request(
        topic("resvc.free"),
        Value::from_pairs([("jobid", Value::Int(10))]),
        5,
    );
    let resp = rpc(&mut net, Rank(6), 0, req);
    assert!(!resp.is_error());
    let req = c.request(topic("resvc.status"), Value::object(), 6);
    let resp = rpc(&mut net, Rank(6), 0, req);
    assert_eq!(resp.payload.get("free"), Some(&Value::Int(i64::from(size))));
}

#[test]
fn live_detects_dead_interior_node_via_missed_hellos() {
    let mut net = net(15);
    // Let the session settle with a few heartbeats.
    for _ in 0..30 {
        net.fire_next_timer();
    }
    // Kill rank 5 (interior: parent of 11, 12).
    net.kill(Rank(5));
    // After miss_limit heartbeats, its parent (rank 2) publishes
    // live.down; the session's liveness view updates everywhere.
    for _ in 0..400 {
        net.fire_next_timer();
    }
    let mut c = ClientCore::new(Rank(11), 0);
    let req = c.request(topic("live.status"), Value::object(), 1);
    let resp = rpc(&mut net, Rank(11), 0, req);
    let up: Vec<i64> =
        resp.payload.get("up").unwrap().as_array().unwrap().iter().filter_map(Value::as_int).collect();
    assert!(!up.contains(&5), "rank 5 must be marked down: {up:?}");
    assert!(up.contains(&11) && up.contains(&0));
    // The orphaned subtree still reaches root services: KVS get from 11.
    let req = c.request(
        topic("kvs.get_version"),
        Value::object(),
        2,
    );
    let resp = rpc(&mut net, Rank(11), 0, req);
    assert!(!resp.is_error());
}
