//! Offline static-conformance linter for the workspace.
//!
//! `cargo run -p flux-lint` walks `crates/` and enforces the protocol
//! and panic-hygiene rules described in DESIGN.md §12:
//!
//! 1. **topic-literal** — no topic-pattern string literal (a `"` followed
//!    by a registered service name and a `.`) may appear outside
//!    `crates/proto` and integration-test directories. All protocol
//!    routing goes through the [`flux_proto`] registry.
//! 2. **panic** — no `unwrap()` / `expect()` / `panic!()` family call in
//!    the non-test code of the `broker`, `rt`, `kvs` and `wire` crates,
//!    unless justified by a `// flux-lint: allow(panic)` annotation.
//! 3. **wildcard** — no `_ =>` match arm in the non-test code of the
//!    wire crate (protocol decoders must enumerate their domain), unless
//!    justified by `// flux-lint: allow(wildcard)`.
//! 4. **header** — every crate root carries `#![forbid(unsafe_code)]`,
//!    and every library root additionally `#![deny(missing_docs)]`.
//! 5. **lock-order** — the cross-crate lock acquisition graph (built
//!    from `.lock()`/`.read()`/`.write()` sites, propagated through the
//!    call graph) must be acyclic. See [`DESIGN.md §13`] and
//!    the [`lockorder`] module docs.
//! 6. **reply** — every request/response arm of a module dispatch match
//!    must respond (or park the request) on all paths. See the
//!    [`reply`] module docs.
//! 7. **allowlist** — the legacy allowlist must stay empty: the
//!    burn-down is complete, and any new entry is itself a violation.
//!
//! 8. **nondet** — determinism-taint analysis: nondeterminism sources
//!    (hash iteration, wall clock, thread ids, address ordering) may not
//!    reach the deterministic crates, directly or through the call
//!    graph, without a justified `allow(nondet)` waiver. See [`taint`].
//! 9. **error-codes** — each dispatch arm's reachable error codes must
//!    match the `declared_errors` sets in the flux-proto registry, in
//!    both directions. See [`errors`].
//! 10. **shard-safety** — rank-addressed sends must register a retry
//!     join, handle the EINVAL wrong-master reply, and be reachable from
//!     the heartbeat-driven retry pump. See [`shard_safety`].
//! 11. **block** — blocking-call taint: sleeps, deadline-free channel
//!     receives, thread joins, un-deadlined socket reads, and locks held
//!     across I/O may not appear in (or be reached from) the sans-io
//!     broker core without a justified `allow(block)` waiver. See
//!     [`block`].
//! 12. **hotalloc** — allocation accounting: per-message allocations
//!     (`Vec::new`, `clone`, `format!`, fresh `collect`, …) may not
//!     appear in the designated hot paths (framing chain, sim dispatch,
//!     kvs batch apply, broker route) without a justified
//!     `allow(hotalloc)` waiver. See [`hotalloc`].
//!
//! Rules 1–4 are line rules over *blanked* text (string/char/comment
//! contents replaced with spaces by [`token::blank`], so a `panic!(`
//! in an error message can't fire the panic rule). Rules 5–6 and 8–12
//! are semantic passes over an AST-lite statement model, sharing one
//! [`analysis::ParsedFile`] cache per tree walk. The linter has no
//! dependencies outside the workspace and never touches the network.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod analysis;
mod block;
mod errors;
mod hotalloc;
mod lockorder;
mod reply;
mod selfmutate;
mod shard_safety;
mod taint;
pub mod token;

use analysis::ParsedFile;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

pub use selfmutate::self_mutate;

/// Which lint rule a violation belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    /// A topic-pattern string literal outside the protocol registry.
    TopicLiteral,
    /// An unjustified panic-family call in a panic-free crate.
    Panic,
    /// An unjustified `_ =>` arm in a protocol decoder crate.
    Wildcard,
    /// A crate root missing the agreed lint header.
    Header,
    /// An allowlist entry that no longer suppresses anything.
    StaleAllow,
    /// A cycle in the cross-crate lock acquisition graph.
    LockOrder,
    /// A request/response dispatch arm that can finish without a reply.
    ReplyObligation,
    /// Nondeterminism reaching deterministic code without a waiver.
    Nondet,
    /// Error codes out of conformance with the proto registry.
    ErrorCodes,
    /// A rank-addressed send outside the retry/EINVAL discipline.
    ShardSafety,
    /// A blocking call or lock-held-across-I/O inside sans-io code.
    Block,
    /// A per-message allocation inside a designated hot path.
    HotAlloc,
    /// Any entry at all in the (now permanently empty) allowlist.
    AllowlistEntry,
}

impl Rule {
    /// The rule's name as used in allowlist entries and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Rule::TopicLiteral => "topic-literal",
            Rule::Panic => "panic",
            Rule::Wildcard => "wildcard",
            Rule::Header => "header",
            Rule::StaleAllow => "stale-allow",
            Rule::LockOrder => "lock-order",
            Rule::ReplyObligation => "reply",
            Rule::Nondet => "nondet",
            Rule::ErrorCodes => "error-codes",
            Rule::ShardSafety => "shard-safety",
            Rule::Block => "block",
            Rule::HotAlloc => "hotalloc",
            Rule::AllowlistEntry => "allowlist",
        }
    }

    /// The pass that produces this rule, for machine-readable output:
    /// `line` for the token rules, the pass name for semantic passes.
    pub fn pass(self) -> &'static str {
        match self {
            Rule::TopicLiteral | Rule::Panic | Rule::Wildcard | Rule::Header => "line",
            Rule::StaleAllow | Rule::AllowlistEntry => "allowlist",
            Rule::LockOrder => "lock-order",
            Rule::ReplyObligation => "reply",
            Rule::Nondet => "nondet",
            Rule::ErrorCodes => "error-codes",
            Rule::ShardSafety => "shard-safety",
            Rule::Block => "block",
            Rule::HotAlloc => "hotalloc",
        }
    }
}

/// One finding: a rule broken at a specific file and line.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.rule.name(), self.message)
        } else {
            write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule.name(), self.message)
        }
    }
}

/// Crates whose non-test code must be panic-free (rule 2).
const PANIC_FREE: &[&str] =
    &["crates/broker/src/", "crates/rt/src/", "crates/kvs/src/", "crates/wire/src/"];

/// Crates whose non-test matches may not use `_ =>` (rule 3).
const NO_WILDCARD: &[&str] = &["crates/wire/src/"];

/// Tokens that abort the process when reached.
const PANIC_TOKENS: &[&str] =
    &[".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];

/// How many lines an `// flux-lint: allow(...)` annotation reaches
/// forward. Keeps a waiver from silently covering unrelated code.
const ALLOW_REACH: usize = 10;

/// True if the topic-literal rule applies to this file at all.
fn topic_rule_applies(rel: &str) -> bool {
    !rel.starts_with("crates/proto/")
        && !rel.starts_with("crates/flux-lint/")
        && !rel.contains("/tests/")
}

/// Finds `"<service>.` occurrences in one line of source text. Mirrors
/// the repository's conformance grep: a plain text scan, comments and
/// test modules included (in-source tests must use neutral names).
fn line_has_topic_literal(line: &str, services: &[&str]) -> Option<&'static str> {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'"' {
            continue;
        }
        let rest = &line[i + 1..];
        for svc in flux_proto::Service::ALL {
            let name = svc.name();
            if services.contains(&name)
                && rest.len() > name.len()
                && rest.starts_with(name)
                && rest.as_bytes()[name.len()] == b'.'
            {
                return Some(name);
            }
        }
    }
    None
}

/// Per-line scan state for the panic and wildcard rules: tracks
/// `#[cfg(test)]` regions and pending `allow` waivers.
struct ScanState {
    in_test: bool,
    test_depth: i32,
    test_entered: bool,
    allow_panic: Option<usize>,
    allow_wildcard: Option<usize>,
}

impl ScanState {
    fn new() -> ScanState {
        ScanState {
            in_test: false,
            test_depth: 0,
            test_entered: false,
            allow_panic: None,
            allow_wildcard: None,
        }
    }

    /// Updates test-region tracking for `line`; returns true while the
    /// line is inside (or opening) a `#[cfg(test)]` region.
    fn track_test_region(&mut self, line: &str) -> bool {
        if !self.in_test && line.contains("#[cfg(test)]") {
            self.in_test = true;
            self.test_depth = 0;
            self.test_entered = false;
        }
        if !self.in_test {
            return false;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    self.test_depth += 1;
                    self.test_entered = true;
                }
                '}' => self.test_depth -= 1,
                _ => {}
            }
        }
        if self.test_entered && self.test_depth <= 0 {
            self.in_test = false; // region closed on this line
        } else if !self.test_entered && line.trim_end().ends_with(';') {
            self.in_test = false; // `#[cfg(test)] mod x;` — out-of-line module
        }
        true
    }
}

/// Lints one file's content as if it lived at workspace-relative path
/// `rel`: the per-file rules (1–4, 6) only. Tests feed it fixture
/// content directly; the whole-workspace passes (lock-order, nondet,
/// error-codes, shard-safety) need the full tree — see [`lint_sources`].
pub fn lint_file(rel: &str, content: &str) -> Vec<Violation> {
    let mut out = lint_file_local(rel, content);
    if rel.contains("/src/") {
        let pf = ParsedFile::parse(rel, content);
        out.extend(reply::check_reply(&pf, &reply::kind_table()));
    }
    out
}

/// The token rules and header checks (no parsing needed).
fn lint_file_local(rel: &str, content: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let services: Vec<&str> = flux_proto::Service::ALL.iter().map(|s| s.name()).collect();
    let topic_scope = topic_rule_applies(rel);
    let panic_scope =
        PANIC_FREE.iter().any(|p| rel.starts_with(p)) && !rel.ends_with("proptests.rs");
    let wildcard_scope =
        NO_WILDCARD.iter().any(|p| rel.starts_with(p)) && !rel.ends_with("proptests.rs");

    // Token rules run over blanked text (strings and comments can't
    // fire them); waivers and topic literals are read from raw lines.
    let blanked = token::blank(content);
    let mut st = ScanState::new();
    for (idx, (line, bline)) in content.lines().zip(blanked.lines()).enumerate() {
        let lineno = idx + 1;
        if topic_scope {
            if let Some(svc) = line_has_topic_literal(line, &services) {
                out.push(Violation {
                    file: rel.to_owned(),
                    line: lineno,
                    rule: Rule::TopicLiteral,
                    message: format!(
                        "string literal for service `{svc}` — route through flux-proto instead"
                    ),
                });
            }
        }
        if !(panic_scope || wildcard_scope) {
            continue;
        }
        let in_test = st.track_test_region(bline);
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            if line.contains("flux-lint: allow(panic)") {
                st.allow_panic = Some(lineno);
            }
            if line.contains("flux-lint: allow(wildcard)") {
                st.allow_wildcard = Some(lineno);
            }
            continue;
        }
        if in_test {
            continue;
        }
        if panic_scope {
            if let Some(tok) = PANIC_TOKENS.iter().find(|t| bline.contains(*t)) {
                if line.contains("flux-lint: allow(panic)") {
                    // waived inline
                } else if st.allow_panic.is_some_and(|l| lineno - l <= ALLOW_REACH) {
                    st.allow_panic = None;
                } else {
                    out.push(Violation {
                        file: rel.to_owned(),
                        line: lineno,
                        rule: Rule::Panic,
                        message: format!(
                            "`{}` in panic-free code — return an error or justify with \
                             `// flux-lint: allow(panic)`",
                            tok.trim_start_matches('.')
                        ),
                    });
                }
            }
        }
        if wildcard_scope && bline.contains("_ =>") {
            if line.contains("flux-lint: allow(wildcard)") {
                // waived inline
            } else if st.allow_wildcard.is_some_and(|l| lineno - l <= ALLOW_REACH) {
                st.allow_wildcard = None;
            } else {
                out.push(Violation {
                    file: rel.to_owned(),
                    line: lineno,
                    rule: Rule::Wildcard,
                    message: "`_ =>` arm in a protocol decoder — enumerate the domain or \
                              justify with `// flux-lint: allow(wildcard)`"
                        .to_owned(),
                });
            }
        }
    }

    out.extend(check_headers(rel, content));
    out
}

/// Runs the cross-file lock-order analysis over `(relative path, raw
/// source)` pairs. Exposed separately from [`lint_file`] because the
/// acquisition graph only means something over the whole workspace.
pub fn lint_lock_order(files: &[(String, String)]) -> Vec<Violation> {
    let parsed: Vec<ParsedFile> = files
        .iter()
        .filter(|(rel, _)| rel.contains("/src/"))
        .map(|(rel, content)| ParsedFile::parse(rel, content))
        .collect();
    lockorder::check_lock_order(&parsed)
}

/// The outcome of one whole-workspace lint: the surviving violations
/// plus wall time per pass (for `flux-lint --timings`).
pub struct LintReport {
    /// Violations after allowlist application, sorted by file and line.
    pub violations: Vec<Violation>,
    /// `(pass name, wall time)` in execution order.
    pub timings: Vec<(&'static str, Duration)>,
}

/// Lints a whole workspace already read into memory as `(relative
/// path, raw source)` pairs. All passes share one parsed-file cache:
/// every source file is blanked, test-stripped, and function-indexed
/// exactly once, then the per-file rules and the four interprocedural
/// passes run over the cache. This is the engine behind [`lint_tree`]
/// and the `--self-mutate` smoke check.
pub fn lint_sources(files: &[(String, String)], allowlist: &str) -> LintReport {
    let mut timings = Vec::new();
    let mut violations = Vec::new();

    let t0 = std::time::Instant::now();
    let parsed: Vec<ParsedFile> = files
        .iter()
        .filter(|(rel, _)| rel.contains("/src/"))
        .map(|(rel, content)| ParsedFile::parse(rel, content))
        .collect();
    timings.push(("parse", t0.elapsed()));

    let t = std::time::Instant::now();
    for (rel, content) in files {
        violations.extend(lint_file_local(rel, content));
    }
    timings.push(("tokens+headers", t.elapsed()));

    let t = std::time::Instant::now();
    let kinds = reply::kind_table();
    for pf in &parsed {
        violations.extend(reply::check_reply(pf, &kinds));
    }
    timings.push(("reply", t.elapsed()));

    let t = std::time::Instant::now();
    violations.extend(lockorder::check_lock_order(&parsed));
    timings.push(("lock-order", t.elapsed()));

    let t = std::time::Instant::now();
    violations.extend(taint::check_taint(&parsed));
    timings.push(("nondet", t.elapsed()));

    let t = std::time::Instant::now();
    violations.extend(errors::check_error_codes(&parsed));
    timings.push(("error-codes", t.elapsed()));

    let t = std::time::Instant::now();
    violations.extend(shard_safety::check_shard_safety(&parsed));
    timings.push(("shard-safety", t.elapsed()));

    let t = std::time::Instant::now();
    violations.extend(block::check_block(&parsed));
    timings.push(("block", t.elapsed()));

    let t = std::time::Instant::now();
    violations.extend(hotalloc::check_hotalloc(&parsed));
    timings.push(("hotalloc", t.elapsed()));

    let mut kept = apply_allowlist(violations, allowlist);
    kept.extend(check_allowlist_empty(allowlist));
    kept.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    LintReport { violations: kept, timings }
}

/// Renders a report as the `flux-lint/v1` machine-readable document
/// (the `--json` output). One object per violation carrying the pass,
/// rule, file, line, waiver status, and message, plus per-pass wall
/// times in milliseconds. Hand-rolled: the schema is flat scalars, so
/// no JSON dependency is warranted.
pub fn to_json(report: &LintReport) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("{\n  \"schema\": \"flux-lint/v1\",\n");
    out.push_str(&format!("  \"clean\": {},\n", report.violations.is_empty()));
    out.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        // A justified waiver never reaches the report, so the only
        // waiver state a violation can carry is "unjustified" (a bare
        // `allow(..)` demanding its reason).
        let waiver =
            if v.message.contains("without a justification") { "unjustified" } else { "none" };
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"pass\": \"{}\", \"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"waiver\": \"{waiver}\", \"message\": \"{}\"}}",
            v.rule.pass(),
            v.rule.name(),
            esc(&v.file),
            v.line,
            esc(&v.message),
        ));
    }
    out.push_str(if report.violations.is_empty() { "],\n" } else { "\n  ],\n" });
    out.push_str("  \"timings\": [");
    for (i, (pass, took)) in report.timings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"pass\": \"{pass}\", \"ms\": {:.3}}}",
            took.as_secs_f64() * 1e3
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Rule 7: the allowlist burn-down is complete; the empty list is the
/// enforced steady state. Every non-comment entry is a violation in its
/// own right (on top of whatever it tried to suppress).
pub fn check_allowlist_empty(allowlist: &str) -> Vec<Violation> {
    allowlist
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .map(|(lineno, entry)| Violation {
            file: "crates/flux-lint/allowlist.txt".to_owned(),
            line: lineno,
            rule: Rule::AllowlistEntry,
            message: format!(
                "entry `{entry}` — the allowlist is permanently empty; fix or waive the \
                 violation at its site instead"
            ),
        })
        .collect()
}

/// Rule 4: crate roots must carry the agreed lint headers.
fn check_headers(rel: &str, content: &str) -> Vec<Violation> {
    let is_lib = rel.ends_with("/src/lib.rs");
    let is_bin = rel.ends_with("/src/main.rs") || rel.contains("/src/bin/");
    let mut out = Vec::new();
    if !(is_lib || is_bin) {
        return out;
    }
    if !content.contains("#![forbid(unsafe_code)]") {
        out.push(Violation {
            file: rel.to_owned(),
            line: 0,
            rule: Rule::Header,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
        });
    }
    if is_lib && !content.contains("#![deny(missing_docs)]") {
        out.push(Violation {
            file: rel.to_owned(),
            line: 0,
            rule: Rule::Header,
            message: "library root is missing `#![deny(missing_docs)]`".to_owned(),
        });
    }
    out
}

/// Applies an allowlist (the content of `allowlist.txt`) to a violation
/// set: entries of the form `<rule>:<path>` suppress matching
/// violations; an entry that suppresses nothing becomes a
/// [`Rule::StaleAllow`] violation so dead entries fail the lint.
pub fn apply_allowlist(violations: Vec<Violation>, allowlist: &str) -> Vec<Violation> {
    let entries: Vec<(usize, &str)> = allowlist
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .collect();
    let mut used = vec![false; entries.len()];
    let mut kept = Vec::new();
    for v in violations {
        let tag = format!("{}:{}", v.rule.name(), v.file);
        match entries.iter().position(|(_, e)| *e == tag) {
            Some(i) => used[i] = true,
            None => kept.push(v),
        }
    }
    for (i, (lineno, entry)) in entries.iter().enumerate() {
        if !used[i] {
            kept.push(Violation {
                file: "crates/flux-lint/allowlist.txt".to_owned(),
                line: *lineno,
                rule: Rule::StaleAllow,
                message: format!("entry `{entry}` no longer matches any violation — remove it"),
            });
        }
    }
    kept
}

/// Recursively collects `.rs` files under `dir`, skipping fixture and
/// build-output directories.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Reads the workspace rooted at `root` into `(relative path, raw
/// source)` pairs, sorted by path.
pub fn read_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files)?;
    files.sort();
    let mut sources = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(path)?));
    }
    Ok(sources)
}

/// Lints the whole workspace rooted at `root` (the directory holding
/// `crates/`), applying the allowlist if present. Returns the full
/// report including per-pass timings.
pub fn lint_tree_report(root: &Path) -> std::io::Result<LintReport> {
    let sources = read_sources(root)?;
    let allowlist = std::fs::read_to_string(root.join("crates/flux-lint/allowlist.txt"))
        .unwrap_or_default();
    Ok(lint_sources(&sources, &allowlist))
}

/// Like [`lint_tree_report`], returning the surviving violations only.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Violation>> {
    Ok(lint_tree_report(root)?.violations)
}

/// The workspace root this linter was built in, for the self-check test
/// and the default `main` invocation.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOPIC_FIXTURE: &str = include_str!("../fixtures/topic_literal.rs.bad");
    const PANIC_FIXTURE: &str = include_str!("../fixtures/panic_unwrap.rs.bad");
    const WILDCARD_FIXTURE: &str = include_str!("../fixtures/wildcard_match.rs.bad");
    const HEADER_FIXTURE: &str = include_str!("../fixtures/missing_header.rs.bad");
    const LOCK_FIXTURE: &str = include_str!("../fixtures/lock_order.rs.bad");
    const REPLY_FIXTURE: &str = include_str!("../fixtures/reply_obligation.rs.bad");

    fn rules(v: &[Violation]) -> Vec<Rule> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn topic_literal_fixture_fires() {
        let v = lint_file("crates/modules/src/fake.rs", TOPIC_FIXTURE);
        assert!(rules(&v).contains(&Rule::TopicLiteral), "{v:?}");
        // Neutral service names and bare (dot-free) names never fire.
        let clean = lint_file("crates/modules/src/fake.rs", "let t = (\"svc.put\", \"hb\");\n");
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn topic_literal_exempt_in_proto_and_tests() {
        for rel in
            ["crates/proto/src/lib.rs", "crates/kvs/tests/it.rs", "crates/flux-lint/src/lib.rs"]
        {
            let v = lint_file(rel, TOPIC_FIXTURE);
            assert!(!rules(&v).contains(&Rule::TopicLiteral), "{rel}: {v:?}");
        }
    }

    #[test]
    fn panic_fixture_fires_only_outside_tests_and_waivers() {
        let v = lint_file("crates/kvs/src/fake.rs", PANIC_FIXTURE);
        let hits: Vec<_> = v.iter().filter(|x| x.rule == Rule::Panic).collect();
        // The fixture has exactly one unjustified site; its cfg(test)
        // unwrap and its annotated expect must not fire.
        assert_eq!(hits.len(), 1, "{v:?}");
        assert!(hits[0].message.contains("unwrap"), "{v:?}");
    }

    #[test]
    fn panic_rule_scoped_to_panic_free_crates() {
        let v = lint_file("crates/modules/src/fake.rs", PANIC_FIXTURE);
        assert!(!rules(&v).contains(&Rule::Panic), "{v:?}");
    }

    #[test]
    fn wildcard_fixture_fires_in_wire_only() {
        let v = lint_file("crates/wire/src/fake.rs", WILDCARD_FIXTURE);
        let hits: Vec<_> = v.iter().filter(|x| x.rule == Rule::Wildcard).collect();
        assert_eq!(hits.len(), 1, "{v:?}");
        let v = lint_file("crates/broker/src/fake.rs", WILDCARD_FIXTURE);
        assert!(!rules(&v).contains(&Rule::Wildcard), "{v:?}");
    }

    #[test]
    fn header_fixture_fires_for_lib_roots() {
        let v = lint_file("crates/fake/src/lib.rs", HEADER_FIXTURE);
        assert_eq!(v.iter().filter(|x| x.rule == Rule::Header).count(), 2, "{v:?}");
        // A bin root only needs forbid(unsafe_code).
        let v = lint_file("crates/fake/src/main.rs", HEADER_FIXTURE);
        assert_eq!(v.iter().filter(|x| x.rule == Rule::Header).count(), 1, "{v:?}");
        // Non-root files carry no header obligation.
        let v = lint_file("crates/fake/src/other.rs", HEADER_FIXTURE);
        assert_eq!(v.iter().filter(|x| x.rule == Rule::Header).count(), 0, "{v:?}");
    }

    #[test]
    fn json_report_matches_the_v1_schema() {
        let report = LintReport {
            violations: vec![
                Violation {
                    file: "crates/sim/src/demo.rs".to_owned(),
                    line: 7,
                    rule: Rule::Block,
                    message: "blocking sleep (`thread::sleep`) — \"bad\"\nsecond line".to_owned(),
                },
                Violation {
                    file: "crates/wire/src/codec.rs".to_owned(),
                    line: 12,
                    rule: Rule::HotAlloc,
                    message: "`allow(hotalloc)` without a justification".to_owned(),
                },
            ],
            timings: vec![("parse", Duration::from_micros(1500)), ("block", Duration::ZERO)],
        };
        let doc = to_json(&report);
        assert!(doc.contains("\"schema\": \"flux-lint/v1\""), "{doc}");
        assert!(doc.contains("\"clean\": false"), "{doc}");
        // Every violation carries pass, rule, file, line, waiver, message.
        assert!(
            doc.contains(
                "\"pass\": \"block\", \"rule\": \"block\", \"file\": \"crates/sim/src/demo.rs\", \
                 \"line\": 7, \"waiver\": \"none\""
            ),
            "{doc}"
        );
        assert!(doc.contains("\"waiver\": \"unjustified\""), "{doc}");
        // Quotes and newlines in messages are escaped, not emitted raw.
        assert!(doc.contains("\\\"bad\\\"\\nsecond line"), "{doc}");
        assert!(doc.contains("{\"pass\": \"parse\", \"ms\": 1.500}"), "{doc}");
        // An empty report is clean with an empty violations array.
        let clean = to_json(&LintReport { violations: vec![], timings: vec![] });
        assert!(clean.contains("\"clean\": true"), "{clean}");
        assert!(clean.contains("\"violations\": []"), "{clean}");
    }

    #[test]
    fn allowlist_suppresses_and_reports_stale() {
        let v = lint_file("crates/kvs/src/fake.rs", PANIC_FIXTURE);
        let list = "# comment\npanic:crates/kvs/src/fake.rs\npanic:crates/kvs/src/gone.rs\n";
        let kept = apply_allowlist(v, list);
        assert!(!rules(&kept).contains(&Rule::Panic), "{kept:?}");
        let stale: Vec<_> = kept.iter().filter(|x| x.rule == Rule::StaleAllow).collect();
        assert_eq!(stale.len(), 1, "{kept:?}");
        assert!(stale[0].message.contains("gone.rs"), "{kept:?}");
    }

    #[test]
    fn lock_order_fixture_fires() {
        let files = vec![("crates/fake/src/shared.rs".to_owned(), LOCK_FIXTURE.to_owned())];
        let v = lint_lock_order(&files);
        assert_eq!(rules(&v), [Rule::LockOrder], "{v:?}");
        assert!(v[0].message.contains("alpha") && v[0].message.contains("beta"), "{}", v[0]);
    }

    #[test]
    fn reply_obligation_fixture_fires() {
        let v = lint_file("crates/fake/src/sloppy.rs", REPLY_FIXTURE);
        let hits: Vec<_> = v.iter().filter(|x| x.rule == Rule::ReplyObligation).collect();
        // Exactly the three BAD arms: dropped Get, fall-through Put,
        // early-return Commit. FenceUp (one-way) and None must not fire.
        assert_eq!(hits.len(), 3, "{v:?}");
        for (hit, variant) in hits.iter().zip(["Get", "Put", "Commit"]) {
            assert!(hit.message.contains(variant), "expected {variant}: {hit}");
        }
    }

    #[test]
    fn empty_allowlist_is_enforced() {
        assert!(check_allowlist_empty("# only comments\n\n# here\n").is_empty());
        let v = check_allowlist_empty("# c\npanic:crates/kvs/src/module.rs\n");
        assert_eq!(rules(&v), [Rule::AllowlistEntry], "{v:?}");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn live_tree_is_clean() {
        let v = lint_tree(&workspace_root()).expect("walk workspace");
        assert!(v.is_empty(), "live tree has lint violations:\n{}", {
            let mut s = String::new();
            for x in &v {
                s.push_str(&format!("  {x}\n"));
            }
            s
        });
    }
}
