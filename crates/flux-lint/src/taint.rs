//! Determinism-taint analysis.
//!
//! The repo's strongest guarantee — byte-identical sim cells in
//! `BENCH_kap.json` and replayable flux-mc/chaos traces — dies the
//! moment a nondeterminism source leaks into deterministic code: a
//! `HashMap` iteration feeding wire encoding or event emission, an
//! `Instant::now()` stored in a replayable record, a thread id or a
//! pointer value used for ordering. This pass classifies those sources,
//! exonerates order-insensitive uses, and propagates function-level
//! taint through the call graph into the *deterministic scope*: the
//! crates (and rt files) whose behaviour must be a pure function of the
//! message history and the seed.
//!
//! ## The lattice
//!
//! Each function is `Clean`, `Waived`, or `Tainted(source)`. A source
//! is one of:
//!
//! * **hash-iter** — iteration over a `HashMap`/`HashSet`-typed field,
//!   local, or parameter (`.iter()`, `.keys()`, `.values()`,
//!   `.drain()`, or a `for` loop over a reference to one). `RandomState`
//!   makes the order differ across *processes*, which breaks trace
//!   replay even when a single run looks stable.
//! * **wall-clock** — `Instant::now`, `SystemTime::now`, `UNIX_EPOCH`.
//! * **thread-id** — `thread::current()`, `ThreadId`.
//! * **addr-order** — a pointer cast (`as_ptr`, `as *const`, `as *mut`)
//!   combined in one statement with ordering or hashing (`as usize`,
//!   `.cmp(`, `.hash(`, `sort`).
//!
//! A source is **exonerated** (stays `Clean`) when the same statement
//! ends in an order-insensitive terminal (`count`/`sum`/`min`/`max`/
//! `all`/`any`/`len`/`contains`), re-keys into an ordered or hashed
//! container (`BTreeMap`/`BTreeSet`/`BinaryHeap`/`collect::<HashMap>`),
//! sorts inline (`.sort*`), or binds a collection that one of the next
//! few statements in the same block sorts (`let mut v = m.keys()…;
//! v.sort();`).
//!
//! Sources inside the deterministic scope are violations at the source
//! site. A deterministic-scope function that *calls* (transitively) a
//! tainted function outside the scope is a violation at the call site,
//! with the provenance chain in the message. Resolution is name-based
//! but per *definition*: a bare or `self.` call binds to the unique
//! same-file definition, else the unique crate-wide one; cross-crate
//! `flux_<crate>::…` qualified paths resolve the same way in the named
//! crate. An ambiguous name (trait impls sharing it) and any dotted
//! call on a non-`self` receiver resolve to nothing and are treated as
//! clean (false negatives over false positives, like every semantic
//! lint here).
//!
//! ## Waivers
//!
//! `// flux-lint: allow(nondet) — <justification>` waives the source on
//! or just above the line, exactly like the panic rule — but the
//! justification text is mandatory: a bare `allow(nondet)` is itself a
//! violation. Waived sources do not propagate taint (the human took
//! responsibility for the boundary). The canonical justified entries
//! are the diagnostics-only fields excluded from record equality:
//! `ScriptReport::wall_ns`/`events_per_sec` and the bench harness's
//! wall-clock budget checks.

use crate::analysis::{
    binding_of, display_key, line_of, split_stmts, waiver_status, DefIndex, ParsedFile, Scope, Stmt,
};
use crate::{Rule, Violation, ALLOW_REACH};
use std::collections::{BTreeMap, BTreeSet};

/// Waiver comment token (checked on raw lines).
const WAIVER: &str = "flux-lint: allow(nondet)";

/// The deterministic scope: crates whose entire `src/` must replay
/// byte-identically from the message history and seed, plus the
/// deterministic files inside the otherwise wall-clock `rt` crate (the
/// sim transport, the script/replay plane, and the seeded fault/chaos
/// machinery live next to the live TCP/thread transports).
const DET_SCOPE: Scope = Scope {
    prefixes: &[
        "crates/wire/src/",
        "crates/value/src/",
        "crates/hash/src/",
        "crates/topo/src/",
        "crates/proto/src/",
        "crates/broker/src/",
        "crates/kvs/src/",
        "crates/modules/src/",
        "crates/sim/src/",
        "crates/flux-mc/src/",
        "crates/kap/src/",
        "crates/core/src/",
        "crates/pmi/src/",
    ],
    files: &[
        "crates/rt/src/sim.rs",
        "crates/rt/src/script.rs",
        "crates/rt/src/faults.rs",
        "crates/rt/src/chaos.rs",
    ],
};

/// Is this file part of the deterministic scope?
pub(crate) fn det_scope(rel: &str) -> bool {
    DET_SCOPE.contains(rel)
}

/// Iteration methods whose order follows the container's.
const ITER_METHODS: &[&str] =
    &[".iter()", ".iter_mut()", ".keys()", ".values()", ".values_mut()", ".into_iter()", ".drain()"];

/// Statement-level exonerations: order-insensitive terminals and
/// ordered/hashed re-keying.
const ORDER_FREE: &[&str] = &[
    ".count()",
    ".sum()",
    ".sum::",
    ".product()",
    ".min(",
    ".max(",
    ".min_by",
    ".max_by",
    ".all(",
    ".any(",
    ".len()",
    ".is_empty()",
    ".contains(",
    ".contains_key(",
    ".sort",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "collect::<HashMap",
    "collect::<HashSet",
    "collect::<std::collections::HashMap",
    "collect::<std::collections::HashSet",
];

/// One nondeterminism source found in a function.
#[derive(Clone, Debug)]
struct Source {
    /// 1-based line of the source site.
    line: usize,
    /// What fired, for diagnostics (`HashMap iteration over \`m\``).
    what: String,
}

/// Per-function taint classification.
enum State {
    /// No unexonerated source; may still become tainted via calls.
    Clean,
    /// Direct source(s), none waived; carries the first for provenance.
    Tainted(Source),
    /// Every direct source carries a justified waiver: the function is
    /// a vetted boundary and does not propagate.
    Waived,
}

/// Runs the pass over the shared parsed-file cache.
pub(crate) fn check_taint(files: &[ParsedFile]) -> Vec<Violation> {
    let mut out = Vec::new();

    // Functions are keyed per *definition* (`crate::name@file#i`) via
    // the shared [`DefIndex`]; resolution is unique-or-nothing.
    let index = DefIndex::build(files);

    // Pass 1: classify every function in the workspace and flag direct
    // source sites inside the deterministic scope.
    // Key: `crate::fn_name` (same scheme as the lock-order pass).
    let mut state: BTreeMap<String, State> = BTreeMap::new();
    let mut site: BTreeMap<String, (String, usize)> = BTreeMap::new(); // key → (file, line)
    let mut def_file: BTreeMap<String, String> = BTreeMap::new(); // key → defining file
    let mut calls: BTreeMap<String, Vec<(String, usize)>> = BTreeMap::new(); // key → (callee key, call line)
    let mut in_scope: BTreeSet<String> = BTreeSet::new();

    for pf in files {
        let crate_name = pf.crate_name().to_owned();
        let raw_lines: Vec<&str> = pf.raw.lines().collect();
        let fields = field_names(pf);
        let scoped = det_scope(&pf.rel);
        for (i, f) in pf.fns.iter().enumerate() {
            let key = DefIndex::key(&crate_name, &f.name, &pf.rel, i);
            def_file.entry(key.clone()).or_insert_with(|| pf.rel.clone());
            if scoped {
                in_scope.insert(key.clone());
            }
            // Bare receivers must be declared hash-typed *in this
            // function* (a parameter or a local); `self.x` receivers
            // check the file's field declarations. File-wide name
            // pooling would let a `let ids: HashSet<_> = …` in one
            // function condemn an unrelated `Vec` named `ids` in
            // another.
            let mut locals = hash_typed_names(&f.sig);
            let mut sources = Vec::new();
            scan_block(&pf.stripped, f.body, &fields, &mut locals, &mut sources);
            // Split the sources into waived (must be justified) and live.
            let mut live: Vec<Source> = Vec::new();
            let mut any_waived = false;
            for s in sources {
                match waiver_status(&raw_lines, s.line, WAIVER, ALLOW_REACH) {
                    Some(true) => any_waived = true,
                    Some(false) if scoped => out.push(Violation {
                        file: pf.rel.clone(),
                        line: s.line,
                        rule: Rule::Nondet,
                        message: format!(
                            "`allow(nondet)` without a justification — write \
                             `// flux-lint: allow(nondet) — <why this cannot reach a \
                             deterministic record>` ({})",
                            s.what
                        ),
                    }),
                    Some(false) => any_waived = true,
                    None => live.push(s),
                }
            }
            if scoped {
                for s in &live {
                    out.push(Violation {
                        file: pf.rel.clone(),
                        line: s.line,
                        rule: Rule::Nondet,
                        message: format!(
                            "{} in deterministic code — sort, use a BTreeMap, or justify \
                             with `// flux-lint: allow(nondet) — <why>`",
                            s.what
                        ),
                    });
                }
            }
            let st = match (live.first(), any_waived) {
                (Some(s), _) => {
                    site.insert(key.clone(), (pf.rel.clone(), s.line));
                    State::Tainted(s.clone())
                }
                (None, true) => State::Waived,
                (None, false) => State::Clean,
            };
            state.insert(key.clone(), st);
            // Call edges: same-crate bare calls + cross-crate qualified.
            calls.insert(key, index.edges(pf, f));
        }
    }

    // Pass 2: propagate taint caller-ward to a fixpoint, tracking one
    // provenance step per function for chain reconstruction.
    let mut tainted: BTreeMap<String, String> = BTreeMap::new(); // key → next hop (or itself)
    for (key, st) in &state {
        if matches!(st, State::Tainted(_)) {
            tainted.insert(key.clone(), key.clone());
        }
    }
    loop {
        let mut changed = false;
        for (caller, edges) in &calls {
            if tainted.contains_key(caller) {
                continue;
            }
            if matches!(state.get(caller), Some(State::Waived)) {
                continue; // vetted boundary: does not propagate
            }
            if let Some((callee, _)) = edges.iter().find(|(c, _)| tainted.contains_key(c)) {
                tainted.insert(caller.clone(), callee.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 3: a deterministic-scope function tainted *only* through
    // out-of-scope callees is flagged at its first tainted call site
    // (in-scope sources were already flagged at the source itself).
    for key in &in_scope {
        if matches!(state.get(key), Some(State::Tainted(_))) {
            continue; // flagged at the source in pass 1
        }
        let Some(first_hop) = tainted.get(key) else { continue };
        // Reconstruct the chain down to the source function.
        let mut chain = vec![key.clone()];
        let mut cur = first_hop.clone();
        while chain.last() != Some(&cur) {
            chain.push(cur.clone());
            cur = tainted.get(&cur).cloned().unwrap_or(cur);
        }
        let source_key = chain.last().expect("chain is never empty").clone();
        if in_scope.contains(&source_key) {
            continue; // the source is flagged at its own site
        }
        let Some((_, cline)) =
            calls.get(key).and_then(|e| e.iter().find(|(c, _)| c == first_hop))
        else {
            continue;
        };
        let cline = *cline;
        let cfile = def_file.get(key).cloned().unwrap_or_default();
        let (sfile, sline) = site.get(&source_key).cloned().unwrap_or_default();
        let what = match state.get(&source_key) {
            Some(State::Tainted(s)) => s.what.clone(),
            _ => "nondeterminism".to_owned(),
        };
        out.push(Violation {
            file: if cfile.is_empty() { sfile.clone() } else { cfile },
            line: cline,
            rule: Rule::Nondet,
            message: format!(
                "deterministic function `{}` reaches {what} via {} ({sfile}:{sline})",
                display_key(key),
                chain.iter().map(|k| display_key(k)).collect::<Vec<_>>().join(" -> "),
            ),
        });
    }

    out.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out
}

/// Hash-typed *field* declarations of a file: `hash_typed_names` over
/// the stripped text with every function body blanked, so `let`
/// annotations inside one function cannot condemn bare receivers in
/// another.
fn field_names(pf: &ParsedFile) -> BTreeSet<String> {
    let mut bytes = pf.stripped.clone().into_bytes();
    for f in &pf.fns {
        for b in &mut bytes[f.body.0..f.body.1] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    }
    hash_typed_names(&String::from_utf8(bytes).expect("blanking is ascii-safe"))
}

/// Collects names declared with a hash-container type anywhere in
/// `text`: struct fields and parameters (`name: HashMap<…>`) and local
/// bindings (`let [mut] name = HashMap::new()` and friends).
fn hash_typed_names(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for container in ["HashMap", "HashSet"] {
        let mut from = 0;
        while let Some(p) = text[from..].find(container) {
            let abs = from + p;
            from = abs + container.len();
            // `name: [&][mut ]HashMap<` (field, param, or annotation).
            let before = &text[..abs];
            let trimmed = before
                .trim_end()
                .trim_end_matches("mut")
                .trim_end()
                .trim_end_matches(['&', ' ']);
            if let Some(head) = trimmed.strip_suffix(':') {
                if let Some(name) = ident_at_end(head) {
                    out.insert(name);
                }
                continue;
            }
            // `let [mut] name = HashMap::new()` / `with_capacity` / `from`.
            if let Some(eq_head) = trimmed.strip_suffix('=') {
                let stmt_head = eq_head.rfind(['\n', ';', '{', '}']).map_or(eq_head, |i| &eq_head[i + 1..]);
                if let Some(name) = binding_of(stmt_head) {
                    out.insert(name.to_owned());
                }
            }
        }
    }
    out
}

/// The identifier `text` ends with, if any.
fn ident_at_end(text: &str) -> Option<String> {
    let t = text.trim_end();
    let bytes = t.as_bytes();
    let mut start = bytes.len();
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    (start < bytes.len()).then(|| t[start..].to_owned())
}

/// Scans one block for sources, tracking hash-typed local bindings and
/// collect-then-sort exoneration across adjacent statements. `fields`
/// scopes `self.x` receivers; `locals` (params + `let` bindings seen so
/// far) scopes bare receivers.
fn scan_block(
    blanked: &str,
    span: (usize, usize),
    fields: &BTreeSet<String>,
    locals: &mut BTreeSet<String>,
    out: &mut Vec<Source>,
) {
    let stmts = split_stmts(blanked, span);
    for (i, stmt) in stmts.iter().enumerate() {
        let full = &blanked[stmt.full.0..stmt.full.1];
        let head = stmt.segs.join(" ");
        // 1-based line of byte `at` within this statement's span.
        let line_at = |at: usize| line_of(blanked, stmt.full.0 + at);

        // New hash-typed locals come into scope for later statements.
        locals.extend(hash_typed_names(&head));

        // Clock / thread / address sources are context-free tokens.
        for (tok, what) in [
            ("Instant::now(", "wall-clock read (`Instant::now`)"),
            ("SystemTime::now(", "wall-clock read (`SystemTime::now`)"),
            ("UNIX_EPOCH", "wall-clock read (`UNIX_EPOCH`)"),
            ("thread::current(", "thread identity (`thread::current`)"),
            ("ThreadId", "thread identity (`ThreadId`)"),
        ] {
            if let Some(p) = full.find(tok) {
                out.push(Source { line: line_at(p), what: what.to_owned() });
            }
        }
        let ptr_at = ["as_ptr(", " as *const", " as *mut"]
            .iter()
            .find_map(|t| full.find(t));
        if let Some(p) = ptr_at {
            if full.contains(" as usize")
                || full.contains(".cmp(")
                || full.contains(".hash(")
                || full.contains("sort")
            {
                out.push(Source { line: line_at(p), what: "pointer/address ordering".to_owned() });
            }
        }

        // Hash-container iteration, with receiver scoping.
        if let Some((name, p)) = hash_iteration(&head, full, fields, locals) {
            if !exonerated(full) && !sorted_later(&stmts[i..], &head, blanked) {
                out.push(Source {
                    line: line_at(p),
                    what: format!("HashMap/HashSet iteration over `{name}`"),
                });
            }
        }

        for &block in &stmt.blocks {
            scan_block(blanked, block, fields, locals, out);
        }
    }
}

/// Detects iteration over a hash-typed name in the statement: method
/// iteration (`self.m.iter()`, `m.keys()`) or a `for` loop over a
/// (reference to a) hash-typed name. Returns the name and its byte
/// offset within `full`. Receivers owned by something other than `self`
/// (`other.replies.iter()`) never match — the field belongs to a
/// different struct and its type is unknown here.
fn hash_iteration(
    head: &str,
    full: &str,
    fields: &BTreeSet<String>,
    locals: &BTreeSet<String>,
) -> Option<(String, usize)> {
    for tok in ITER_METHODS {
        let mut from = 0;
        while let Some(p) = full[from..].find(tok) {
            let abs = from + p;
            from = abs + tok.len();
            if let Some(name) = scoped_receiver(&full[..abs], fields, locals) {
                return Some((name, abs));
            }
        }
    }
    // `for pat in &self.m {` / `for pat in &m {` / `for pat in m {`
    // (the method forms are caught above; here only bare references).
    let h = head.trim_start();
    if h.starts_with("for ") {
        if let Some(pos) = h.find(" in ") {
            let expr = h[pos + 4..].trim().trim_start_matches("&mut ").trim_start_matches('&');
            let expr = expr.trim_end_matches('{').trim();
            let (candidate, names) = match expr.strip_prefix("self.") {
                Some(field) => (field, fields),
                None => (expr, locals),
            };
            if !candidate.is_empty()
                && candidate.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && names.contains(candidate)
            {
                let at = full.find(" in ").map_or(0, |p| p + 4);
                return Some((candidate.to_owned(), at));
            }
        }
    }
    None
}

/// The receiver name ending `text`, if it is a hash-typed name in
/// scope: `self.name` checks the file's field declarations, a bare
/// name checks this function's params/locals. `outcome.replies`
/// (owner ≠ self) → None.
fn scoped_receiver(
    text: &str,
    fields: &BTreeSet<String>,
    locals: &BTreeSet<String>,
) -> Option<String> {
    let bytes = text.as_bytes();
    let end = bytes.len();
    // Identifier directly before the token.
    let mut start = end;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    if start == end {
        return None;
    }
    let name = &text[start..end];
    // Owner: bare (→ locals), or `self.`-owned (→ fields) only.
    let names = if start >= 1 && bytes[start - 1] == b'.' {
        let owner_end = start - 1;
        let mut owner_start = owner_end;
        while owner_start > 0
            && (bytes[owner_start - 1].is_ascii_alphanumeric() || bytes[owner_start - 1] == b'_')
        {
            owner_start -= 1;
        }
        if &text[owner_start..owner_end] != "self" {
            return None;
        }
        fields
    } else {
        locals
    };
    names.contains(name).then(|| name.to_owned())
}

/// Statement-local exoneration: the iteration's order cannot reach an
/// ordered observation.
fn exonerated(full: &str) -> bool {
    ORDER_FREE.iter().any(|t| full.contains(t))
}

/// Collect-then-sort across adjacent statements: the iteration binds a
/// collection that one of the next few statements sorts.
fn sorted_later(rest: &[Stmt], head: &str, blanked: &str) -> bool {
    let Some(bound) = binding_of(head) else { return false };
    rest.iter().skip(1).take(4).any(|s| {
        let text = &blanked[s.full.0..s.full.1];
        text.contains(&format!("{bound}.sort"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        check_taint(&[ParsedFile::parse(rel, src)])
    }

    #[test]
    fn hash_iteration_feeding_output_is_flagged() {
        let src = "struct S { m: HashMap<u32, u32> }\nimpl S {\n fn dump(&self, out: &mut Vec<u32>) {\n  for (k, _) in &self.m {\n   out.push(*k);\n  }\n }\n}\n";
        let v = run("crates/kvs/src/demo.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains('m'), "{}", v[0]);
    }

    #[test]
    fn sorted_and_order_free_uses_are_clean() {
        let src = "struct S { m: HashMap<u32, u32> }\nimpl S {\n fn a(&self) -> usize { self.m.values().count() }\n fn b(&self) -> Vec<u32> {\n  let mut v: Vec<u32> = self.m.keys().copied().collect();\n  v.sort_unstable();\n  v\n }\n fn c(&self) -> BTreeMap<u32, u32> { self.m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<_, _>>() }\n}\n";
        let v = run("crates/kvs/src/demo.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn foreign_receivers_and_vec_shadows_are_clean() {
        // `outcome.replies` is a field of another struct; `fences` here
        // is a Vec parameter shadowing nothing hash-typed.
        let src = "struct S { fences: HashMap<u32, u32> }\nimpl S {\n fn f(&self, outcome: &Outcome) {\n  for r in outcome.replies.iter() { use_(r); }\n }\n fn g(&self, fences: Vec<u32>) {\n  for f in fences { use_(f); }\n }\n}\n";
        // `fences` the param shadows the field name but is Vec-typed;
        // bare receivers resolve against the *function's* params and
        // locals, never the file-wide field pool, so neither fires.
        let v = run("crates/kvs/src/demo.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn let_annotations_do_not_leak_across_functions() {
        // `ids` is a HashSet in `a` but a Vec in `b`; only the loop in
        // `a` (which really iterates hash order) may fire.
        let src = "impl S {\n fn a(&self, part: &[u32]) {\n  let ids: HashSet<u32> = part.iter().copied().collect();\n  for id in ids { emit(id); }\n }\n fn b(&self) {\n  let ids: Vec<u32> = vec![1, 2];\n  for id in ids { emit(id); }\n }\n}\n";
        let v = run("crates/kvs/src/demo.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 4, "{}", v[0]);
    }

    #[test]
    fn wall_clock_needs_justified_waiver() {
        let bad = "fn t() -> u64 {\n let s = Instant::now();\n 0\n}\n";
        let v = run("crates/sim/src/demo.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Instant::now"), "{}", v[0]);

        let unjustified = "fn t() -> u64 {\n // flux-lint: allow(nondet)\n let s = Instant::now();\n 0\n}\n";
        let v = run("crates/sim/src/demo.rs", unjustified);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("justification"), "{}", v[0]);

        let justified = "fn t() -> u64 {\n // flux-lint: allow(nondet) — diagnostics-only wall clock, excluded from record equality\n let s = Instant::now();\n 0\n}\n";
        let v = run("crates/sim/src/demo.rs", justified);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn out_of_scope_files_are_not_linted() {
        let src = "fn t() -> Instant { Instant::now() }\n";
        let v = run("crates/rt/src/tcp.rs", src);
        assert!(v.is_empty(), "{v:?}");
        let v = run("crates/cli/src/main.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn taint_propagates_from_out_of_scope_helper() {
        let files = [
            ParsedFile::parse(
                "crates/rt/src/sim.rs",
                "fn step(&mut self) { let t = self.stamp(); emit(t); }\n",
            ),
            ParsedFile::parse(
                "crates/rt/src/tcp.rs",
                "impl T { fn stamp(&self) -> u64 { Instant::now().elapsed().as_nanos() as u64 } }\n",
            ),
        ];
        let v = check_taint(&files);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].file.contains("sim.rs"), "{}", v[0]);
        assert!(v[0].message.contains("rt::stamp"), "{}", v[0]);
    }

    #[test]
    fn thread_and_addr_sources_fire() {
        let src = "fn t(xs: &[Arc<u8>]) {\n let id = thread::current().id();\n let mut v: Vec<usize> = xs.iter().map(|x| Arc::as_ptr(x) as usize).collect();\n v.sort();\n}\n";
        let v = run("crates/broker/src/demo.rs", src);
        // thread::current + the pointer-ordering statement both fire
        // (the `.sort()` lives in a *later* statement and exonerates
        // nothing about address identity).
        assert_eq!(v.len(), 2, "{v:?}");
    }
}
