//! Mutation smoke check (`flux-lint --self-mutate`).
//!
//! A linter that silently stops firing is worse than no linter: CI goes
//! green while the invariant rots. This module seeds one known
//! violation per semantic pass into an *in-memory* copy of the live
//! tree (the working copy is never touched), re-lints, and fails unless
//! every seeded violation is caught by the expected rule in the mutated
//! file. Each mutation targets a real pattern in the live tree, so the
//! check also fails loudly — as `pattern missing` — when a refactor
//! moves the pattern out from under it, instead of quietly testing
//! nothing.

use crate::lint_sources;
use std::path::Path;

/// One seeded violation.
struct Mutation {
    /// Short name for the report line.
    name: &'static str,
    /// The rule expected to catch it (`Rule::name()` form).
    rule: &'static str,
    /// Workspace-relative file the mutation edits.
    file: &'static str,
    /// Applies the mutation to the file's source; `None` if the
    /// anchoring pattern has disappeared from the tree.
    apply: fn(&str) -> Option<String>,
}

const MUTATIONS: &[Mutation] = &[
    // Determinism taint: a HashMap iteration feeding output order,
    // planted in the KVS history plane (deterministic scope).
    Mutation {
        name: "hash-iteration-in-det-scope",
        rule: "nondet",
        file: "crates/kvs/src/history.rs",
        apply: |src| {
            Some(format!(
                "{src}\n/// Seeded by `flux-lint --self-mutate`: iteration order leaks.\n\
                 pub fn mutated_dump(m: &HashMap<u64, u64>, out: &mut Vec<u64>) {{\n\
                 \x20   for (k, _) in m {{\n\
                 \x20       out.push(*k);\n\
                 \x20   }}\n\
                 }}\n"
            ))
        },
    },
    // Error-code conformance: the GetVersion arm answers a malformed
    // request with EPERM, which no kvs method declares.
    Mutation {
        name: "undeclared-errno-in-dispatch-arm",
        rule: "error-codes",
        file: "crates/kvs/src/module.rs",
        apply: |src| {
            let pat = "Err(()) => ctx.respond_err(msg, errnum::EINVAL),";
            src.contains(pat).then(|| {
                src.replacen(pat, "Err(()) => ctx.respond_err(msg, errnum::EPERM),", 1)
            })
        },
    },
    // Shard safety: the push-join consumption compares against a bare
    // integer, erasing the EINVAL wrong-master discrimination.
    Mutation {
        name: "einval-discrimination-erased",
        rule: "shard-safety",
        file: "crates/kvs/src/module.rs",
        apply: |src| {
            let pat = "msg.header.errnum == errnum::EINVAL";
            src.contains(pat)
                .then(|| src.replacen(pat, "msg.header.errnum == transient_code()", 1))
        },
    },
    // Blocking calls: a wall-clock sleep dropped into the sim engine
    // (sans-io scope, the future reactor's dispatch substrate).
    Mutation {
        name: "sleep-in-sans-io-scope",
        rule: "block",
        file: "crates/sim/src/engine.rs",
        apply: |src| {
            Some(format!(
                "{src}\n/// Seeded by `flux-lint --self-mutate`: a wall-clock stall.\n\
                 pub fn mutated_nap() {{\n\
                 \x20   std::thread::sleep(std::time::Duration::from_millis(1));\n\
                 }}\n"
            ))
        },
    },
    // Hot-path allocation: a per-frame buffer copy planted in the
    // framing chain's registered hot root `read_frame_into`.
    Mutation {
        name: "per-frame-copy-in-hot-root",
        rule: "hotalloc",
        file: "crates/wire/src/frame.rs",
        apply: |src| {
            let pat = "body.clear();";
            src.contains(pat)
                .then(|| src.replacen(pat, "let staged = body.to_vec();\n    body.clear();", 1))
        },
    },
];

/// Runs the smoke check against the workspace at `root`. Returns one
/// report line per mutation on success, or an error describing the
/// first seeded violation the linter missed.
pub fn self_mutate(root: &Path) -> Result<Vec<String>, String> {
    let sources = crate::read_sources(root).map_err(|e| format!("read workspace: {e}"))?;
    let allowlist = std::fs::read_to_string(root.join("crates/flux-lint/allowlist.txt"))
        .unwrap_or_default();
    let mut report = Vec::new();
    for m in MUTATIONS {
        let Some((_, original)) = sources.iter().find(|(rel, _)| rel == m.file) else {
            return Err(format!("{}: target file `{}` not found", m.name, m.file));
        };
        let Some(mutated) = (m.apply)(original) else {
            return Err(format!(
                "{}: anchoring pattern missing from `{}` — re-anchor the mutation",
                m.name, m.file
            ));
        };
        let mutated_sources: Vec<(String, String)> = sources
            .iter()
            .map(|(rel, src)| {
                if rel == m.file {
                    (rel.clone(), mutated.clone())
                } else {
                    (rel.clone(), src.clone())
                }
            })
            .collect();
        let caught = lint_sources(&mutated_sources, &allowlist)
            .violations
            .into_iter()
            .find(|v| v.rule.name() == m.rule && v.file == m.file);
        match caught {
            Some(v) => report.push(format!("{}: caught by [{}] at {}:{}", m.name, m.rule, v.file, v.line)),
            None => {
                return Err(format!(
                    "{}: seeded violation in `{}` survived — the `{}` pass is blind",
                    m.name, m.file, m.rule
                ))
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seeded_violation_is_caught() {
        let report = self_mutate(&crate::workspace_root()).expect("self-mutate");
        assert_eq!(report.len(), MUTATIONS.len(), "{report:?}");
    }
}
