//! Error-code conformance analysis.
//!
//! Every method in the flux-proto registry declares the error codes its
//! handler may return (`MethodSpec::declared_errors`). This pass checks
//! the implementation against the declaration in both directions:
//!
//! 1. **Undeclared production** — a dispatch arm whose reachable code
//!    mentions an `errnum::` literal not declared for any variant the
//!    arm handles. Reachability is the arm text plus *two hops* of
//!    same-file callees (file-local and depth-limited on purpose:
//!    name-merging across a whole crate would attribute one module's
//!    codes to another's arms, and a full closure attributes every code
//!    of shared machinery — the walk engine, the retry pumps — to every
//!    arm that touches it, even when the shared path is serving some
//!    *other* request's parked reply). Arms handling only `OneWay`
//!    variants are skipped: there is no reply channel to produce a code
//!    on.
//! 2. **Unreachable declaration** — a declared code that appears
//!    nowhere in the arm's crate-wide closure, the dispatch function's
//!    closure, or the file's response-plumbing functions (`*response*`),
//!    and no *relay* exists in those scopes. A relay is a
//!    `respond_err(`/`error_response_to(` call whose arguments carry no
//!    `errnum::` literal — the handler forwards an upstream or computed
//!    code the linter cannot enumerate, so unproven declarations are
//!    given the benefit of the doubt.
//!
//! Mentions in comparisons (`== errnum::EINVAL`, `!= errnum::ENOENT`)
//! and match patterns (`errnum::ENOENT =>`) are *reads* of a reply's
//! code, not productions, and never count. `ENOSYS` is the dispatch
//! layer's code for an undecodable method and is excluded from both
//! directions — every service declares it implicitly (see
//! `Service::declared_surface`).
//!
//! Waive a finding with `// flux-lint: allow(error-codes)` on or just
//! above the arm.

use crate::analysis::{calls_in, line_of, waiver_status, ParsedFile};
use crate::reply::{find_dispatch_matches, normalize, split_arms, Arm, DispatchMatch};
use crate::{Rule, Violation};
use flux_proto::MethodKind;
use flux_wire::errnum;
use std::collections::{BTreeMap, BTreeSet};

/// Waiver comment token (checked on raw lines).
const WAIVER: &str = "flux-lint: allow(error-codes)";

/// The errno vocabulary the wire crate defines, for mention parsing.
const CODES: &[(&str, u32)] = &[
    ("EPERM", errnum::EPERM),
    ("ENOENT", errnum::ENOENT),
    ("EINTR", errnum::EINTR),
    ("EIO", errnum::EIO),
    ("EAGAIN", errnum::EAGAIN),
    ("ENOMEM", errnum::ENOMEM),
    ("ENOTDIR", errnum::ENOTDIR),
    ("EISDIR", errnum::EISDIR),
    ("EINVAL", errnum::EINVAL),
    ("ENAMETOOLONG", errnum::ENAMETOOLONG),
    ("ENOSYS", errnum::ENOSYS),
    ("ETIMEDOUT", errnum::ETIMEDOUT),
    ("EHOSTDOWN", errnum::EHOSTDOWN),
    ("ESTALE", errnum::ESTALE),
];

/// Spelled-out name of a code, for diagnostics.
fn code_name(code: u32) -> String {
    CODES
        .iter()
        .find(|(_, v)| *v == code)
        .map_or_else(|| code.to_string(), |(n, _)| format!("errnum::{n}"))
}

/// `(service, normalized method) → (kind, declared codes)` from the
/// proto registry.
fn declared_table() -> BTreeMap<(String, String), (MethodKind, &'static [u32])> {
    let mut map = BTreeMap::new();
    for spec in flux_proto::methods() {
        let mut parts = spec.topic.splitn(2, '.');
        let (Some(service), Some(method)) = (parts.next(), parts.next()) else { continue };
        map.insert((service.to_owned(), normalize(method)), (spec.kind, spec.declared_errors));
    }
    map
}

/// A call-graph scope: per-function mention sets, call edges, and relay
/// flags, closed under the call relation by [`Graph::fixpoint`].
/// Functions are keyed by bare name; same-name functions merge (safe in
/// the direction each caller uses this for — see module docs).
#[derive(Default)]
struct Graph {
    names: BTreeSet<String>,
    mention: BTreeMap<String, BTreeSet<u32>>,
    /// Pre-closure per-function mention sets, for depth-limited walks.
    direct: BTreeMap<String, BTreeSet<u32>>,
    relay: BTreeSet<String>,
    calls: BTreeMap<String, BTreeSet<String>>,
}

impl Graph {
    fn add_fn(&mut self, name: &str, body: &str) {
        self.mention.entry(name.to_owned()).or_default().extend(mentions(body));
        if has_relay(body) {
            self.relay.insert(name.to_owned());
        }
        self.names.insert(name.to_owned());
    }

    /// Resolves call edges (after all functions are added) and closes
    /// mention sets and relay flags over the call graph.
    fn close(&mut self, bodies: &[(String, String)]) {
        self.direct = self.mention.clone();
        for (name, body) in bodies {
            let callees = calls_in(body, &self.names);
            self.calls.entry(name.clone()).or_default().extend(callees);
        }
        loop {
            let mut changed = false;
            let keys: Vec<String> = self.calls.keys().cloned().collect();
            for key in keys {
                let callees = self.calls[&key].clone();
                let mut add: BTreeSet<u32> = BTreeSet::new();
                let mut relay = false;
                for callee in &callees {
                    if let Some(set) = self.mention.get(callee) {
                        add.extend(set.iter().copied());
                    }
                    relay |= self.relay.contains(callee);
                }
                let mine = self.mention.entry(key.clone()).or_default();
                for code in add {
                    changed |= mine.insert(code);
                }
                if relay && self.relay.insert(key) {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Depth-limited production set of a free-standing text (an arm
    /// body): its own mentions plus two hops of callees' *direct*
    /// mentions. The horizon keeps shared deep machinery (walk engine,
    /// retry pumps) from being attributed to every arm that enters it.
    fn of_text_depth2(&self, text: &str) -> BTreeSet<u32> {
        let mut set = mentions(text);
        for c1 in calls_in(text, &self.names) {
            set.extend(self.direct.get(&c1).into_iter().flatten().copied());
            for c2 in self.calls.get(&c1).into_iter().flatten() {
                set.extend(self.direct.get(c2).into_iter().flatten().copied());
            }
        }
        set
    }

    /// Mention closure of a free-standing text (an arm body): its own
    /// mentions plus the closed sets of every function it calls.
    fn of_text(&self, text: &str) -> (BTreeSet<u32>, bool) {
        let mut set = mentions(text);
        let mut relay = has_relay(text);
        for callee in calls_in(text, &self.names) {
            if let Some(s) = self.mention.get(&callee) {
                set.extend(s.iter().copied());
            }
            relay |= self.relay.contains(&callee);
        }
        (set, relay)
    }

    fn of_fn(&self, name: &str) -> (BTreeSet<u32>, bool) {
        (
            self.mention.get(name).cloned().unwrap_or_default(),
            self.relay.contains(name),
        )
    }
}

/// `errnum::NAME` literals produced (not read) by `text`.
fn mentions(text: &str) -> BTreeSet<u32> {
    let mut out = BTreeSet::new();
    let mut from = 0;
    while let Some(p) = text[from..].find("errnum::") {
        let abs = from + p;
        let name_start = abs + "errnum::".len();
        from = name_start;
        let name_end = text[name_start..]
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .map_or(text.len(), |e| name_start + e);
        let Some(&(_, code)) = CODES.iter().find(|(n, _)| *n == &text[name_start..name_end])
        else {
            continue;
        };
        // Reads, not productions: comparisons and match patterns.
        let before = text[..abs].trim_end();
        if before.ends_with("==") || before.ends_with("!=") {
            continue;
        }
        let after = text[name_end..].trim_start();
        if after.starts_with("=>") || after.starts_with("==") || after.starts_with("!=") {
            continue;
        }
        out.insert(code);
    }
    out
}

/// A respond/error call whose arguments carry no `errnum::` literal:
/// the code comes from upstream and cannot be enumerated statically.
fn has_relay(text: &str) -> bool {
    for tok in [".respond_err(", "error_response_to("] {
        let mut from = 0;
        while let Some(p) = text[from..].find(tok) {
            let open = from + p + tok.len() - 1;
            from = open + 1;
            let args_end = crate::analysis::match_delim(text.as_bytes(), open)
                .unwrap_or(text.len());
            if !text[open..args_end].contains("errnum::") {
                return true;
            }
        }
    }
    false
}

/// Normalized variant names mentioned in an arm pattern.
fn variants_in(pattern: &str, enum_name: &str) -> Vec<String> {
    let needle = format!("{enum_name}::");
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = pattern[from..].find(&needle) {
        let vstart = from + p + needle.len();
        let vend = pattern[vstart..]
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .map_or(pattern.len(), |e| vstart + e);
        out.push(normalize(&pattern[vstart..vend]));
        from = vend;
    }
    out
}

/// Runs the pass over the shared parsed-file cache.
pub(crate) fn check_error_codes(files: &[ParsedFile]) -> Vec<Violation> {
    let declared = declared_table();
    let mut out = Vec::new();

    // Crate-wide graphs (for reachability, direction 2) and file-local
    // graphs (for production, direction 1).
    let mut crate_bodies: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
    for pf in files {
        let bodies = crate_bodies.entry(pf.crate_name().to_owned()).or_default();
        for f in &pf.fns {
            bodies.push((f.name.clone(), pf.stripped[f.body.0..f.body.1].to_owned()));
        }
    }
    let mut crate_graphs: BTreeMap<String, Graph> = BTreeMap::new();
    for (krate, bodies) in &crate_bodies {
        let mut g = Graph::default();
        for (name, body) in bodies {
            g.add_fn(name, body);
        }
        g.close(bodies);
        crate_graphs.insert(krate.clone(), g);
    }

    for pf in files {
        let crate_g = &crate_graphs[pf.crate_name()];
        let mut file_g = Graph::default();
        let file_bodies: Vec<(String, String)> = pf
            .fns
            .iter()
            .map(|f| (f.name.clone(), pf.stripped[f.body.0..f.body.1].to_owned()))
            .collect();
        for (name, body) in &file_bodies {
            file_g.add_fn(name, body);
        }
        file_g.close(&file_bodies);

        // Response-plumbing scope for direction 2: codes a handler
        // produces asynchronously (walk steps, retry pumps) surface in
        // functions reached from the file's `*response*` entry points.
        let mut resp_codes: BTreeSet<u32> = BTreeSet::new();
        let mut resp_relay = false;
        for f in &pf.fns {
            if f.name.contains("response") {
                let (set, relay) = crate_g.of_fn(&f.name);
                resp_codes.extend(set);
                resp_relay |= relay;
            }
        }

        let raw_lines: Vec<&str> = pf.raw.lines().collect();
        for f in &pf.fns {
            if !(f.sig.contains("Ctx") || f.sig.contains("Broker")) {
                continue; // decoders: same responder gate as the reply pass
            }
            let (dispatch_codes, dispatch_relay) = crate_g.of_fn(&f.name);
            for m in find_dispatch_matches(&pf.stripped, f) {
                for arm in split_arms(&pf.stripped, m.block) {
                    check_arm(
                        pf,
                        &raw_lines,
                        &m,
                        &arm,
                        &declared,
                        &file_g,
                        crate_g,
                        (&dispatch_codes, dispatch_relay),
                        (&resp_codes, resp_relay),
                        &mut out,
                    );
                }
            }
        }
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out
}

/// Both directions for one dispatch arm.
#[allow(clippy::too_many_arguments)]
fn check_arm(
    pf: &ParsedFile,
    raw_lines: &[&str],
    m: &DispatchMatch,
    arm: &Arm,
    declared: &BTreeMap<(String, String), (MethodKind, &'static [u32])>,
    file_g: &Graph,
    crate_g: &Graph,
    dispatch: (&BTreeSet<u32>, bool),
    response: (&BTreeSet<u32>, bool),
    out: &mut Vec<Violation>,
) {
    let arm_text = match arm.block {
        Some(span) => pf.stripped[span.0..span.1].to_owned(),
        None => arm.expr.clone(),
    };
    // `arm.at` points just past the previous arm's comma (usually a
    // newline); anchor the diagnostic — and the waiver window — on the
    // pattern's first real character.
    let pat_at = arm.at
        + pf.stripped[arm.at..]
            .find(|c: char| !c.is_whitespace())
            .unwrap_or(0);
    let line = line_of(&pf.stripped, pat_at);
    if waived(raw_lines, line) {
        return;
    }
    let variants = variants_in(&arm.pattern, &m.enum_name);
    let is_none_arm = arm.pattern == "None";
    if variants.is_empty() && !is_none_arm {
        return; // wildcard / binding-only arm: variant set unknown
    }

    // Declared union (and kinds) over the variants this arm handles.
    let mut declared_union: BTreeSet<u32> = BTreeSet::new();
    let mut known_variant = is_none_arm;
    let mut all_one_way = !is_none_arm;
    for v in &variants {
        if let Some((kind, codes)) = declared.get(&(m.service.clone(), v.clone())) {
            declared_union.extend(codes.iter().copied());
            known_variant = true;
            all_one_way &= *kind == MethodKind::OneWay;
        }
    }
    if !known_variant {
        return; // registry drift: the reply pass already screams about it
    }

    // Direction 1: undeclared production (file-local, two call hops).
    // OneWay-only arms have no reply channel to produce a code on.
    if !all_one_way {
        let produced = file_g.of_text_depth2(&arm_text);
        for code in &produced {
            if *code == errnum::ENOSYS || declared_union.contains(code) {
                continue;
            }
            out.push(Violation {
                file: pf.rel.clone(),
                line,
                rule: Rule::ErrorCodes,
                message: format!(
                    "arm `{}` can produce {} which no variant it handles declares — add it \
                     to `declared_errors` in the proto registry or stop producing it",
                    compact(&arm.pattern),
                    code_name(*code),
                ),
            });
        }
    }

    // Direction 2: unreachable declaration (crate-wide closure, plus
    // the dispatch function and the file's response plumbing).
    let (arm_codes, arm_relay) = crate_g.of_text(&arm_text);
    let relay = arm_relay || dispatch.1 || response.1;
    if relay {
        return; // forwarded upstream codes cover unproven declarations
    }
    for v in &variants {
        let Some((kind, codes)) = declared.get(&(m.service.clone(), v.clone())) else {
            continue;
        };
        if *kind == MethodKind::OneWay {
            continue;
        }
        for code in *codes {
            if *code == errnum::ENOSYS
                || arm_codes.contains(code)
                || dispatch.0.contains(code)
                || response.0.contains(code)
            {
                continue;
            }
            out.push(Violation {
                file: pf.rel.clone(),
                line,
                rule: Rule::ErrorCodes,
                message: format!(
                    "`{}.{v}` declares {} but no path in its handler produces it — \
                     remove it from `declared_errors` or produce it",
                    m.service,
                    code_name(*code),
                ),
            });
        }
    }
}

/// Is there a waiver on `line` or up to four lines above it? This pass
/// does not demand a justification (a declaration mismatch is visible
/// in the registry itself), so any annotation counts.
fn waived(raw_lines: &[&str], line: usize) -> bool {
    waiver_status(raw_lines, line, WAIVER, 4).is_some()
}

/// Collapses runs of whitespace for single-line diagnostics.
fn compact(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        check_error_codes(&[ParsedFile::parse("crates/modules/src/demo.rs", src)])
    }

    #[test]
    fn conforming_handler_is_clean() {
        // barrier.enter declares [EINVAL]: producing it satisfies both
        // directions; ENOSYS in the None arm is always out of scope.
        let src = r#"
fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
    match BarrierMethod::from_method(msg.header.topic.method()) {
        Some(BarrierMethod::Enter) => {
            let Some(n) = msg.payload.get("nprocs") else {
                ctx.respond_err(msg, errnum::EINVAL);
                return;
            };
            self.enter(ctx, msg, n);
        }
        None => ctx.respond_err(msg, errnum::ENOSYS),
    }
}
"#;
        let v = run(src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn undeclared_code_is_flagged() {
        let src = r#"
fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
    match BarrierMethod::from_method(msg.header.topic.method()) {
        Some(BarrierMethod::Enter) => {
            ctx.respond_err(msg, errnum::EPERM);
        }
        None => ctx.respond_err(msg, errnum::ENOSYS),
    }
}
"#;
        let v = run(src);
        // EPERM is undeclared (direction 1) and the declared EINVAL is
        // never produced (direction 2).
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("EPERM")), "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("EINVAL")), "{v:?}");
    }

    #[test]
    fn production_through_a_helper_is_seen() {
        let src = r#"
impl M {
    fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        match BarrierMethod::from_method(msg.header.topic.method()) {
            Some(BarrierMethod::Enter) => self.enter(ctx, msg),
            None => ctx.respond_err(msg, errnum::ENOSYS),
        }
    }
    fn enter(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        ctx.respond_err(msg, errnum::EINVAL);
    }
}
"#;
        let v = run(src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn relay_covers_unprovable_declarations() {
        // resvc.alloc declares EINVAL and EAGAIN; the handler forwards
        // an upstream code (`respond_err(msg, e)`), so neither needs a
        // literal mention.
        let src = r#"
fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
    match ResvcMethod::from_method(msg.header.topic.method()) {
        Some(ResvcMethod::Alloc) => match self.alloc(msg) {
            Ok(v) => ctx.respond(msg, v),
            Err(e) => ctx.respond_err(msg, e),
        },
        None => ctx.respond_err(msg, errnum::ENOSYS),
    }
}
"#;
        let v = run(src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn comparisons_are_reads_not_productions() {
        let src = r#"
fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
    match BarrierMethod::from_method(msg.header.topic.method()) {
        Some(BarrierMethod::Enter) => {
            if msg.header.errnum == errnum::ESTALE {
                self.resync();
            }
            ctx.respond_err(msg, errnum::EINVAL);
        }
        None => ctx.respond_err(msg, errnum::ENOSYS),
    }
}
"#;
        let v = run(src);
        assert!(v.is_empty(), "ESTALE read must not count as produced: {v:?}");
    }

    #[test]
    fn waiver_suppresses_the_arm() {
        let src = r#"
fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
    match BarrierMethod::from_method(msg.header.topic.method()) {
        // flux-lint: allow(error-codes)
        Some(BarrierMethod::Enter) => {
            ctx.respond_err(msg, errnum::EPERM);
        }
        None => ctx.respond_err(msg, errnum::ENOSYS),
    }
}
"#;
        let v = run(src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unreachable_declaration_via_response_plumbing_is_ok() {
        // kvs.load declares ENOENT; the code surfaces in the response
        // path, not the request arm.
        let src = r#"
impl M {
    fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        match KvsMethod::from_method(msg.header.topic.method()) {
            Some(KvsMethod::Load) => {
                if msg.payload.get("blob").is_none() {
                    ctx.respond_err(msg, errnum::EINVAL);
                    return;
                }
                self.pending.insert(msg.header.id, msg.clone());
            }
            None => ctx.respond_err(msg, errnum::ENOSYS),
        }
    }
    fn handle_response(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        if let Some(waiter) = self.pending.remove(&msg.header.id) {
            ctx.respond_err(&waiter, errnum::ENOENT);
        }
    }
}
"#;
        let v = run(src);
        assert!(v.is_empty(), "{v:?}");
    }
}
