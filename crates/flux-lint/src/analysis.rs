//! AST-lite scaffolding shared by the semantic lints: function
//! extraction, brace matching, and statement splitting over blanked
//! source text (see [`crate::token::blank`]).
//!
//! This is deliberately not a full parser. Blanked text has no brace or
//! paren noise from strings and comments, so delimiter matching is
//! exact; statement structure is recovered with a small set of rules
//! that cover the workspace's (rustfmt-shaped) code. The semantic lints
//! built on top are tuned to fail toward *false negatives*, never false
//! positives: anything the scaffolding cannot classify is treated as
//! plain text.

/// One source file, parsed once and shared by every pass. The tree
/// walk builds one `ParsedFile` per `.rs` file; all passes (token
/// rules, lock-order, reply, taint, error-codes, shard-safety) read
/// from this cache instead of re-blanking and re-extracting per rule.
pub(crate) struct ParsedFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Raw source text (waivers and topic literals are read from here).
    pub raw: String,
    /// Blanked text (string/comment contents replaced with spaces) with
    /// `#[cfg(test)]` regions additionally blanked.
    pub stripped: String,
    /// Functions extracted from the stripped text (semantic passes skip
    /// test code).
    pub fns: Vec<FnDef>,
}

impl ParsedFile {
    /// Parses one file's content as if it lived at workspace-relative
    /// path `rel`.
    pub fn parse(rel: &str, raw: &str) -> ParsedFile {
        let blanked = crate::token::blank(raw);
        let stripped = strip_test_regions(&blanked);
        let fns = extract_fns(&stripped);
        ParsedFile { rel: rel.to_owned(), raw: raw.to_owned(), stripped, fns }
    }

    /// The crate this file belongs to (`crates/<name>/src/…` → `<name>`).
    pub fn crate_name(&self) -> &str {
        crate_of(&self.rel)
    }
}

/// `crates/<name>/src/...` → `<name>`; anything else gets the path's
/// second segment or the whole path.
pub(crate) fn crate_of(rel: &str) -> &str {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name,
        _ => rel,
    }
}

/// A file-scope table shared by the interprocedural passes: a set of
/// crate `src/` prefixes plus individual files inside otherwise
/// out-of-scope crates. The nondet pass's deterministic scope and the
/// block pass's sans-io scope are both instances.
pub(crate) struct Scope {
    /// `crates/<name>/src/` prefixes whose whole tree is in scope.
    pub prefixes: &'static [&'static str],
    /// Individual in-scope files (workspace-relative).
    pub files: &'static [&'static str],
}

impl Scope {
    /// Is `rel` inside this scope?
    pub fn contains(&self, rel: &str) -> bool {
        self.prefixes.iter().any(|p| rel.starts_with(p)) || self.files.contains(&rel)
    }
}

/// Waiver lookup on raw lines: `Some(justified?)` if a `// flux-lint:
/// allow(<rule>)` annotation (the full `token`) covers `line` — on the
/// line itself or up to `reach` lines above — `None` otherwise.
/// Justified means real words follow the token: at least 8 alphanumeric
/// characters of explanation, so `allow(x) — see above` cannot pass as
/// a justification. Shared by every pass whose waivers are mandatory-
/// justification (nondet, block, hotalloc).
pub(crate) fn waiver_status(
    raw_lines: &[&str],
    line: usize,
    token: &str,
    reach: usize,
) -> Option<bool> {
    let lo = line.saturating_sub(reach + 1);
    for k in (lo..line).rev() {
        let Some(l) = raw_lines.get(k) else { continue };
        if let Some(pos) = l.find(token) {
            let after = l[pos + token.len()..]
                .trim_start_matches([' ', '—', '-', ':', '–'])
                .trim();
            return Some(after.chars().filter(|c| c.is_alphanumeric()).count() >= 8);
        }
    }
    None
}

/// `crate::fn` part of a definition key, for diagnostics.
pub(crate) fn display_key(key: &str) -> &str {
    key.split('@').next().unwrap_or(key)
}

/// Per-definition function index shared by the interprocedural passes
/// (nondet, block, hotalloc). Functions are keyed per *definition*
/// (`crate::name@file#i`) so trait impls sharing a name — `run_scripts`
/// on the sim and live transports — never merge their classification. A
/// call edge resolves to the unique same-file definition if there is
/// one, else to the unique crate-wide definition; an ambiguous name
/// resolves to nothing and is treated clean (false negatives over false
/// positives, like every semantic lint here).
pub(crate) struct DefIndex {
    /// Function names per crate, for [`calls_in`].
    crate_fns: std::collections::BTreeMap<String, std::collections::BTreeSet<String>>,
    /// (crate, fn name) → [(defining file, definition key)].
    by_name: std::collections::BTreeMap<(String, String), Vec<(String, String)>>,
}

impl DefIndex {
    /// The definition key of function `i` named `name` in `rel`.
    pub fn key(crate_name: &str, name: &str, rel: &str, i: usize) -> String {
        format!("{crate_name}::{name}@{rel}#{i}")
    }

    /// Builds the index over the shared parsed-file cache.
    pub fn build(files: &[ParsedFile]) -> DefIndex {
        let mut crate_fns: std::collections::BTreeMap<_, std::collections::BTreeSet<String>> =
            std::collections::BTreeMap::new();
        let mut by_name: std::collections::BTreeMap<(String, String), Vec<(String, String)>> =
            std::collections::BTreeMap::new();
        for pf in files {
            let crate_name = pf.crate_name().to_owned();
            crate_fns
                .entry(crate_name.clone())
                .or_default()
                .extend(pf.fns.iter().map(|f| f.name.clone()));
            for (i, f) in pf.fns.iter().enumerate() {
                let key = DefIndex::key(&crate_name, &f.name, &pf.rel, i);
                by_name
                    .entry((crate_name.clone(), f.name.clone()))
                    .or_default()
                    .push((pf.rel.clone(), key));
            }
        }
        DefIndex { crate_fns, by_name }
    }

    /// Resolves a call to `name` in crate `krate` from `from_file` to a
    /// definition key, or `None` if ambiguous or unknown.
    pub fn resolve(&self, krate: &str, name: &str, from_file: &str) -> Option<String> {
        let cands = self.by_name.get(&(krate.to_owned(), name.to_owned()))?;
        let mut same_file = cands.iter().filter(|(rel, _)| rel == from_file);
        match (same_file.next(), same_file.next()) {
            (Some((_, key)), None) => Some(key.clone()),
            (None, _) if cands.len() == 1 => Some(cands[0].1.clone()),
            _ => None,
        }
    }

    /// Call edges out of one function: same-crate bare/`self.` calls
    /// plus cross-crate `flux_<crate>::…` qualified calls, resolved to
    /// `(definition key, 1-based call-site line)` pairs.
    pub fn edges(&self, pf: &ParsedFile, f: &FnDef) -> Vec<(String, usize)> {
        let crate_name = pf.crate_name();
        let body = &pf.stripped[f.body.0..f.body.1];
        let mut edges = Vec::new();
        if let Some(fn_names) = self.crate_fns.get(crate_name) {
            for callee in calls_in(body, fn_names) {
                let Some(callee_key) = self.resolve(crate_name, &callee, &pf.rel) else {
                    continue;
                };
                let at = body.find(&format!("{callee}(")).unwrap_or(0);
                edges.push((callee_key, line_of(&pf.stripped, f.body.0 + at)));
            }
        }
        for (callee_crate, callee_name, at) in qualified_calls(body) {
            let Some(callee_key) = self.resolve(&callee_crate, &callee_name, &pf.rel) else {
                continue;
            };
            edges.push((callee_key, line_of(&pf.stripped, f.body.0 + at)));
        }
        edges
    }
}

/// Cross-crate qualified calls: `flux_<crate>::…::name(` →
/// `(crate, name, byte offset)` for resolution and call-site lines.
pub(crate) fn qualified_calls(body: &str) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = body[from..].find("flux_") {
        let abs = from + p;
        from = abs + 5;
        // Parse `flux_xyz::seg::…::name(`.
        let rest = &body[abs..];
        let Some(path_end) = rest.find(|c: char| {
            !(c.is_ascii_alphanumeric() || c == '_' || c == ':')
        }) else {
            continue;
        };
        if rest.as_bytes().get(path_end) != Some(&b'(') {
            continue;
        }
        let path = &rest[..path_end];
        let mut segs = path.split("::");
        let Some(krate) = segs.next().and_then(|s| s.strip_prefix("flux_")) else { continue };
        let Some(name) = path.rsplit("::").next() else { continue };
        if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            continue; // type constructors / enum variants, not fn calls
        }
        // Crate dirs use `-` only for flux-mc / flux-lint; plain names
        // (wire, kvs, …) round-trip unchanged.
        let dir = if krate.contains('_') { krate.replace('_', "-") } else { krate.to_owned() };
        out.push((dir, name.to_owned(), abs));
    }
    out
}

/// Skips the `//` markers that blanked line comments keep (the comment
/// *text* is spaces, but the marker survives so raw/blanked offsets
/// stay aligned). Statement heads that begin with comment lines must
/// look past them before classifying.
pub(crate) fn skip_comment_markers(head: &str) -> &str {
    let mut t = head.trim_start();
    while let Some(rest) = t.strip_prefix("//") {
        t = rest.trim_start();
    }
    t
}

/// `let g = ...` → `Some("g")`; `let _ = ...` and non-let heads → `None`.
/// Blanked line comments keep their `//` marker, so leading comment
/// lines are skipped before the `let` is looked for.
pub(crate) fn binding_of(head: &str) -> Option<&str> {
    let t = skip_comment_markers(head);
    let rest = t.strip_prefix("let ")?;
    let name = rest.split(['=', ':']).next()?.trim().trim_start_matches("mut ").trim();
    (!name.is_empty() && name != "_" && !name.starts_with('_') && !name.contains('('))
        .then_some(name)
}

/// The last field/binding identifier of the receiver expression that
/// `text` ends with: `self.inner.readers` → `readers`.
pub(crate) fn receiver_name(text: &str) -> Option<String> {
    let bytes = text.as_bytes();
    let mut end = bytes.len();
    while end > 0 && !(bytes[end - 1].is_ascii_alphanumeric() || bytes[end - 1] == b'_') {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    let name = &text[start..end];
    (!name.is_empty() && name != "self" && !name.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .then(|| name.to_owned())
}

/// Names from `fn_names` that `text` calls (`name(`, `self.name(`,
/// `Self::name(`).
pub(crate) fn calls_in(text: &str, fn_names: &std::collections::BTreeSet<String>) -> Vec<String> {
    let mut out = Vec::new();
    for name in fn_names {
        let pat = format!("{name}(");
        let mut from = 0;
        while let Some(p) = text[from..].find(&pat) {
            let abs = from + p;
            let bytes = text.as_bytes();
            let before_ok = abs == 0 || {
                let b = bytes[abs - 1];
                !(b.is_ascii_alphanumeric() || b == b'_')
            };
            // A dotted call must be on `self`: `engine.run()` is some
            // *other* type's method that happens to share a name with a
            // function in this crate, not a call edge to it.
            let self_ok = abs == 0 || bytes[abs - 1] != b'.' || {
                let owner_end = abs - 1;
                let mut owner_start = owner_end;
                while owner_start > 0
                    && (bytes[owner_start - 1].is_ascii_alphanumeric()
                        || bytes[owner_start - 1] == b'_')
                {
                    owner_start -= 1;
                }
                &text[owner_start..owner_end] == "self"
            };
            // Skip definitions (`fn name(`) — only call sites count.
            let is_def = text[..abs].trim_end().ends_with("fn");
            if before_ok && self_ok && !is_def {
                out.push(name.clone());
                break;
            }
            from = abs + pat.len();
        }
    }
    out
}

/// One function found in a file.
pub(crate) struct FnDef {
    /// The function's name.
    pub name: String,
    /// Signature text (everything from `fn` to the body's `{`).
    pub sig: String,
    /// Byte span of the body *interior* (between the braces).
    pub body: (usize, usize),
}

/// Returns the position just past the delimiter matching the opener at
/// `open` (any of `(`/`[`/`{`), or `None` if unbalanced. Operates on
/// blanked text, so every delimiter is structural.
pub(crate) fn match_delim(bytes: &[u8], open: usize) -> Option<usize> {
    let (o, c) = match bytes[open] {
        b'(' => (b'(', b')'),
        b'[' => (b'[', b']'),
        b'{' => (b'{', b'}'),
        _ => return None,
    };
    let mut depth = 0usize;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        if b == o {
            depth += 1;
        } else if b == c {
            depth -= 1;
            if depth == 0 {
                return Some(k + 1);
            }
        }
    }
    None
}

/// True if `text[idx..]` starts a word-boundary occurrence of `word`.
fn word_at(bytes: &[u8], idx: usize, word: &str) -> bool {
    if !bytes[idx..].starts_with(word.as_bytes()) {
        return false;
    }
    let before_ok = idx == 0 || !(bytes[idx - 1].is_ascii_alphanumeric() || bytes[idx - 1] == b'_');
    let after = idx + word.len();
    let after_ok =
        after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
    before_ok && after_ok
}

/// Byte offset of the first word-boundary occurrence of `word`.
pub(crate) fn find_word(text: &str, word: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    (0..bytes.len().saturating_sub(word.len() - 1)).find(|&i| word_at(bytes, i, word))
}

/// Extracts every `fn` with a body from blanked source text. Trait
/// method declarations (ending in `;`) are skipped.
pub(crate) fn extract_fns(blanked: &str) -> Vec<FnDef> {
    let bytes = blanked.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 3 < bytes.len() {
        if !word_at(bytes, i, "fn") {
            i += 1;
            continue;
        }
        // Name runs from after `fn ` to the `(` or `<` of the signature.
        let name_start = i + 3;
        let Some(rel) = blanked[name_start..].find(['(', '<']) else { break };
        let name = blanked[name_start..name_start + rel].trim().to_owned();
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            i += 2;
            continue;
        }
        // The body `{` is the first top-level brace after the signature;
        // a `;` first means a bodiless declaration.
        let mut j = name_start + rel;
        let mut body = None;
        while j < bytes.len() {
            match bytes[j] {
                b'(' | b'[' => match match_delim(bytes, j) {
                    Some(end) => j = end,
                    None => break,
                },
                b'<' | b'>' | b'-' => j += 1, // generics / return arrow
                b';' => break,
                b'{' => {
                    if let Some(end) = match_delim(bytes, j) {
                        body = Some((j + 1, end - 1));
                    }
                    break;
                }
                _ => j += 1,
            }
        }
        if let Some(body) = body {
            out.push(FnDef { name, sig: blanked[i..body.0 - 1].to_owned(), body });
            i = body.0;
        } else {
            i = j.max(i + 2);
        }
    }
    out
}

/// One statement inside a block: interleaved text segments and brace
/// blocks (`segs[0] block[0] segs[1] block[1] … segs[n]`).
pub(crate) struct Stmt {
    /// Text segments outside the statement's top-level blocks.
    pub segs: Vec<String>,
    /// Byte spans (interiors) of the statement's top-level blocks.
    pub blocks: Vec<(usize, usize)>,
    /// Byte span of the whole statement.
    pub full: (usize, usize),
}

impl Stmt {
    /// The statement's leading text, trimmed.
    pub fn head(&self) -> &str {
        self.segs.first().map(|s| s.trim_start()).unwrap_or("")
    }

    /// The statement's text with nested top-level block interiors
    /// blanked out (offsets preserved): tokens inside a nested block
    /// belong to the recursive walk, not to this statement, while
    /// tokens inside parens (closure bodies in call arguments) stay.
    pub fn own_text(&self, blanked: &str) -> String {
        let mut bytes = blanked.as_bytes()[self.full.0..self.full.1].to_vec();
        for &(a, b) in &self.blocks {
            for byte in &mut bytes[a - self.full.0..b - self.full.0] {
                *byte = b' ';
            }
        }
        String::from_utf8(bytes).unwrap_or_default()
    }
}

/// Keywords that make a brace block end a statement when it appears in
/// statement position (`if … { }`, `match … { }`, …).
const CONTROL: &[&str] = &["if", "match", "for", "while", "loop", "unsafe", "else"];

/// Splits a block interior into statements. Braces nested inside parens
/// or brackets (closure bodies in call arguments, array literals) are
/// treated as text, not structure.
pub(crate) fn split_stmts(blanked: &str, span: (usize, usize)) -> Vec<Stmt> {
    let bytes = blanked.as_bytes();
    let mut out: Vec<Stmt> = Vec::new();
    let mut i = span.0;
    let mut stmt_start = span.0;
    let mut segs: Vec<String> = Vec::new();
    let mut blocks: Vec<(usize, usize)> = Vec::new();
    let mut seg_start = span.0;

    let flush = |out: &mut Vec<Stmt>,
                 segs: &mut Vec<String>,
                 blocks: &mut Vec<(usize, usize)>,
                 stmt_start: &mut usize,
                 seg_start: &mut usize,
                 end: usize| {
        let mut segs = std::mem::take(segs);
        segs.push(blanked[*seg_start..end].to_owned());
        let blocks = std::mem::take(blocks);
        if !segs.iter().all(|s| s.trim().is_empty()) || !blocks.is_empty() {
            out.push(Stmt { segs, blocks, full: (*stmt_start, end) });
        }
        *stmt_start = end;
        *seg_start = end;
    };

    while i < span.1 {
        match bytes[i] {
            b'(' | b'[' => {
                // Opaque group: skip it whole (braces inside are text).
                i = match match_delim(bytes, i) {
                    Some(end) => end,
                    None => span.1,
                };
            }
            b';' => {
                i += 1;
                flush(&mut out, &mut segs, &mut blocks, &mut stmt_start, &mut seg_start, i);
            }
            b'{' => {
                segs.push(blanked[seg_start..i].to_owned());
                let end = match match_delim(bytes, i) {
                    Some(end) => end,
                    None => span.1,
                };
                blocks.push((i + 1, end.saturating_sub(1)));
                i = end;
                seg_start = i;
                // Does this block end the statement? Only in statement
                // position (head starts with a control keyword or the
                // statement is a bare/label block) and when no `else`
                // continues it.
                let head = skip_comment_markers(&segs[0]);
                let control = head.is_empty()
                    || CONTROL.iter().any(|k| {
                        head.starts_with(k)
                            && head[k.len()..].chars().next().is_none_or(|c| !c.is_alphanumeric())
                    });
                let mut k = i;
                while k < span.1 && (bytes[k] as char).is_whitespace() {
                    k += 1;
                }
                let else_follows = k + 4 <= span.1 && word_at(bytes, k, "else");
                if control && !else_follows {
                    flush(&mut out, &mut segs, &mut blocks, &mut stmt_start, &mut seg_start, i);
                }
            }
            _ => i += 1,
        }
    }
    if stmt_start < span.1 {
        flush(&mut out, &mut segs, &mut blocks, &mut stmt_start, &mut seg_start, span.1);
    }
    out
}

/// Blanks `#[cfg(test)]` regions out of already-blanked text (line
/// structure preserved). The semantic lints skip test code: tests may
/// deliberately construct lock inversions or reply-less dispatches to
/// assert on them.
pub(crate) fn strip_test_regions(blanked: &str) -> String {
    let mut out = String::with_capacity(blanked.len());
    let mut in_test = false;
    let mut depth: i32 = 0;
    let mut entered = false;
    for line in blanked.split_inclusive('\n') {
        if !in_test && line.contains("#[cfg(test)]") {
            in_test = true;
            depth = 0;
            entered = false;
        }
        if !in_test {
            out.push_str(line);
            continue;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        for c in line.chars() {
            out.push(if c == '\n' { '\n' } else { ' ' });
        }
        if entered && depth <= 0 {
            in_test = false; // region closed on this line
        } else if !entered && line.trim_end().ends_with(';') {
            in_test = false; // `#[cfg(test)] mod x;` — out-of-line module
        }
    }
    out
}

/// 1-based line number of byte offset `idx`.
pub(crate) fn line_of(text: &str, idx: usize) -> usize {
    text.as_bytes()[..idx.min(text.len())].iter().filter(|&&b| b == b'\n').count() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_fns_and_bodies() {
        let src = "impl Foo {\n    fn one(&self) -> u32 {\n        1\n    }\n    fn two(&self, x: Vec<u8>) {\n        if x.is_empty() {\n            return;\n        }\n    }\n    fn decl_only(&self);\n}\n";
        let fns = extract_fns(src);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["one", "two"]);
        assert!(src[fns[1].body.0..fns[1].body.1].contains("is_empty"));
    }

    #[test]
    fn splits_statements_with_blocks() {
        let src = "{ let a = 1; if a > 0 { b(); } else { c(); } match a { 1 => {} _ => {} } d(); }";
        let stmts = split_stmts(src, (1, src.len() - 1));
        assert_eq!(stmts.len(), 4, "{:?}", stmts.iter().map(|s| s.head()).collect::<Vec<_>>());
        assert!(stmts[1].head().starts_with("if"));
        assert_eq!(stmts[1].blocks.len(), 2);
        assert!(stmts[2].head().starts_with("match"));
        assert!(stmts[3].head().starts_with("d()"));
    }

    #[test]
    fn closure_braces_in_call_args_are_opaque() {
        let src = "{ spawn(move || { inner(); }); after(); }";
        let stmts = split_stmts(src, (1, src.len() - 1));
        assert_eq!(stmts.len(), 2);
        assert!(stmts[0].blocks.is_empty(), "closure body leaked as a block");
    }

    #[test]
    fn let_with_tail_match_waits_for_semicolon() {
        let src = "{ let x = match y { A => 1, B => 2 }; z(); }";
        let stmts = split_stmts(src, (1, src.len() - 1));
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0].blocks.len(), 1);
        assert!(stmts[0].head().starts_with("let x"));
    }

    #[test]
    fn word_boundaries() {
        assert_eq!(find_word("x; return;", "return"), Some(3));
        assert_eq!(find_word("returns;", "return"), None);
        assert_eq!(find_word("my_return", "return"), None);
    }
}
