//! AST-lite scaffolding shared by the semantic lints: function
//! extraction, brace matching, and statement splitting over blanked
//! source text (see [`crate::token::blank`]).
//!
//! This is deliberately not a full parser. Blanked text has no brace or
//! paren noise from strings and comments, so delimiter matching is
//! exact; statement structure is recovered with a small set of rules
//! that cover the workspace's (rustfmt-shaped) code. The semantic lints
//! built on top are tuned to fail toward *false negatives*, never false
//! positives: anything the scaffolding cannot classify is treated as
//! plain text.

/// One source file, parsed once and shared by every pass. The tree
/// walk builds one `ParsedFile` per `.rs` file; all passes (token
/// rules, lock-order, reply, taint, error-codes, shard-safety) read
/// from this cache instead of re-blanking and re-extracting per rule.
pub(crate) struct ParsedFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Raw source text (waivers and topic literals are read from here).
    pub raw: String,
    /// Blanked text (string/comment contents replaced with spaces) with
    /// `#[cfg(test)]` regions additionally blanked.
    pub stripped: String,
    /// Functions extracted from the stripped text (semantic passes skip
    /// test code).
    pub fns: Vec<FnDef>,
}

impl ParsedFile {
    /// Parses one file's content as if it lived at workspace-relative
    /// path `rel`.
    pub fn parse(rel: &str, raw: &str) -> ParsedFile {
        let blanked = crate::token::blank(raw);
        let stripped = strip_test_regions(&blanked);
        let fns = extract_fns(&stripped);
        ParsedFile { rel: rel.to_owned(), raw: raw.to_owned(), stripped, fns }
    }

    /// The crate this file belongs to (`crates/<name>/src/…` → `<name>`).
    pub fn crate_name(&self) -> &str {
        crate_of(&self.rel)
    }
}

/// `crates/<name>/src/...` → `<name>`; anything else gets the path's
/// second segment or the whole path.
pub(crate) fn crate_of(rel: &str) -> &str {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name,
        _ => rel,
    }
}

/// `let g = ...` → `Some("g")`; `let _ = ...` and non-let heads → `None`.
/// Blanked line comments keep their `//` marker, so leading comment
/// lines are skipped before the `let` is looked for.
pub(crate) fn binding_of(head: &str) -> Option<&str> {
    let mut t = head.trim_start();
    while let Some(rest) = t.strip_prefix("//") {
        t = rest.trim_start();
    }
    let rest = t.strip_prefix("let ")?;
    let name = rest.split(['=', ':']).next()?.trim().trim_start_matches("mut ").trim();
    (!name.is_empty() && name != "_" && !name.starts_with('_') && !name.contains('('))
        .then_some(name)
}

/// The last field/binding identifier of the receiver expression that
/// `text` ends with: `self.inner.readers` → `readers`.
pub(crate) fn receiver_name(text: &str) -> Option<String> {
    let bytes = text.as_bytes();
    let mut end = bytes.len();
    while end > 0 && !(bytes[end - 1].is_ascii_alphanumeric() || bytes[end - 1] == b'_') {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    let name = &text[start..end];
    (!name.is_empty() && name != "self" && !name.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .then(|| name.to_owned())
}

/// Names from `fn_names` that `text` calls (`name(`, `self.name(`,
/// `Self::name(`).
pub(crate) fn calls_in(text: &str, fn_names: &std::collections::BTreeSet<String>) -> Vec<String> {
    let mut out = Vec::new();
    for name in fn_names {
        let pat = format!("{name}(");
        let mut from = 0;
        while let Some(p) = text[from..].find(&pat) {
            let abs = from + p;
            let bytes = text.as_bytes();
            let before_ok = abs == 0 || {
                let b = bytes[abs - 1];
                !(b.is_ascii_alphanumeric() || b == b'_')
            };
            // A dotted call must be on `self`: `engine.run()` is some
            // *other* type's method that happens to share a name with a
            // function in this crate, not a call edge to it.
            let self_ok = abs == 0 || bytes[abs - 1] != b'.' || {
                let owner_end = abs - 1;
                let mut owner_start = owner_end;
                while owner_start > 0
                    && (bytes[owner_start - 1].is_ascii_alphanumeric()
                        || bytes[owner_start - 1] == b'_')
                {
                    owner_start -= 1;
                }
                &text[owner_start..owner_end] == "self"
            };
            // Skip definitions (`fn name(`) — only call sites count.
            let is_def = text[..abs].trim_end().ends_with("fn");
            if before_ok && self_ok && !is_def {
                out.push(name.clone());
                break;
            }
            from = abs + pat.len();
        }
    }
    out
}

/// One function found in a file.
pub(crate) struct FnDef {
    /// The function's name.
    pub name: String,
    /// Signature text (everything from `fn` to the body's `{`).
    pub sig: String,
    /// Byte span of the body *interior* (between the braces).
    pub body: (usize, usize),
}

/// Returns the position just past the delimiter matching the opener at
/// `open` (any of `(`/`[`/`{`), or `None` if unbalanced. Operates on
/// blanked text, so every delimiter is structural.
pub(crate) fn match_delim(bytes: &[u8], open: usize) -> Option<usize> {
    let (o, c) = match bytes[open] {
        b'(' => (b'(', b')'),
        b'[' => (b'[', b']'),
        b'{' => (b'{', b'}'),
        _ => return None,
    };
    let mut depth = 0usize;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        if b == o {
            depth += 1;
        } else if b == c {
            depth -= 1;
            if depth == 0 {
                return Some(k + 1);
            }
        }
    }
    None
}

/// True if `text[idx..]` starts a word-boundary occurrence of `word`.
fn word_at(bytes: &[u8], idx: usize, word: &str) -> bool {
    if !bytes[idx..].starts_with(word.as_bytes()) {
        return false;
    }
    let before_ok = idx == 0 || !(bytes[idx - 1].is_ascii_alphanumeric() || bytes[idx - 1] == b'_');
    let after = idx + word.len();
    let after_ok =
        after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
    before_ok && after_ok
}

/// Byte offset of the first word-boundary occurrence of `word`.
pub(crate) fn find_word(text: &str, word: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    (0..bytes.len().saturating_sub(word.len() - 1)).find(|&i| word_at(bytes, i, word))
}

/// Extracts every `fn` with a body from blanked source text. Trait
/// method declarations (ending in `;`) are skipped.
pub(crate) fn extract_fns(blanked: &str) -> Vec<FnDef> {
    let bytes = blanked.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 3 < bytes.len() {
        if !word_at(bytes, i, "fn") {
            i += 1;
            continue;
        }
        // Name runs from after `fn ` to the `(` or `<` of the signature.
        let name_start = i + 3;
        let Some(rel) = blanked[name_start..].find(['(', '<']) else { break };
        let name = blanked[name_start..name_start + rel].trim().to_owned();
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            i += 2;
            continue;
        }
        // The body `{` is the first top-level brace after the signature;
        // a `;` first means a bodiless declaration.
        let mut j = name_start + rel;
        let mut body = None;
        while j < bytes.len() {
            match bytes[j] {
                b'(' | b'[' => match match_delim(bytes, j) {
                    Some(end) => j = end,
                    None => break,
                },
                b'<' | b'>' | b'-' => j += 1, // generics / return arrow
                b';' => break,
                b'{' => {
                    if let Some(end) = match_delim(bytes, j) {
                        body = Some((j + 1, end - 1));
                    }
                    break;
                }
                _ => j += 1,
            }
        }
        if let Some(body) = body {
            out.push(FnDef { name, sig: blanked[i..body.0 - 1].to_owned(), body });
            i = body.0;
        } else {
            i = j.max(i + 2);
        }
    }
    out
}

/// One statement inside a block: interleaved text segments and brace
/// blocks (`segs[0] block[0] segs[1] block[1] … segs[n]`).
pub(crate) struct Stmt {
    /// Text segments outside the statement's top-level blocks.
    pub segs: Vec<String>,
    /// Byte spans (interiors) of the statement's top-level blocks.
    pub blocks: Vec<(usize, usize)>,
    /// Byte span of the whole statement.
    pub full: (usize, usize),
}

impl Stmt {
    /// The statement's leading text, trimmed.
    pub fn head(&self) -> &str {
        self.segs.first().map(|s| s.trim_start()).unwrap_or("")
    }
}

/// Keywords that make a brace block end a statement when it appears in
/// statement position (`if … { }`, `match … { }`, …).
const CONTROL: &[&str] = &["if", "match", "for", "while", "loop", "unsafe", "else"];

/// Splits a block interior into statements. Braces nested inside parens
/// or brackets (closure bodies in call arguments, array literals) are
/// treated as text, not structure.
pub(crate) fn split_stmts(blanked: &str, span: (usize, usize)) -> Vec<Stmt> {
    let bytes = blanked.as_bytes();
    let mut out: Vec<Stmt> = Vec::new();
    let mut i = span.0;
    let mut stmt_start = span.0;
    let mut segs: Vec<String> = Vec::new();
    let mut blocks: Vec<(usize, usize)> = Vec::new();
    let mut seg_start = span.0;

    let flush = |out: &mut Vec<Stmt>,
                 segs: &mut Vec<String>,
                 blocks: &mut Vec<(usize, usize)>,
                 stmt_start: &mut usize,
                 seg_start: &mut usize,
                 end: usize| {
        let mut segs = std::mem::take(segs);
        segs.push(blanked[*seg_start..end].to_owned());
        let blocks = std::mem::take(blocks);
        if !segs.iter().all(|s| s.trim().is_empty()) || !blocks.is_empty() {
            out.push(Stmt { segs, blocks, full: (*stmt_start, end) });
        }
        *stmt_start = end;
        *seg_start = end;
    };

    while i < span.1 {
        match bytes[i] {
            b'(' | b'[' => {
                // Opaque group: skip it whole (braces inside are text).
                i = match match_delim(bytes, i) {
                    Some(end) => end,
                    None => span.1,
                };
            }
            b';' => {
                i += 1;
                flush(&mut out, &mut segs, &mut blocks, &mut stmt_start, &mut seg_start, i);
            }
            b'{' => {
                segs.push(blanked[seg_start..i].to_owned());
                let end = match match_delim(bytes, i) {
                    Some(end) => end,
                    None => span.1,
                };
                blocks.push((i + 1, end.saturating_sub(1)));
                i = end;
                seg_start = i;
                // Does this block end the statement? Only in statement
                // position (head starts with a control keyword or the
                // statement is a bare/label block) and when no `else`
                // continues it.
                let head = segs[0].trim_start();
                let control = head.is_empty()
                    || CONTROL.iter().any(|k| {
                        head.starts_with(k)
                            && head[k.len()..].chars().next().is_none_or(|c| !c.is_alphanumeric())
                    });
                let mut k = i;
                while k < span.1 && (bytes[k] as char).is_whitespace() {
                    k += 1;
                }
                let else_follows = k + 4 <= span.1 && word_at(bytes, k, "else");
                if control && !else_follows {
                    flush(&mut out, &mut segs, &mut blocks, &mut stmt_start, &mut seg_start, i);
                }
            }
            _ => i += 1,
        }
    }
    if stmt_start < span.1 {
        flush(&mut out, &mut segs, &mut blocks, &mut stmt_start, &mut seg_start, span.1);
    }
    out
}

/// Blanks `#[cfg(test)]` regions out of already-blanked text (line
/// structure preserved). The semantic lints skip test code: tests may
/// deliberately construct lock inversions or reply-less dispatches to
/// assert on them.
pub(crate) fn strip_test_regions(blanked: &str) -> String {
    let mut out = String::with_capacity(blanked.len());
    let mut in_test = false;
    let mut depth: i32 = 0;
    let mut entered = false;
    for line in blanked.split_inclusive('\n') {
        if !in_test && line.contains("#[cfg(test)]") {
            in_test = true;
            depth = 0;
            entered = false;
        }
        if !in_test {
            out.push_str(line);
            continue;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        for c in line.chars() {
            out.push(if c == '\n' { '\n' } else { ' ' });
        }
        if entered && depth <= 0 {
            in_test = false; // region closed on this line
        } else if !entered && line.trim_end().ends_with(';') {
            in_test = false; // `#[cfg(test)] mod x;` — out-of-line module
        }
    }
    out
}

/// 1-based line number of byte offset `idx`.
pub(crate) fn line_of(text: &str, idx: usize) -> usize {
    text.as_bytes()[..idx.min(text.len())].iter().filter(|&&b| b == b'\n').count() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_fns_and_bodies() {
        let src = "impl Foo {\n    fn one(&self) -> u32 {\n        1\n    }\n    fn two(&self, x: Vec<u8>) {\n        if x.is_empty() {\n            return;\n        }\n    }\n    fn decl_only(&self);\n}\n";
        let fns = extract_fns(src);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["one", "two"]);
        assert!(src[fns[1].body.0..fns[1].body.1].contains("is_empty"));
    }

    #[test]
    fn splits_statements_with_blocks() {
        let src = "{ let a = 1; if a > 0 { b(); } else { c(); } match a { 1 => {} _ => {} } d(); }";
        let stmts = split_stmts(src, (1, src.len() - 1));
        assert_eq!(stmts.len(), 4, "{:?}", stmts.iter().map(|s| s.head()).collect::<Vec<_>>());
        assert!(stmts[1].head().starts_with("if"));
        assert_eq!(stmts[1].blocks.len(), 2);
        assert!(stmts[2].head().starts_with("match"));
        assert!(stmts[3].head().starts_with("d()"));
    }

    #[test]
    fn closure_braces_in_call_args_are_opaque() {
        let src = "{ spawn(move || { inner(); }); after(); }";
        let stmts = split_stmts(src, (1, src.len() - 1));
        assert_eq!(stmts.len(), 2);
        assert!(stmts[0].blocks.is_empty(), "closure body leaked as a block");
    }

    #[test]
    fn let_with_tail_match_waits_for_semicolon() {
        let src = "{ let x = match y { A => 1, B => 2 }; z(); }";
        let stmts = split_stmts(src, (1, src.len() - 1));
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0].blocks.len(), 1);
        assert!(stmts[0].head().starts_with("let x"));
    }

    #[test]
    fn word_boundaries() {
        assert_eq!(find_word("x; return;", "return"), Some(3));
        assert_eq!(find_word("returns;", "return"), None);
        assert_eq!(find_word("my_return", "return"), None);
    }
}
