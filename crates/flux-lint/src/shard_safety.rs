//! Shard-safety analysis for rank-addressed sends.
//!
//! Since the KVS was sharded across multiple masters, the hot path
//! sends `kvs.shard.push` / `kvs.load` requests *directly to a rank*
//! (`ModuleCtx::request_to_rank`), bypassing the TBON's parent-pointer
//! routing. A rank-addressed request has failure modes upstream routing
//! never sees: the target can be blacked out (the reply never comes),
//! or the rank may not be the shard's master anymore and answers EINVAL
//! (the permanent wrong-master code) — retrying the same payload at the
//! same rank can never succeed. The repo's discipline is the
//! *join-table pattern*:
//!
//! 1. **Register** (S1): the send's `MsgId` is bound and inserted into
//!    a join table in the same function (`let id =
//!    ctx.request_to_rank(..); self.push_joins.insert(id, ..)`), so the
//!    reply can be matched and the part can be re-sent.
//! 2. **Discriminate** (S2): every response-path consumption of the
//!    join (a `.remove(` on the table in a statement that inspects the
//!    reply) must compare against an `errnum::` code — the permanent
//!    EINVAL wrong-master reply must be told apart from transient
//!    blackout failures, or the sender retries a validation failure
//!    forever (or worse, fails a fence over a blip). A table nobody
//!    consumes is flagged at its insert site.
//! 3. **Retry** (S3): some function inserting into the table must be
//!    reachable (same-crate call graph) from a heartbeat handler — the
//!    idempotent re-send pump that makes a lost reply a delay instead
//!    of a deadlock.
//!
//! Statement-level granularity on S2 is deliberate: `handle_response`
//! consumes *all* join tables in one function, so a function-level
//! check would let one table's EINVAL handling vouch for another's.
//! Cleanup removes (forgetting an id before re-sending) don't inspect
//! the reply and carry no obligation.
//!
//! Waive with `// flux-lint: allow(shard-safety)` on or just above the
//! flagged line.

use crate::analysis::{
    binding_of, calls_in, line_of, receiver_name, split_stmts, waiver_status, ParsedFile,
};
use crate::{Rule, Violation};
use std::collections::{BTreeMap, BTreeSet};

/// Waiver comment token (checked on raw lines).
const WAIVER: &str = "flux-lint: allow(shard-safety)";

/// Method tokens that mark a statement as a shard hot-path send.
const HOT_METHODS: &[&str] = &["ShardPush", "KvsMethod::Load"];

/// One `request_to_rank` site.
struct Send {
    file: usize, // index into `files`
    line: usize,
    binding: Option<String>,
    fn_name: String,
    fn_idx: usize, // index into that file's fns
}

/// One `.remove(` on a join table.
struct Consume {
    file: usize,
    line: usize,
    /// Full text searched for the errnum discrimination (the statement
    /// plus a few followers in the same block).
    context: String,
}

/// Runs the pass over the shared parsed-file cache, one crate at a time.
pub(crate) fn check_shard_safety(files: &[ParsedFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut by_crate: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, pf) in files.iter().enumerate() {
        by_crate.entry(pf.crate_name()).or_default().push(i);
    }
    for idxs in by_crate.values() {
        check_crate(files, idxs, &mut out);
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out
}

fn check_crate(files: &[ParsedFile], idxs: &[usize], out: &mut Vec<Violation>) {
    // Find the hot-path sends first; everything else is lazy.
    let mut sends: Vec<Send> = Vec::new();
    for &fi in idxs {
        let pf = &files[fi];
        if !pf.stripped.contains("request_to_rank") {
            continue;
        }
        for (fni, f) in pf.fns.iter().enumerate() {
            collect_sends(&pf.stripped, f.body, fi, fni, &f.name, &mut sends);
        }
    }
    if sends.is_empty() {
        return;
    }

    // S1: each send binds its id and registers it in a join table.
    // `tables` maps table name → (insert site, inserting functions).
    let mut tables: BTreeMap<String, ((usize, usize), BTreeSet<String>)> = BTreeMap::new();
    for s in &sends {
        let pf = &files[s.file];
        let Some(binding) = &s.binding else {
            push_unless_waived(
                out,
                pf,
                s.line,
                "rank-addressed send discards its request id — bind it and register it \
                 in a retry join table"
                    .to_string(),
            );
            continue;
        };
        let body = &pf.stripped[pf.fns[s.fn_idx].body.0..pf.fns[s.fn_idx].body.1];
        match find_insert(body, binding) {
            Some(table) => {
                let e = tables
                    .entry(table)
                    .or_insert_with(|| ((s.file, s.line), BTreeSet::new()));
                e.1.insert(s.fn_name.clone());
            }
            None => push_unless_waived(out, pf, s.line, format!(
                "request id `{binding}` from a rank-addressed send is never inserted \
                 into a join table — the reply cannot be matched or the part re-sent"
            )),
        }
    }

    // Crate-wide call graph for S3, plus consumption sites for S2.
    let mut fn_names: BTreeSet<String> = BTreeSet::new();
    for &fi in idxs {
        fn_names.extend(files[fi].fns.iter().map(|f| f.name.clone()));
    }
    let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut heartbeat_roots: Vec<String> = Vec::new();
    for &fi in idxs {
        let pf = &files[fi];
        for f in &pf.fns {
            let body = &pf.stripped[f.body.0..f.body.1];
            calls.entry(f.name.clone()).or_default().extend(calls_in(body, &fn_names));
            if f.name.contains("heartbeat") {
                heartbeat_roots.push(f.name.clone());
            }
        }
    }
    let mut reachable: BTreeSet<String> = BTreeSet::new();
    let mut stack = heartbeat_roots;
    while let Some(n) = stack.pop() {
        if reachable.insert(n.clone()) {
            if let Some(cs) = calls.get(&n) {
                stack.extend(cs.iter().cloned());
            }
        }
    }

    for (table, ((sfi, sline), senders)) in &tables {
        // S2: consumption sites must discriminate on errnum.
        let mut consumes: Vec<Consume> = Vec::new();
        for &fi in idxs {
            let pf = &files[fi];
            for f in &pf.fns {
                collect_consumes(&pf.stripped, f.body, fi, table, &mut consumes);
            }
        }
        let reply_consumes: Vec<&Consume> = consumes
            .iter()
            .filter(|c| c.context.contains("is_error") || c.context.contains("msg."))
            .collect();
        if reply_consumes.is_empty() {
            push_unless_waived(out, &files[*sfi], *sline, format!(
                "join table `{table}` registers rank-addressed sends but no response \
                 path consumes it — the EINVAL wrong-master reply is never handled"
            ));
        }
        for c in &reply_consumes {
            if !(c.context.contains("== errnum::") || c.context.contains("!= errnum::")) {
                push_unless_waived(out, &files[c.file], c.line, format!(
                    "reply join `{table}` is consumed without distinguishing the \
                     permanent EINVAL wrong-master code from transient failures — \
                     compare `msg.header.errnum` against `errnum::` before retrying"
                ));
            }
        }

        // S3: a sender must be heartbeat-reachable.
        if !senders.iter().any(|s| reachable.contains(s)) {
            push_unless_waived(out, &files[*sfi], *sline, format!(
                "join table `{table}` has no heartbeat-reachable re-send path — a \
                 reply lost to a blacked-out master stalls the join forever"
            ));
        }
    }
}

/// Records hot-path sends in one block (recursively).
fn collect_sends(
    blanked: &str,
    span: (usize, usize),
    file: usize,
    fn_idx: usize,
    fn_name: &str,
    out: &mut Vec<Send>,
) {
    for stmt in split_stmts(blanked, span) {
        let head = stmt.segs.join(" ");
        if head.contains("request_to_rank") && HOT_METHODS.iter().any(|m| head.contains(m)) {
            // Anchor the diagnostic (and its waiver window) on the send
            // token, not the statement start — the statement span can
            // open lines earlier, on a leading comment.
            let full = &blanked[stmt.full.0..stmt.full.1];
            let at = full.find("request_to_rank").unwrap_or(0);
            out.push(Send {
                file,
                line: line_of(blanked, stmt.full.0 + at),
                binding: binding_of(&head).map(str::to_owned),
                fn_name: fn_name.to_owned(),
                fn_idx,
            });
        }
        for &block in &stmt.blocks {
            collect_sends(blanked, block, file, fn_idx, fn_name, out);
        }
    }
}

/// Finds `<table>.insert(<binding>…)` in a function body and returns
/// the table name.
fn find_insert(body: &str, binding: &str) -> Option<String> {
    let pat = format!(".insert({binding}");
    let mut from = 0;
    while let Some(p) = body[from..].find(&pat) {
        let abs = from + p;
        from = abs + pat.len();
        // The binding must end at a non-identifier char (`id` must not
        // match `.insert(idx`).
        if body[abs + pat.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            continue;
        }
        if let Some(table) = receiver_name(&body[..abs]) {
            return Some(table);
        }
    }
    None
}

/// Records innermost statements whose *head* removes from `table`. The
/// context searched for the errnum discrimination is the statement's
/// full span (nested blocks included) plus the next few statements of
/// the same block, so `let Some(j) = t.remove(&id) …; if msg.header.
/// errnum == …` patterns pass. The follower window stops at the next
/// statement containing a `.remove(` of its own: `handle_response`
/// consumes every join table in sequence, and one table's EINVAL
/// handling must not vouch for the previous table's.
fn collect_consumes(
    blanked: &str,
    span: (usize, usize),
    file: usize,
    table: &str,
    out: &mut Vec<Consume>,
) {
    let pat = format!("{table}.remove(");
    let stmts = split_stmts(blanked, span);
    for (i, stmt) in stmts.iter().enumerate() {
        let head = stmt.segs.join(" ");
        if head_removes(&head, &pat) {
            let mut context = blanked[stmt.full.0..stmt.full.1].to_owned();
            for later in stmts.iter().skip(i + 1).take(6) {
                let text = &blanked[later.full.0..later.full.1];
                if text.contains(".remove(") {
                    break;
                }
                context.push_str(text);
            }
            out.push(Consume { file, line: line_of(blanked, stmt.full.0), context });
        }
        for &block in &stmt.blocks {
            collect_consumes(blanked, block, file, table, out);
        }
    }
}

/// Does `head` contain `<table>.remove(` with a word boundary before
/// the table name (`push_joins` must not match `fence_push_joins`)?
fn head_removes(head: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(p) = head[from..].find(pat) {
        let abs = from + p;
        from = abs + pat.len();
        let boundary = abs == 0 || {
            let b = head.as_bytes()[abs - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if boundary {
            return true;
        }
    }
    false
}

/// Reports `message` unless a waiver covers `line` (any annotation
/// counts: the join-table obligations are structural, so this pass does
/// not demand a justification text).
fn push_unless_waived(out: &mut Vec<Violation>, pf: &ParsedFile, line: usize, message: String) {
    let raw_lines: Vec<&str> = pf.raw.lines().collect();
    if waiver_status(&raw_lines, line, WAIVER, 4).is_none() {
        out.push(Violation { file: pf.rel.clone(), line, rule: Rule::ShardSafety, message });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        check_shard_safety(&[ParsedFile::parse("crates/kvs/src/demo.rs", src)])
    }

    const GOOD: &str = r#"
impl M {
    fn send_push(&mut self, ctx: &mut ModuleCtx<'_>, s: u32, payload: Value) {
        let id = ctx.request_to_rank(master_of(s), KvsMethod::ShardPush.topic(), payload);
        self.push_joins.insert(id, s);
    }
    fn handle_response(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        if let Some(s) = self.push_joins.remove(&msg.header.id) {
            if msg.is_error() {
                if msg.header.errnum == errnum::EINVAL {
                    self.fail_join(ctx, s);
                    return;
                }
                self.mark_unacked(s);
                return;
            }
            self.complete(ctx, s, msg);
        }
    }
    fn on_heartbeat(&mut self, ctx: &mut ModuleCtx<'_>, epoch: u64) {
        for s in self.pending() {
            self.send_push(ctx, s, self.payload_of(s));
        }
    }
}
"#;

    #[test]
    fn the_full_discipline_is_clean() {
        let v = run(GOOD);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unregistered_send_is_flagged() {
        let bad = GOOD.replace("        self.push_joins.insert(id, s);\n", "");
        let v = run(&bad);
        assert!(
            v.iter().any(|x| x.message.contains("never inserted")),
            "{v:?}"
        );
    }

    #[test]
    fn discarded_id_is_flagged() {
        let bad = GOOD.replace("let id = ctx.request_to_rank", "ctx.request_to_rank");
        let bad = bad.replace("        self.push_joins.insert(id, s);\n", "");
        let v = run(&bad);
        assert!(v.iter().any(|x| x.message.contains("discards")), "{v:?}");
    }

    #[test]
    fn missing_einval_discrimination_is_flagged() {
        // The consumption path checks is_error but retries everything —
        // the wrong-master EINVAL reply loops forever.
        let bad = GOOD
            .replace("                if msg.header.errnum == errnum::EINVAL {\n                    self.fail_join(ctx, s);\n                    return;\n                }\n", "");
        let v = run(&bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("EINVAL"), "{}", v[0]);
    }

    #[test]
    fn missing_heartbeat_retry_is_flagged() {
        let bad = GOOD.replace("fn on_heartbeat", "fn after_sweep");
        let v = run(&bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("heartbeat"), "{}", v[0]);
    }

    #[test]
    fn cleanup_removes_carry_no_obligation() {
        // A forget-before-resend remove never inspects the reply; only
        // reply-consuming removes must discriminate.
        let src = GOOD.replace(
            "        for s in self.pending() {\n",
            "        for old in self.stale() {\n            self.push_joins.remove(&old);\n        }\n        for s in self.pending() {\n",
        );
        let v = run(&src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn waiver_suppresses() {
        let bad = GOOD.replace("fn on_heartbeat", "fn after_sweep");
        let waived = bad.replace(
            "        let id = ctx.request_to_rank",
            "        // flux-lint: allow(shard-safety) — demo table, retries handled by the caller\n        let id = ctx.request_to_rank",
        );
        let v = run(&waived);
        assert!(v.is_empty(), "{v:?}");
    }
}
