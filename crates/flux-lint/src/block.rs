//! Blocking-call analysis (`block`).
//!
//! ROADMAP item 3 replaces `flux_rt::tcp`'s thread-per-link blocking
//! I/O with a poll-based nonblocking reactor. That migration is only
//! safe if the shared sans-io broker core is *provably* free of
//! blocking calls and locks held across I/O — a single stray
//! `thread::sleep` or un-deadlined `recv()` inside the dispatch path
//! stalls every session multiplexed onto the reactor thread. This pass
//! enforces that property statically, before the reactor lands.
//!
//! ## Condemned inside the sans-io scope
//!
//! * **sleep** — `thread::sleep` in any form.
//! * **recv** — blocking `mpsc` `recv()` with no deadline
//!   (`recv_timeout`/`try_recv` are fine: deadline-driven waiting is
//!   the sanctioned shape).
//! * **join** — `JoinHandle::join()` (the empty-parens form; `join`
//!   with arguments is slice/path joining, not a thread join).
//! * **socket-read** — `read_exact`/`read_to_end`/`read_frame*` in a
//!   function that handles a `TcpStream`/`TcpListener` without arming
//!   `set_read_timeout(Some(..))`: an un-deadlined socket read parks
//!   the thread for as long as the peer stays silent.
//! * **lock-span** — a `Mutex`/`RwLock` guard held across a statement
//!   that sends, writes, or receives (`write_frame*`, `write_all`,
//!   `read_frame*`, `read_exact`, `flush`, `.send(`, `.recv`): the
//!   guard serializes all peers behind one I/O call, and under the
//!   reactor it would be held across a readiness wait. Tracking is
//!   statement-granular: a guard binding (`let g = x.lock();`) is held
//!   from its statement to `drop(g)` or the end of the enclosing block;
//!   a guard temporary lives exactly its own statement.
//!
//! ## Scope
//!
//! The sans-io scope is the broker core and everything it is built
//! from: broker, kvs, modules, sim, wire, proto, flux-mc, kap — plus
//! the whole `rt` crate and the CLI as the *reactor-bound tier*. `rt`
//! hosts today's legitimately-blocking edges (tcp reader threads,
//! connect retry/backoff, script drivers); including it forces every
//! such edge to carry a justified waiver, which is exactly the
//! inventory the reactor PR will work from. Out-of-scope crates
//! (bench, core, hash, …) are still *classified* so that blocking
//! reached transitively through the per-definition call index is
//! flagged at the in-scope call site, with the provenance chain in the
//! message.
//!
//! ## Waivers
//!
//! `// flux-lint: allow(block) — <justification>` waives the source on
//! or just above the line; the justification text is mandatory — a
//! bare `allow(block)` in scope is itself a violation. Waived
//! functions are vetted boundaries and do not propagate. The canonical
//! justified entries are the thread-per-link edges the reactor
//! replaces: the tcp reader threads, connect retry/backoff, and the
//! ordered-shutdown joins.

use crate::analysis::{
    binding_of, display_key, line_of, split_stmts, waiver_status, DefIndex, ParsedFile, Scope,
};
use crate::{Rule, Violation, ALLOW_REACH};
use std::collections::{BTreeMap, BTreeSet};

/// Waiver comment token (checked on raw lines).
const WAIVER: &str = "flux-lint: allow(block)";

/// The sans-io scope (see the module docs): the broker core's crates
/// plus the reactor-bound `rt` and `cli` tiers.
const SANS_IO: Scope = Scope {
    prefixes: &[
        "crates/broker/src/",
        "crates/kvs/src/",
        "crates/modules/src/",
        "crates/sim/src/",
        "crates/wire/src/",
        "crates/proto/src/",
        "crates/flux-mc/src/",
        "crates/kap/src/",
        "crates/rt/src/",
        "crates/cli/src/",
    ],
    files: &[],
};

/// Is this file inside the sans-io scope?
pub(crate) fn sans_io_scope(rel: &str) -> bool {
    SANS_IO.contains(rel)
}

/// I/O tokens a held lock guard must not span: frame writes/reads,
/// raw socket writes, flushes, and channel sends/receives.
const IO_TOKENS: &[&str] = &[
    "write_frame",
    "read_frame",
    ".write_all(",
    ".read_exact(",
    ".read_to_end(",
    ".flush()",
    ".send(",
    ".recv(",
    ".recv_timeout(",
];

/// Socket-read tokens (checked only in functions that handle a TCP
/// stream without arming a read timeout).
const SOCKET_READS: &[&str] = &["read_exact(", "read_to_end(", "read_frame_into(", "read_frame("];

/// One blocking site found in a function.
#[derive(Clone, Debug)]
struct Source {
    /// 1-based line of the blocking site.
    line: usize,
    /// What fired, for diagnostics.
    what: String,
}

/// Per-function blocking classification (same lattice as the nondet
/// pass: `Clean` / `Tainted` / `Waived`).
enum State {
    /// No unwaived blocking site; may still block via calls.
    Clean,
    /// Direct blocking site(s), none waived; carries the first.
    Tainted(Source),
    /// Every direct site carries a justified waiver: a vetted
    /// legitimately-blocking edge that does not propagate.
    Waived,
}

/// Runs the pass over the shared parsed-file cache.
pub(crate) fn check_block(files: &[ParsedFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    let index = DefIndex::build(files);

    // Pass 1: classify every function in the workspace and flag direct
    // blocking sites inside the sans-io scope.
    let mut state: BTreeMap<String, State> = BTreeMap::new();
    let mut site: BTreeMap<String, (String, usize)> = BTreeMap::new();
    let mut def_file: BTreeMap<String, String> = BTreeMap::new();
    let mut calls: BTreeMap<String, Vec<(String, usize)>> = BTreeMap::new();
    let mut in_scope: BTreeSet<String> = BTreeSet::new();

    for pf in files {
        let crate_name = pf.crate_name().to_owned();
        let raw_lines: Vec<&str> = pf.raw.lines().collect();
        let scoped = sans_io_scope(&pf.rel);
        for (i, f) in pf.fns.iter().enumerate() {
            let key = DefIndex::key(&crate_name, &f.name, &pf.rel, i);
            def_file.entry(key.clone()).or_insert_with(|| pf.rel.clone());
            if scoped {
                in_scope.insert(key.clone());
            }
            let body = &pf.stripped[f.body.0..f.body.1];
            // Socket-read context: the function touches a TCP endpoint
            // and never arms a read deadline.
            let touches_socket =
                f.sig.contains("TcpStream") || f.sig.contains("TcpListener")
                    || body.contains("TcpStream") || body.contains("TcpListener");
            let undeadlined = touches_socket && !body.contains("set_read_timeout(Some");

            let mut sources = Vec::new();
            let mut held: Vec<(String, usize)> = Vec::new();
            scan_block(&pf.stripped, f.body, undeadlined, &mut held, &mut sources);

            let mut live: Vec<Source> = Vec::new();
            let mut any_waived = false;
            for s in sources {
                match waiver_status(&raw_lines, s.line, WAIVER, ALLOW_REACH) {
                    Some(true) => any_waived = true,
                    Some(false) if scoped => out.push(Violation {
                        file: pf.rel.clone(),
                        line: s.line,
                        rule: Rule::Block,
                        message: format!(
                            "`allow(block)` without a justification — write \
                             `// flux-lint: allow(block) — <why this edge must block>` ({})",
                            s.what
                        ),
                    }),
                    Some(false) => any_waived = true,
                    None => live.push(s),
                }
            }
            if scoped {
                for s in &live {
                    out.push(Violation {
                        file: pf.rel.clone(),
                        line: s.line,
                        rule: Rule::Block,
                        message: format!(
                            "{} in sans-io code — use a deadline-driven form or justify \
                             with `// flux-lint: allow(block) — <why>`",
                            s.what
                        ),
                    });
                }
            }
            let st = match (live.first(), any_waived) {
                (Some(s), _) => {
                    site.insert(key.clone(), (pf.rel.clone(), s.line));
                    State::Tainted(s.clone())
                }
                (None, true) => State::Waived,
                (None, false) => State::Clean,
            };
            state.insert(key.clone(), st);
            calls.insert(key, index.edges(pf, f));
        }
    }

    // Pass 2: propagate "transitively blocks" caller-ward to a
    // fixpoint, one provenance hop per function.
    let mut tainted: BTreeMap<String, String> = BTreeMap::new();
    for (key, st) in &state {
        if matches!(st, State::Tainted(_)) {
            tainted.insert(key.clone(), key.clone());
        }
    }
    loop {
        let mut changed = false;
        for (caller, edges) in &calls {
            if tainted.contains_key(caller) {
                continue;
            }
            if matches!(state.get(caller), Some(State::Waived)) {
                continue; // vetted boundary: does not propagate
            }
            if let Some((callee, _)) = edges.iter().find(|(c, _)| tainted.contains_key(c)) {
                tainted.insert(caller.clone(), callee.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Pass 3: a sans-io function that blocks *only* through
    // out-of-scope callees is flagged at its first blocking call site.
    for key in &in_scope {
        if matches!(state.get(key), Some(State::Tainted(_))) {
            continue; // flagged at the source in pass 1
        }
        let Some(first_hop) = tainted.get(key) else { continue };
        let mut chain = vec![key.clone()];
        let mut cur = first_hop.clone();
        while chain.last() != Some(&cur) {
            chain.push(cur.clone());
            cur = tainted.get(&cur).cloned().unwrap_or(cur);
        }
        let source_key = chain.last().expect("chain is never empty").clone();
        if in_scope.contains(&source_key) {
            continue; // the source is flagged at its own site
        }
        let Some((_, cline)) =
            calls.get(key).and_then(|e| e.iter().find(|(c, _)| c == first_hop))
        else {
            continue;
        };
        let cline = *cline;
        let cfile = def_file.get(key).cloned().unwrap_or_default();
        let (sfile, sline) = site.get(&source_key).cloned().unwrap_or_default();
        let what = match state.get(&source_key) {
            Some(State::Tainted(s)) => s.what.clone(),
            _ => "a blocking call".to_owned(),
        };
        out.push(Violation {
            file: if cfile.is_empty() { sfile.clone() } else { cfile },
            line: cline,
            rule: Rule::Block,
            message: format!(
                "sans-io function `{}` transitively blocks: {what} via {} ({sfile}:{sline})",
                display_key(key),
                chain.iter().map(|k| display_key(k)).collect::<Vec<_>>().join(" -> "),
            ),
        });
    }

    out.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out
}

/// True if `text` contains `.recv()` exactly (not `recv_timeout`,
/// `try_recv`, or a `recv(` with arguments).
fn bare_recv(text: &str) -> bool {
    text.contains(".recv()")
}

/// True if `text` contains a thread join: `.join()` with empty parens.
/// Slice/`Path` joins always take an argument, so the empty-parens form
/// is unambiguous.
fn thread_join(text: &str) -> bool {
    text.contains(".join()")
}

/// The lock token ending a guard acquisition, if `text` contains one:
/// `.lock()`, or the argument-less `.read()`/`.write()` RwLock forms.
fn lock_token_at(text: &str) -> Option<usize> {
    [".lock()", ".read()", ".write()"].iter().find_map(|t| text.find(t))
}

/// The first spanned I/O token in `text`, if any.
fn io_token(text: &str) -> Option<&'static str> {
    IO_TOKENS.iter().find(|t| text.contains(**t)).copied()
}

/// Scans one block for blocking sites. `held` carries the lock guards
/// in force from enclosing blocks (`(name, bind line)`); guards bound
/// in this block expire at its end.
fn scan_block(
    blanked: &str,
    span: (usize, usize),
    undeadlined_socket: bool,
    held: &mut Vec<(String, usize)>,
    out: &mut Vec<Source>,
) {
    let outer_guards = held.len();
    let stmts = split_stmts(blanked, span);
    for stmt in &stmts {
        // Own text only: tokens inside nested blocks are found by the
        // recursive walk below, so a loop statement doesn't aggregate
        // its body's I/O with an unrelated lock. Closure bodies inside
        // call parens (reader threads) stay visible.
        let own = stmt.own_text(blanked);
        let full = own.as_str();
        let head = stmt.head();
        let line_at = |at: usize| line_of(blanked, stmt.full.0 + at);

        if let Some(p) = full.find("thread::sleep(") {
            out.push(Source { line: line_at(p), what: "blocking sleep (`thread::sleep`)".into() });
        }
        if bare_recv(full) {
            let p = full.find(".recv()").unwrap_or(0);
            out.push(Source {
                line: line_at(p),
                what: "blocking channel receive (`recv()` with no deadline)".into(),
            });
        }
        if thread_join(full) {
            let p = full.find(".join()").unwrap_or(0);
            out.push(Source { line: line_at(p), what: "thread join (`JoinHandle::join`)".into() });
        }
        if undeadlined_socket {
            if let Some(tok) = SOCKET_READS.iter().find(|t| full.contains(**t)) {
                let p = full.find(tok).unwrap_or(0);
                out.push(Source {
                    line: line_at(p),
                    what: format!(
                        "un-deadlined socket read (`{}` with no `set_read_timeout`)",
                        tok.trim_end_matches('(')
                    ),
                });
            }
        }

        // Lock spans. A statement that both acquires a guard temporary
        // and performs I/O holds the lock across that I/O; a `let`
        // binding whose expression *ends* at the lock call creates a
        // named guard held until `drop(name)` or end of block.
        let lock_at = lock_token_at(full);
        if let Some(p) = lock_at {
            if let Some(tok) = io_token(full) {
                out.push(Source {
                    line: line_at(p),
                    what: format!("lock guard held across I/O (`{tok}` in the same statement)"),
                });
            }
        }
        // Held guards from earlier statements spanning this one's I/O.
        if !held.is_empty() && lock_at.is_none() {
            if let Some(tok) = io_token(full) {
                let (name, bound) = held.last().expect("held is non-empty").clone();
                let p = full.find(tok).unwrap_or(0);
                out.push(Source {
                    line: line_at(p),
                    what: format!(
                        "lock guard `{name}` (bound at line {bound}) held across `{tok}`"
                    ),
                });
            }
        }
        // Guard bookkeeping: new named guards and explicit drops.
        if let Some(p) = lock_at {
            let after = full[p..]
                .trim_start_matches(|c: char| c != ')')
                .trim_start_matches(')')
                .trim();
            let is_binding = after == ";" || after.is_empty();
            if is_binding {
                if let Some(name) = binding_of(head) {
                    held.push((name.to_owned(), line_at(p)));
                }
            }
        }
        held.retain(|(name, _)| !full.contains(&format!("drop({name})")));

        for &block in &stmt.blocks {
            scan_block(blanked, block, undeadlined_socket, held, out);
        }
    }
    held.truncate(outer_guards);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        check_block(&[ParsedFile::parse(rel, src)])
    }

    #[test]
    fn sleep_recv_join_fire_in_scope() {
        let src = "fn pump(rx: &Receiver<u8>, h: JoinHandle<()>) {\n\
                   \x20std::thread::sleep(Duration::from_millis(1));\n\
                   \x20let _x = rx.recv();\n\
                   \x20let _ = h.join();\n}\n";
        let v = run("crates/sim/src/demo.rs", src);
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v[0].message.contains("sleep"), "{}", v[0]);
        assert!(v[1].message.contains("recv"), "{}", v[1]);
        assert!(v[2].message.contains("join"), "{}", v[2]);
    }

    #[test]
    fn deadline_driven_forms_are_clean() {
        let src = "fn pump(rx: &Receiver<u8>) {\n\
                   \x20while let Ok(x) = rx.recv_timeout(Duration::from_millis(5)) { use_(x); }\n\
                   \x20let _ = rx.try_recv();\n\
                   \x20let s = parts.join(\", \");\n}\n";
        let v = run("crates/sim/src/demo.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn out_of_scope_files_are_classified_but_not_flagged() {
        let src = "fn nap() { std::thread::sleep(Duration::from_millis(1)); }\n";
        let v = run("crates/bench/src/demo.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn transitive_blocking_is_flagged_at_the_call_site() {
        let files = [
            ParsedFile::parse(
                "crates/sim/src/demo.rs",
                "fn step(&mut self) { flux_bench::pace(); }\n",
            ),
            ParsedFile::parse(
                "crates/bench/src/demo.rs",
                "pub fn pace() { std::thread::sleep(Duration::from_millis(1)); }\n",
            ),
        ];
        let v = check_block(&files);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].file.contains("sim"), "{}", v[0]);
        assert!(v[0].message.contains("transitively blocks"), "{}", v[0]);
        assert!(v[0].message.contains("bench::pace"), "{}", v[0]);
    }

    #[test]
    fn waived_blocking_does_not_propagate() {
        let files = [
            ParsedFile::parse(
                "crates/sim/src/demo.rs",
                "fn step(&mut self) { flux_bench::pace(); }\n",
            ),
            ParsedFile::parse(
                "crates/bench/src/demo.rs",
                "pub fn pace() {\n // flux-lint: allow(block) — test pacing helper, never on the reactor path\n std::thread::sleep(Duration::from_millis(1));\n}\n",
            ),
        ];
        let v = check_block(&files);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn bare_waiver_is_itself_a_violation() {
        let src = "fn nap() {\n // flux-lint: allow(block)\n std::thread::sleep(Duration::from_millis(1));\n}\n";
        let v = run("crates/sim/src/demo.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("justification"), "{}", v[0]);
    }

    #[test]
    fn lock_guard_held_across_write_fires() {
        let src = "fn send(&self, msg: &Message) {\n\
                   \x20let mut g = self.out.lock();\n\
                   \x20write_frame(&mut *g, msg, MAX).ok();\n}\n";
        let v = run("crates/sim/src/demo.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("held across"), "{}", v[0]);
    }

    #[test]
    fn dropped_guard_and_io_free_spans_are_clean() {
        let src = "fn send(&self, msg: &Message) {\n\
                   \x20let mut g = self.out.lock();\n\
                   \x20g.push(1);\n\
                   \x20drop(g);\n\
                   \x20write_frame(&mut self.w, msg, MAX).ok();\n}\n\
                   fn bump(&self) {\n\
                   \x20let mut g = self.counts.lock();\n\
                   \x20*g += 1;\n}\n";
        let v = run("crates/sim/src/demo.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn single_statement_lock_and_io_fires() {
        let src = "fn send(&self, msg: &Message) {\n\
                   \x20write_frame(&mut *self.out.lock(), msg, MAX).ok();\n}\n";
        let v = run("crates/sim/src/demo.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("same statement"), "{}", v[0]);
    }

    #[test]
    fn undeadlined_socket_read_fires_and_deadlined_is_clean() {
        let bad = "fn pump(stream: &mut TcpStream, buf: &mut Vec<u8>) {\n\
                   \x20stream.read_exact(buf).ok();\n}\n";
        let v = run("crates/sim/src/demo.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("socket read"), "{}", v[0]);

        let good = "fn pump(stream: &mut TcpStream, buf: &mut Vec<u8>) {\n\
                    \x20stream.set_read_timeout(Some(TIMEOUT)).ok();\n\
                    \x20stream.read_exact(buf).ok();\n}\n";
        let v = run("crates/sim/src/demo.rs", good);
        assert!(v.is_empty(), "{v:?}");
    }
}
