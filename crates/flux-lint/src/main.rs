//! `flux-lint` — offline conformance pass over the workspace sources.
//!
//! Exits 0 when the tree is clean, 1 with one diagnostic per line when
//! any rule fires (see the library docs for the rules). The workspace
//! root defaults to the directory containing this crate's `crates/`
//! parent and can be overridden with the `FLUX_LINT_ROOT` environment
//! variable.
//!
//! Flags:
//!
//! * `--timings` — print wall time per pass after the lint result.
//! * `--json` — emit the `flux-lint/v1` machine-readable document on
//!   stdout instead of the human diagnostics (exit codes unchanged).
//! * `--annotate` — also emit one GitHub Actions `::error` workflow
//!   command per violation, so findings surface inline on the PR diff.
//! * `--budget-ms <N>` — fail (exit 2) if the summed per-pass wall
//!   time exceeds `N` milliseconds: the lint stays fast enough to run
//!   on every push, by construction.
//! * `--self-mutate` — run the mutation smoke check instead of the
//!   lint: seed one known violation per semantic pass into an
//!   in-memory copy of the tree and fail (exit 2) unless every seeded
//!   violation is caught. Guards CI against the linter itself rotting.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::var_os("FLUX_LINT_ROOT")
        .map(PathBuf::from)
        .unwrap_or_else(flux_lint::workspace_root);
    let mut timings = false;
    let mut mutate = false;
    let mut json = false;
    let mut annotate = false;
    let mut budget_ms: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--timings" => timings = true,
            "--self-mutate" => mutate = true,
            "--json" => json = true,
            "--annotate" => annotate = true,
            "--budget-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => budget_ms = Some(ms),
                None => {
                    eprintln!("flux-lint: --budget-ms needs a millisecond count");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "flux-lint: unknown flag `{other}` (try --timings, --json, --annotate, \
                     --budget-ms <N>, --self-mutate)"
                );
                return ExitCode::from(2);
            }
        }
    }

    if mutate {
        return match flux_lint::self_mutate(&root) {
            Ok(report) => {
                for line in report {
                    println!("flux-lint: {line}");
                }
                println!("flux-lint: self-mutate ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("flux-lint: self-mutate FAILED: {e}");
                ExitCode::from(2)
            }
        };
    }

    let report = match flux_lint::lint_tree_report(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flux-lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", flux_lint::to_json(&report));
    }
    if annotate {
        for v in &report.violations {
            // GitHub Actions workflow command: newlines must be %0A to
            // keep the annotation on one command line.
            println!(
                "::error file={},line={}::[{}] {}",
                v.file,
                v.line,
                v.rule.name(),
                v.message.replace('%', "%25").replace('\n', "%0A")
            );
        }
    }
    if timings {
        for (pass, took) in &report.timings {
            println!("flux-lint: {pass:>15} {:>8.1?}", took);
        }
    }
    if let Some(budget) = budget_ms {
        let total: std::time::Duration = report.timings.iter().map(|(_, d)| *d).sum();
        if total.as_millis() > u128::from(budget) {
            eprintln!(
                "flux-lint: wall budget exceeded — {:.1?} total against a {budget} ms budget",
                total
            );
            return ExitCode::from(2);
        }
    }
    if report.violations.is_empty() {
        if !json {
            println!("flux-lint: clean");
        }
        return ExitCode::SUCCESS;
    }
    if !json {
        for v in &report.violations {
            eprintln!("{v}");
        }
        eprintln!("flux-lint: {} violation(s)", report.violations.len());
    }
    ExitCode::FAILURE
}
