//! `flux-lint` — offline conformance pass over the workspace sources.
//!
//! Exits 0 when the tree is clean, 1 with one diagnostic per line when
//! any rule fires (see the library docs for the rules). The workspace
//! root defaults to the directory containing this crate's `crates/`
//! parent and can be overridden with the `FLUX_LINT_ROOT` environment
//! variable.
//!
//! Flags:
//!
//! * `--timings` — print wall time per pass after the lint result.
//! * `--self-mutate` — run the mutation smoke check instead of the
//!   lint: seed one known violation per semantic pass into an
//!   in-memory copy of the tree and fail (exit 2) unless every seeded
//!   violation is caught. Guards CI against the linter itself rotting.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::var_os("FLUX_LINT_ROOT")
        .map(PathBuf::from)
        .unwrap_or_else(flux_lint::workspace_root);
    let mut timings = false;
    let mut mutate = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--timings" => timings = true,
            "--self-mutate" => mutate = true,
            other => {
                eprintln!("flux-lint: unknown flag `{other}` (try --timings, --self-mutate)");
                return ExitCode::from(2);
            }
        }
    }

    if mutate {
        return match flux_lint::self_mutate(&root) {
            Ok(report) => {
                for line in report {
                    println!("flux-lint: {line}");
                }
                println!("flux-lint: self-mutate ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("flux-lint: self-mutate FAILED: {e}");
                ExitCode::from(2)
            }
        };
    }

    let report = match flux_lint::lint_tree_report(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flux-lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if timings {
        for (pass, took) in &report.timings {
            println!("flux-lint: {pass:>15} {:>8.1?}", took);
        }
    }
    if report.violations.is_empty() {
        println!("flux-lint: clean");
        return ExitCode::SUCCESS;
    }
    for v in &report.violations {
        eprintln!("{v}");
    }
    eprintln!("flux-lint: {} violation(s)", report.violations.len());
    ExitCode::FAILURE
}
