//! `flux-lint` — offline conformance pass over the workspace sources.
//!
//! Exits 0 when the tree is clean, 1 with one diagnostic per line when
//! any rule fires (see the library docs for the rules). The workspace
//! root defaults to the directory containing this crate's `crates/`
//! parent and can be overridden with the `FLUX_LINT_ROOT` environment
//! variable.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::var_os("FLUX_LINT_ROOT")
        .map(PathBuf::from)
        .unwrap_or_else(flux_lint::workspace_root);
    let violations = match flux_lint::lint_tree(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("flux-lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if violations.is_empty() {
        println!("flux-lint: clean");
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("{v}");
    }
    eprintln!("flux-lint: {} violation(s)", violations.len());
    ExitCode::FAILURE
}
