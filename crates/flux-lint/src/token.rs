//! Token-level preprocessing: a tiny Rust lexer that blanks the
//! *contents* of string literals, character literals, and comments
//! while preserving every line boundary and every structural character.
//!
//! The line rules and the semantic analyses all run over blanked text:
//! a `panic!(` inside a doc comment or an error message can no longer
//! trigger the panic rule, and brace/paren matching cannot be thrown
//! off by a stray `{` in a string. Waiver comments
//! (`// flux-lint: allow(...)`) are detected on the *raw* lines, so
//! blanking never eats a justification.

/// Lexer state carried across lines.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Replaces string/char-literal contents and comment bodies with
/// spaces. Quotes themselves are kept (so `"x"` becomes `" "` — still a
/// string, just empty-looking), comment markers are kept (`//`, `/*`,
/// `*/`), and newlines are untouched, so line numbers and column-free
/// scans stay valid.
pub fn blank(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let bytes = src.as_bytes();
    let mut mode = Mode::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match mode {
            Mode::Code => {
                match b {
                    b'/' if bytes.get(i + 1) == Some(&b'/') => {
                        out.push_str("//");
                        i += 2;
                        mode = Mode::LineComment;
                        continue;
                    }
                    b'/' if bytes.get(i + 1) == Some(&b'*') => {
                        out.push_str("/*");
                        i += 2;
                        mode = Mode::BlockComment(1);
                        continue;
                    }
                    b'"' => {
                        out.push('"');
                        i += 1;
                        mode = Mode::Str;
                        continue;
                    }
                    b'r' if is_raw_string_start(bytes, i) => {
                        let hashes = count_hashes(bytes, i + 1);
                        out.push('r');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        out.push('"');
                        i += 2 + hashes as usize;
                        mode = Mode::RawStr(hashes);
                        continue;
                    }
                    b'\'' if is_char_literal_start(bytes, i) => {
                        out.push('\'');
                        i += 1;
                        mode = Mode::Char;
                        continue;
                    }
                    _ => {}
                }
                out.push(b as char);
                i += 1;
            }
            Mode::LineComment => {
                if b == b'\n' {
                    out.push('\n');
                    mode = Mode::Code;
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    out.push_str("  ");
                    i += 2;
                    mode = Mode::BlockComment(depth + 1);
                } else if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    i += 2;
                    if depth == 1 {
                        out.push_str("*/");
                        mode = Mode::Code;
                    } else {
                        out.push_str("  ");
                        mode = Mode::BlockComment(depth - 1);
                    }
                } else {
                    out.push(if b == b'\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            Mode::Str => {
                if b == b'\\' && i + 1 < bytes.len() {
                    out.push_str("  ");
                    i += 2;
                } else if b == b'"' {
                    out.push('"');
                    i += 1;
                    mode = Mode::Code;
                } else {
                    out.push(if b == b'\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if b == b'"' && has_hashes(bytes, i + 1, hashes) {
                    out.push('"');
                    for _ in 0..hashes {
                        out.push('#');
                    }
                    i += 1 + hashes as usize;
                    mode = Mode::Code;
                } else {
                    out.push(if b == b'\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            Mode::Char => {
                if b == b'\\' && i + 1 < bytes.len() {
                    out.push_str("  ");
                    i += 2;
                } else if b == b'\'' {
                    out.push('\'');
                    i += 1;
                    mode = Mode::Code;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    out
}

/// `r"` or `r#...#"` — but not an identifier ending in `r` (checked by
/// the caller's context: the byte before must not be alphanumeric).
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let hashes = count_hashes(bytes, i + 1);
    bytes.get(i + 1 + hashes as usize) == Some(&b'"')
}

fn count_hashes(bytes: &[u8], mut i: usize) -> u32 {
    let mut n = 0;
    while bytes.get(i) == Some(&b'#') {
        n += 1;
        i += 1;
    }
    n
}

fn has_hashes(bytes: &[u8], i: usize, n: u32) -> bool {
    (0..n as usize).all(|k| bytes.get(i + k) == Some(&b'#'))
}

/// A `'` is a char literal (not a lifetime) if it closes within a few
/// chars: `'a'`, `'\n'`, `'\''`, `'\u{1F600}'`. Lifetimes (`'a`,
/// `'static`) never close with a `'`.
fn is_char_literal_start(bytes: &[u8], i: usize) -> bool {
    if bytes.get(i + 1) == Some(&b'\\') {
        return true; // escape: always a char literal
    }
    // `'x'` — one code point then a quote. Scan past one UTF-8 char.
    let mut j = i + 2;
    while j < bytes.len() && (bytes[j] & 0xC0) == 0x80 {
        j += 1; // continuation bytes of a multibyte char
    }
    bytes.get(j) == Some(&b'\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_strings_but_keeps_structure() {
        let src = "let x = \"panic!( {\"; // a panic!( here\nfoo();\n";
        let b = blank(src);
        assert!(!b.contains("panic!("), "{b}");
        assert_eq!(b.lines().count(), src.lines().count());
        assert!(b.contains("let x = \""));
        assert!(b.contains("foo();"));
    }

    #[test]
    fn blanks_block_comments_and_nesting() {
        let src = "a /* outer /* inner */ still */ b /* unwrap() */ c";
        let b = blank(src);
        assert!(!b.contains("unwrap"));
        assert!(b.contains('a') && b.contains('b') && b.contains('c'));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let src = r####"let s = r#"a " quote { and panic!( "#; t.unwrap();"####;
        let b = blank(src);
        assert!(!b.contains("panic!("), "{b}");
        assert!(!b.contains('{'), "{b}");
        assert!(b.contains(".unwrap();"), "{b}");
        let esc = "let s = \"a \\\" b { \"; x.lock();";
        let be = blank(esc);
        assert!(!be.contains('{'), "{be}");
        assert!(be.contains(".lock();"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '{'; let q = '\\''; }";
        let b = blank(src);
        assert_eq!(b.matches('{').count(), 1, "{b}");
        assert!(b.contains("<'a>"), "lifetime must survive: {b}");
    }

    #[test]
    fn line_comment_markers_survive() {
        let b = blank("x(); // flux-lint: allow(panic)\n");
        assert!(b.starts_with("x(); //"));
        assert!(!b.contains("flux-lint"));
    }
}
