//! Reply-obligation dataflow lint.
//!
//! Every module dispatch function matches on `<Svc>Method::from_method`
//! and must answer request/response methods on *every* path: an RPC arm
//! that can fall through or `return` without responding leaves a client
//! waiting forever. This lint finds those dispatch matches, looks each
//! variant's kind up in the [`flux_proto`] registry, and walks the arm
//! bodies with a three-valued outcome:
//!
//! * **Discharged** — a respond/error call (or a call to a local helper
//!   that always discharges, or parking the request via
//!   `<msg>.clone()` for a later reply) happens on this path.
//! * **Escaped** — a path leaves the function without discharging
//!   (`return` before any respond).
//! * **Neutral** — nothing decided yet; scanning continues.
//!
//! An obligated arm whose body ends `Neutral` or `Escaped` is a
//! violation. `OneWay` and `Stream` arms carry no obligation.
//! Intentional drops (duplicate suppression) are waived with
//! `// flux-lint: allow(reply)` on or just above the escaping line.
//!
//! Only functions with a responder context (a `Ctx`/`Broker`-typed
//! parameter) are analyzed — pure decoders that match on
//! `from_method` to translate replies are out of scope.

use crate::analysis::{find_word, line_of, match_delim, split_stmts, FnDef, ParsedFile, Stmt};
use crate::{Rule, Violation};
use flux_proto::MethodKind;
use std::collections::{BTreeMap, BTreeSet};

/// Waiver comment for intentional non-replies (checked on raw lines).
const WAIVER: &str = "flux-lint: allow(reply)";

/// Path outcome for one statement or block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Outcome {
    /// A reply was produced (or parked) on every path through here.
    Discharged,
    /// Nothing decided; later statements may still discharge.
    Neutral,
    /// A path exits the function without a reply. Carries the byte
    /// offset of the escape site for diagnostics and waiver lookup.
    Escaped(usize),
}

/// Tokens whose presence in a statement discharges the obligation.
/// `response_to(` also covers `error_response_to(`; the `respond`
/// prefix covers `respond`, `respond_err`, and `respond_version`-style
/// helpers resolved via the fixpoint below.
const DISCHARGE: &[&str] = &[".respond(", ".respond_err(", "route_response(", "response_to("];

/// Per-file analysis context.
struct FileCtx<'a> {
    rel: &'a str,
    raw_lines: Vec<&'a str>,
    blanked: &'a str,
    kinds: &'a BTreeMap<(String, String), MethodKind>,
    /// Local helper functions known to discharge on every path.
    discharging: BTreeSet<String>,
}

/// Builds the `(service, normalized method) → kind` table from the
/// proto registry. `kvs.fence.up` → `("kvs", "fenceup")`, matching the
/// `FenceUp` variant normalized the same way.
pub(crate) fn kind_table() -> BTreeMap<(String, String), MethodKind> {
    let mut map = BTreeMap::new();
    for spec in flux_proto::methods() {
        let mut parts = spec.topic.splitn(2, '.');
        let (Some(service), Some(method)) = (parts.next(), parts.next()) else { continue };
        map.insert((service.to_owned(), normalize(method)), spec.kind);
    }
    map
}

/// Lowercases and strips separators so variant names and topic method
/// parts meet in the middle (`FenceUp` == `fence.up` == `fenceup`).
pub(crate) fn normalize(s: &str) -> String {
    s.chars().filter(|c| c.is_ascii_alphanumeric()).map(|c| c.to_ascii_lowercase()).collect()
}

/// Runs the lint over one parsed file.
pub(crate) fn check_reply(
    pf: &ParsedFile,
    kinds: &BTreeMap<(String, String), MethodKind>,
) -> Vec<Violation> {
    let mut ctx = FileCtx {
        rel: &pf.rel,
        raw_lines: pf.raw.lines().collect(),
        blanked: &pf.stripped,
        kinds,
        discharging: BTreeSet::new(),
    };
    ctx.helper_fixpoint(&pf.fns);

    let mut out = Vec::new();
    for f in &pf.fns {
        // Only responders: a Ctx/Broker-typed parameter means this
        // function can actually answer. Decoders are skipped.
        if !(f.sig.contains("Ctx") || f.sig.contains("Broker")) {
            continue;
        }
        let msg_param = message_param(&f.sig);
        for m in find_dispatch_matches(&pf.stripped, f) {
            out.extend(ctx.check_match(&m, &msg_param));
        }
    }
    out
}

/// One `match <Svc>Method::from_method(..) { .. }` site.
pub(crate) struct DispatchMatch {
    /// Lowercased service name (`KvsMethod` → `kvs`).
    pub service: String,
    /// Enum name (`KvsMethod`), for variant extraction from patterns.
    pub enum_name: String,
    /// Interior span of the match block.
    pub block: (usize, usize),
}

/// Finds dispatch matches inside one function body.
pub(crate) fn find_dispatch_matches(blanked: &str, f: &FnDef) -> Vec<DispatchMatch> {
    const NEEDLE: &str = "Method::from_method";
    let body = &blanked[f.body.0..f.body.1];
    let bytes = blanked.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = body[from..].find(NEEDLE) {
        let abs = f.body.0 + from + p;
        from += p + NEEDLE.len();
        // Enum name: the identifier run ending at the needle.
        let mut start = abs;
        while start > 0
            && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_')
        {
            start -= 1;
        }
        let enum_name = format!("{}Method", &blanked[start..abs]);
        let service = blanked[start..abs].to_ascii_lowercase();
        if service.is_empty() {
            continue;
        }
        // Must be the scrutinee of a `match`: a `match` keyword earlier
        // on the same statement, with no intervening brace.
        let lead = &blanked[f.body.0..start];
        let Some(mpos) = lead.rfind("match ") else { continue };
        if lead[mpos..].contains('{') {
            continue;
        }
        // The match block opens at the next top-level `{`.
        let mut j = abs;
        let mut ok = None;
        while j < f.body.1 {
            match bytes[j] {
                b'(' | b'[' => match match_delim(bytes, j) {
                    Some(end) => j = end,
                    None => break,
                },
                b'{' => {
                    if let Some(end) = match_delim(bytes, j) {
                        ok = Some((j + 1, end - 1));
                    }
                    break;
                }
                _ => j += 1,
            }
        }
        if let Some(block) = ok {
            out.push(DispatchMatch { service, enum_name, block });
        }
    }
    out
}

/// One arm of a match block: pattern text plus either a block body or
/// an expression body.
pub(crate) struct Arm {
    pub pattern: String,
    /// Byte offset of the pattern start (for diagnostics).
    pub at: usize,
    /// Block-body interior span, if the body is `{ .. }`.
    pub block: Option<(usize, usize)>,
    /// Expression body text otherwise.
    pub expr: String,
}

/// Splits a match block interior into arms. Arms are `pattern => body`
/// where body is a block or an expression ending at a top-level `,`.
pub(crate) fn split_arms(blanked: &str, span: (usize, usize)) -> Vec<Arm> {
    let bytes = blanked.as_bytes();
    let mut out = Vec::new();
    let mut i = span.0;
    while i < span.1 {
        // Pattern: up to `=>` at top level.
        let pat_start = i;
        let mut pat_end = None;
        while i < span.1 {
            match bytes[i] {
                b'(' | b'[' | b'{' => {
                    i = match match_delim(bytes, i) {
                        Some(end) => end,
                        None => span.1,
                    }
                }
                b'=' if bytes.get(i + 1) == Some(&b'>') => {
                    pat_end = Some(i);
                    i += 2;
                    break;
                }
                _ => i += 1,
            }
        }
        let Some(pat_end) = pat_end else { break };
        let pattern = blanked[pat_start..pat_end].trim().to_owned();
        // Body: skip whitespace, then block or expression.
        while i < span.1 && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        if i < span.1 && bytes[i] == b'{' {
            let end = match match_delim(bytes, i) {
                Some(end) => end,
                None => span.1,
            };
            out.push(Arm {
                pattern,
                at: pat_start,
                block: Some((i + 1, end.saturating_sub(1))),
                expr: String::new(),
            });
            i = end;
            if i < span.1 && bytes[i] == b',' {
                i += 1;
            }
        } else {
            let expr_start = i;
            while i < span.1 {
                match bytes[i] {
                    b'(' | b'[' | b'{' => {
                        i = match match_delim(bytes, i) {
                            Some(end) => end,
                            None => span.1,
                        }
                    }
                    b',' => break,
                    _ => i += 1,
                }
            }
            out.push(Arm {
                pattern,
                at: pat_start,
                block: None,
                expr: blanked[expr_start..i].to_owned(),
            });
            if i < span.1 {
                i += 1; // past the comma
            }
        }
    }
    out
}

impl FileCtx<'_> {
    /// Iterates helper classification to a fixpoint: a helper
    /// discharges if its whole body evaluates `Discharged`, possibly
    /// via other discharging helpers.
    fn helper_fixpoint(&mut self, fns: &[FnDef]) {
        for _ in 0..10 {
            let mut changed = false;
            for f in fns {
                if self.discharging.contains(&f.name) {
                    continue;
                }
                let msg_param = message_param(&f.sig);
                if self.eval_block(f.body, &msg_param) == Outcome::Discharged {
                    changed |= self.discharging.insert(f.name.clone());
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Checks one dispatch match, returning violations for obligated
    /// arms that do not discharge.
    fn check_match(&self, m: &DispatchMatch, msg_param: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        for arm in split_arms(self.blanked, m.block) {
            if !self.arm_obligated(m, &arm) {
                continue;
            }
            let outcome = match arm.block {
                Some(span) => self.eval_block(span, msg_param),
                None => self.eval_text(&arm.expr, msg_param, arm.at),
            };
            let (line, what) = match outcome {
                Outcome::Discharged => continue,
                Outcome::Neutral => (
                    line_of(self.blanked, arm.at),
                    "can fall through without a reply".to_owned(),
                ),
                Outcome::Escaped(site) => (
                    line_of(self.blanked, site),
                    "returns without a reply".to_owned(),
                ),
            };
            if self.waived(line) || self.waived(line_of(self.blanked, arm.at)) {
                continue;
            }
            out.push(Violation {
                file: self.rel.to_owned(),
                line,
                rule: Rule::ReplyObligation,
                message: format!(
                    "arm `{}` of the {} dispatch {what}; every request/response \
                     method must be answered on all paths",
                    compact_ws(&arm.pattern),
                    m.service
                ),
            });
        }
        out
    }

    /// An arm is obligated when it handles an undecodable method
    /// (`None` must get ENOSYS) or any request/response variant.
    fn arm_obligated(&self, m: &DispatchMatch, arm: &Arm) -> bool {
        if arm.pattern == "None" {
            return true;
        }
        let needle = format!("{}::", m.enum_name);
        let mut any_rpc = false;
        let mut from = 0;
        while let Some(p) = arm.pattern[from..].find(&needle) {
            let vstart = from + p + needle.len();
            let vend = arm.pattern[vstart..]
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .map_or(arm.pattern.len(), |e| vstart + e);
            let variant = &arm.pattern[vstart..vend];
            let key = (m.service.clone(), normalize(variant));
            // Unknown variants (registry drift) are treated as RPC so
            // drift fails loudly rather than silently unlinting.
            any_rpc |=
                self.kinds.get(&key).copied().unwrap_or(MethodKind::Rpc) == MethodKind::Rpc;
            from = vend;
        }
        any_rpc
    }

    /// Evaluates a block interior statement by statement.
    fn eval_block(&self, span: (usize, usize), msg_param: &str) -> Outcome {
        for stmt in split_stmts(self.blanked, span) {
            match self.eval_stmt(&stmt, msg_param) {
                Outcome::Discharged => return Outcome::Discharged,
                Outcome::Neutral => {}
                Outcome::Escaped(site) => {
                    // A waived escape is an intentional drop; scanning
                    // continues in case a later path discharges.
                    if self.waived(line_of(self.blanked, site)) {
                        continue;
                    }
                    return Outcome::Escaped(site);
                }
            }
        }
        Outcome::Neutral
    }

    /// Statement-level outcome rules.
    fn eval_stmt(&self, stmt: &Stmt, msg_param: &str) -> Outcome {
        let head = stmt.head();
        let is_let = head.starts_with("let ");
        let full = &self.blanked[stmt.full.0..stmt.full.1];

        // `let .. else { .. }`: the else-block must diverge; if it
        // discharges before diverging the obligation is met only on
        // that branch, so the statement as a whole stays Neutral. A
        // `let x = if .. else ..;` also puts `else` before its last
        // block, so require the right-hand side not to be a
        // control-flow expression.
        if is_let && !stmt.blocks.is_empty() {
            let before_last =
                stmt.segs.get(stmt.blocks.len() - 1).map(|s| s.trim_end()).unwrap_or("");
            let rhs = head.split_once('=').map(|(_, r)| r.trim_start()).unwrap_or("");
            let rhs_control = rhs.starts_with("if") || rhs.starts_with("match");
            if before_last.ends_with("else") && !rhs_control {
                let span = *stmt.blocks.last().expect("checked non-empty");
                return match self.eval_block(span, msg_param) {
                    Outcome::Discharged => Outcome::Neutral,
                    Outcome::Neutral => Outcome::Escaped(span.0),
                    esc => esc,
                };
            }
        }

        if !is_let && head.starts_with("if ") && !stmt.blocks.is_empty() {
            let mut all_discharged = true;
            for &span in &stmt.blocks {
                match self.eval_block(span, msg_param) {
                    Outcome::Discharged => {}
                    Outcome::Neutral => all_discharged = false,
                    esc @ Outcome::Escaped(_) => return esc,
                }
            }
            // Exhaustive only with a plain trailing `else` (the
            // segment *before* the last block; `segs` interleaves
            // around blocks, with trailing text after the last one).
            let exhaustive = stmt.blocks.len() >= 2
                && stmt
                    .segs
                    .get(stmt.blocks.len() - 1)
                    .map(|s| s.trim() == "else")
                    .unwrap_or(false);
            return if all_discharged && exhaustive {
                Outcome::Discharged
            } else {
                Outcome::Neutral
            };
        }

        if !is_let && head.starts_with("match ") && stmt.blocks.len() == 1 {
            let arms = split_arms(self.blanked, stmt.blocks[0]);
            if arms.is_empty() {
                return Outcome::Neutral;
            }
            let mut all_discharged = true;
            for arm in &arms {
                let o = match arm.block {
                    Some(span) => self.eval_block(span, msg_param),
                    None => self.eval_text(&arm.expr, msg_param, arm.at),
                };
                match o {
                    Outcome::Discharged => {}
                    Outcome::Neutral => all_discharged = false,
                    esc @ Outcome::Escaped(_) => return esc,
                }
            }
            // A match is exhaustive by construction; all arms
            // discharging means the statement discharges.
            return if all_discharged { Outcome::Discharged } else { Outcome::Neutral };
        }

        // Loops may run zero times: anything inside is Neutral at
        // best, but an escape inside still escapes.
        if !is_let
            && (head.starts_with("for ")
                || head.starts_with("while ")
                || head.starts_with("loop"))
        {
            for &span in &stmt.blocks {
                if let esc @ Outcome::Escaped(_) = self.eval_block(span, msg_param) {
                    return esc;
                }
            }
            return Outcome::Neutral;
        }

        // Plain statement (including `let` with an init expression).
        self.eval_text(full, msg_param, stmt.full.0)
    }

    /// Expression-level rules shared by plain statements and
    /// expression-bodied match arms.
    fn eval_text(&self, text: &str, msg_param: &str, at: usize) -> Outcome {
        if DISCHARGE.iter().any(|t| text.contains(t)) {
            return Outcome::Discharged;
        }
        // Parking the request for a later reply counts: the message is
        // cloned into a pending table.
        if !msg_param.is_empty() && text.contains(&format!("{msg_param}.clone()")) {
            return Outcome::Discharged;
        }
        // A call to a local helper that always discharges.
        for name in &self.discharging {
            if calls(text, name) {
                return Outcome::Discharged;
            }
        }
        if let Some(off) = find_word(text, "return") {
            // Point the escape site at the `return` itself so the
            // waiver lookup and the diagnostic land on the right line.
            return Outcome::Escaped(at + off);
        }
        Outcome::Neutral
    }

    /// Is there a waiver on `line` or the three lines above it?
    fn waived(&self, line: usize) -> bool {
        let lo = line.saturating_sub(4);
        (lo..line).any(|k| self.raw_lines.get(k).is_some_and(|l| l.contains(WAIVER)))
            || self.raw_lines.get(line - 1).is_some_and(|l| l.contains(WAIVER))
    }
}

/// True if `text` contains a call to `name` (word boundary before,
/// `(` after), in any of the bare / `self.` / `Self::` forms.
fn calls(text: &str, name: &str) -> bool {
    let pat = format!("{name}(");
    let mut from = 0;
    while let Some(p) = text[from..].find(&pat) {
        let abs = from + p;
        let boundary = abs == 0 || {
            let b = text.as_bytes()[abs - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if boundary && !text[..abs].trim_end().ends_with("fn") {
            return true;
        }
        from = abs + pat.len();
    }
    false
}

/// Name of the `&Message` parameter in a signature, or `"msg"`.
pub(crate) fn message_param(sig: &str) -> String {
    let Some(open) = sig.find('(') else { return "msg".into() };
    let params = &sig[open + 1..sig.rfind(')').unwrap_or(sig.len())];
    for param in params.split(',') {
        let mut halves = param.splitn(2, ':');
        let (Some(name), Some(ty)) = (halves.next(), halves.next()) else { continue };
        if ty.contains("Message") {
            return name.trim().trim_start_matches("mut ").to_owned();
        }
    }
    "msg".into()
}

/// Collapses runs of whitespace for single-line diagnostics.
fn compact_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut ws = false;
    for c in s.chars() {
        if c.is_whitespace() {
            ws = true;
        } else {
            if ws && !out.is_empty() {
                out.push(' ');
            }
            ws = false;
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        check_reply(&ParsedFile::parse("crates/modules/src/demo.rs", src), &kind_table())
    }

    const OK: &str = r#"
impl Demo {
    fn handle_request(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        match KvsMethod::from_method(msg.header.topic.method()) {
            Some(KvsMethod::Get) => ctx.respond(msg, Value::object()),
            Some(KvsMethod::Put) => {
                if self.ready {
                    ctx.respond(msg, Value::object());
                } else {
                    ctx.respond_err(msg, 1);
                }
            }
            Some(KvsMethod::FenceUp) => self.absorb(msg),
            Some(KvsMethod::Commit) => {
                self.pending.insert(msg.header.id, msg.clone());
            }
            Some(KvsMethod::Stats) => self.reply_stats(ctx, msg),
            _ => {}
        }
    }
    fn reply_stats(&self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        ctx.respond(msg, self.stats());
    }
}
"#;

    #[test]
    fn discharged_arms_are_clean() {
        let v = run(OK);
        // The wildcard arm is not obligated (no variant named), and
        // every RPC arm discharges directly, via helper, or by parking.
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn oneway_arms_carry_no_obligation() {
        // FenceUp is OneWay: `self.absorb(msg)` never responds and that
        // is fine (covered by OK above); an Rpc arm doing the same fails.
        let bad = OK.replace("Some(KvsMethod::Get) => ctx.respond(msg, Value::object()),", "Some(KvsMethod::Get) => self.absorb(msg),");
        let v = run(&bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("KvsMethod::Get"), "{}", v[0]);
    }

    #[test]
    fn early_return_without_reply_is_flagged() {
        let src = r#"
fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
    match KvsMethod::from_method(msg.header.topic.method()) {
        Some(KvsMethod::Commit) => {
            if self.busy {
                return;
            }
            ctx.respond(msg, Value::object());
        }
        None => ctx.respond_err(msg, 38),
    }
}
"#;
        let v = run(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("returns without a reply"), "{}", v[0]);
    }

    #[test]
    fn waiver_permits_intentional_drop() {
        let src = r#"
fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
    match KvsMethod::from_method(msg.header.topic.method()) {
        Some(KvsMethod::Commit) => {
            if self.duplicate(msg) {
                // flux-lint: allow(reply)
                return;
            }
            ctx.respond(msg, Value::object());
        }
        None => ctx.respond_err(msg, 38),
    }
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn fallthrough_if_without_else_is_flagged() {
        let src = r#"
fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
    match KvsMethod::from_method(msg.header.topic.method()) {
        Some(KvsMethod::Get) => {
            if self.ready {
                ctx.respond(msg, Value::object());
            }
        }
        None => ctx.respond_err(msg, 38),
    }
}
"#;
        let v = run(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("fall through"), "{}", v[0]);
    }

    #[test]
    fn none_arm_is_obligated() {
        let src = r#"
fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
    match KvsMethod::from_method(msg.header.topic.method()) {
        Some(KvsMethod::Get) => ctx.respond(msg, Value::object()),
        None => {}
    }
}
"#;
        let v = run(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("`None`"), "{}", v[0]);
    }

    #[test]
    fn decoders_without_ctx_are_skipped() {
        let src = r#"
fn decode_reply(msg: &Message) -> Reply {
    match KvsMethod::from_method(msg.header.topic.method()) {
        Some(KvsMethod::Get) => Reply::Get,
        _ => Reply::Other,
    }
}
"#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn let_else_that_discharges_then_diverges_is_fine() {
        let src = r#"
fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
    match KvsMethod::from_method(msg.header.topic.method()) {
        Some(KvsMethod::Get) => {
            let Some(key) = msg.payload.get("key") else {
                ctx.respond_err(msg, 22);
                return;
            };
            ctx.respond(msg, self.lookup(key));
        }
        None => ctx.respond_err(msg, 38),
    }
}
"#;
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn let_else_that_silently_diverges_is_flagged() {
        let src = r#"
fn handle(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
    match KvsMethod::from_method(msg.header.topic.method()) {
        Some(KvsMethod::Get) => {
            let Some(key) = msg.payload.get("key") else {
                return;
            };
            ctx.respond(msg, self.lookup(key));
        }
        None => ctx.respond_err(msg, 38),
    }
}
"#;
        let v = run(src);
        assert_eq!(v.len(), 1, "{v:?}");
    }
}
