//! Cross-crate lock-order analysis.
//!
//! Collects every `Mutex`/`RwLock` acquisition site (`.lock()`,
//! `.read()`, `.write()` with empty argument lists) per function,
//! propagates acquisition sets through the intra-crate call graph, adds
//! an edge `held → acquired` for every lock taken while another is
//! held, and fails on any cycle in the resulting global graph.
//!
//! Locks are identified by the final field or binding name of the
//! receiver expression (`self.readers.lock()` → `readers`). Name reuse
//! across crates conservatively merges nodes — a false cycle from
//! merging is a prompt to rename one of the locks, which is cheap and
//! self-documenting. A binding of the guard (`let g = x.lock()`) holds
//! the lock for the rest of the enclosing block; guards bound to `_` or
//! used inline are transient and create edges only for acquisitions in
//! the same statement.

use crate::analysis::{
    binding_of, calls_in, line_of, receiver_name, split_stmts, FnDef, ParsedFile, Stmt,
};
use crate::{Rule, Violation};
use std::collections::{BTreeMap, BTreeSet};

/// The acquisition tokens. Empty parens keep `Read::read(&mut buf)` and
/// `Write::write(&buf)` out of scope — `RwLock` accessors take no
/// arguments.
const ACQUIRE: &[&str] = &[".lock()", ".read()", ".write()"];

/// Where an edge was first observed, for diagnostics.
type Provenance = (String, usize); // (file, line)

/// A lock-order fact base for one workspace scan.
#[derive(Default)]
pub(crate) struct LockGraph {
    /// `held → acquired-after` edges with first-seen provenance.
    edges: BTreeMap<String, BTreeMap<String, Provenance>>,
    /// Per-function set of locks (transitively) acquired inside it,
    /// keyed by `crate::fn_name`.
    acquires: BTreeMap<String, BTreeSet<String>>,
    /// Per-function calls to same-crate functions, keyed like `acquires`.
    calls: BTreeMap<String, BTreeSet<String>>,
    /// Deferred `held → callee` obligations resolved after the
    /// acquisition-set fixpoint.
    call_edges: Vec<(String, String, Provenance)>, // (held lock, callee key, where)
}

/// Runs the analysis over the shared parsed-file cache and returns one
/// violation per distinct cycle.
pub(crate) fn check_lock_order(files: &[ParsedFile]) -> Vec<Violation> {
    let mut graph = LockGraph::default();
    for pf in files {
        let crate_name = pf.crate_name();
        let fn_names: BTreeSet<String> = pf.fns.iter().map(|f| f.name.clone()).collect();
        for f in &pf.fns {
            graph.scan_fn(&pf.rel, crate_name, &pf.stripped, f, &fn_names);
        }
    }
    graph.resolve_calls();
    graph.find_cycles()
}

impl LockGraph {
    fn scan_fn(
        &mut self,
        rel: &str,
        crate_name: &str,
        blanked: &str,
        f: &FnDef,
        fn_names: &BTreeSet<String>,
    ) {
        let key = format!("{crate_name}::{}", f.name);
        let mut held: Vec<String> = Vec::new();
        self.walk_block(rel, crate_name, blanked, f.body, fn_names, &key, &mut held);
    }

    /// Walks one block, tracking which locks are held by `let`-bound
    /// guards. Blocks scope their guards: anything bound inside is
    /// released on exit.
    #[allow(clippy::too_many_arguments)]
    fn walk_block(
        &mut self,
        rel: &str,
        crate_name: &str,
        blanked: &str,
        span: (usize, usize),
        fn_names: &BTreeSet<String>,
        key: &str,
        held: &mut Vec<String>,
    ) {
        let base = held.len();
        for stmt in split_stmts(blanked, span) {
            self.scan_stmt(rel, crate_name, blanked, &stmt, fn_names, key, held);
            for &block in &stmt.blocks {
                self.walk_block(rel, crate_name, blanked, block, fn_names, key, held);
            }
        }
        held.truncate(base);
    }

    /// Handles the statement's head text: acquisition sites (in textual
    /// order) and calls to same-crate functions.
    #[allow(clippy::too_many_arguments)]
    fn scan_stmt(
        &mut self,
        rel: &str,
        crate_name: &str,
        blanked: &str,
        stmt: &Stmt,
        fn_names: &BTreeSet<String>,
        key: &str,
        held: &mut Vec<String>,
    ) {
        let head = stmt.segs.join(" ");
        let line = line_of(blanked, stmt.full.0);
        let bound = binding_of(&head);
        let mut transient: Vec<String> = Vec::new();
        let mut search = 0usize;
        while let Some((pos, tok)) = ACQUIRE
            .iter()
            .filter_map(|t| head[search..].find(t).map(|p| (search + p, *t)))
            .min()
        {
            if let Some(lock) = receiver_name(&head[..pos]) {
                self.acquires.entry(key.to_owned()).or_default().insert(lock.clone());
                for h in held.iter().chain(transient.iter()) {
                    if *h != lock {
                        self.add_edge(h.clone(), lock.clone(), (rel.to_owned(), line));
                    }
                }
                if bound.is_some() {
                    held.push(lock);
                } else {
                    transient.push(lock);
                }
            }
            search = pos + tok.len();
        }
        // Same-crate calls made while locks are held extend the order
        // through the callee's (transitive) acquisition set.
        for callee in calls_in(&head, fn_names) {
            let callee_key = format!("{crate_name}::{callee}");
            self.calls.entry(key.to_owned()).or_default().insert(callee_key.clone());
            for h in held.iter().chain(transient.iter()) {
                self.call_edges.push((h.clone(), callee_key.clone(), (rel.to_owned(), line)));
            }
        }
    }

    fn add_edge(&mut self, from: String, to: String, at: Provenance) {
        self.edges.entry(from).or_default().entry(to).or_insert(at);
    }

    /// Fixpoint over the call graph: each function's acquisition set
    /// absorbs its callees', then deferred held→callee obligations
    /// become held→lock edges.
    fn resolve_calls(&mut self) {
        loop {
            let mut changed = false;
            let keys: Vec<String> = self.calls.keys().cloned().collect();
            for key in keys {
                let callees = self.calls[&key].clone();
                let mut add: BTreeSet<String> = BTreeSet::new();
                for callee in &callees {
                    if let Some(set) = self.acquires.get(callee) {
                        add.extend(set.iter().cloned());
                    }
                }
                let mine = self.acquires.entry(key).or_default();
                for lock in add {
                    changed |= mine.insert(lock);
                }
            }
            if !changed {
                break;
            }
        }
        for (held, callee, at) in std::mem::take(&mut self.call_edges) {
            if let Some(set) = self.acquires.get(&callee) {
                for lock in set.clone() {
                    if lock != held {
                        self.add_edge(held.clone(), lock, at.clone());
                    }
                }
            }
        }
    }

    /// DFS three-color cycle detection; one violation per back edge,
    /// reported at the provenance of the edge closing the cycle.
    fn find_cycles(&self) -> Vec<Violation> {
        let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 0 new, 1 on path, 2 done
        let mut path: Vec<&str> = Vec::new();
        let mut out = Vec::new();
        for start in self.edges.keys() {
            self.dfs(start, &mut color, &mut path, &mut out);
        }
        out
    }

    fn dfs<'a>(
        &'a self,
        node: &'a str,
        color: &mut BTreeMap<&'a str, u8>,
        path: &mut Vec<&'a str>,
        out: &mut Vec<Violation>,
    ) {
        match color.get(node) {
            Some(1) | Some(2) => return,
            _ => {}
        }
        color.insert(node, 1);
        path.push(node);
        if let Some(succs) = self.edges.get(node) {
            for (succ, at) in succs {
                match color.get(succ.as_str()).copied().unwrap_or(0) {
                    0 => self.dfs(succ, color, path, out),
                    1 => {
                        // Back edge: the path from `succ` to `node` plus
                        // this edge is a cycle.
                        let pos = path.iter().position(|n| *n == succ).unwrap_or(0);
                        out.push(Violation {
                            file: at.0.clone(),
                            line: at.1,
                            rule: Rule::LockOrder,
                            message: format!(
                                "lock-order cycle: {} -> {succ}",
                                path[pos..].join(" -> ")
                            ),
                        });
                    }
                    _ => {}
                }
            }
        }
        path.pop();
        color.insert(node, 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(src: &str) -> Vec<ParsedFile> {
        vec![ParsedFile::parse("crates/demo/src/lib.rs", src)]
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "impl S {\n fn a(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); use_(g, h); }\n fn b(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); use_(g, h); }\n}\n";
        assert!(check_lock_order(&files(src)).is_empty());
    }

    #[test]
    fn direct_inversion_is_a_cycle() {
        let src = "impl S {\n fn a(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); use_(g, h); }\n fn b(&self) { let g = self.beta.lock(); let h = self.alpha.lock(); use_(g, h); }\n}\n";
        let v = check_lock_order(&files(src));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("alpha") && v[0].message.contains("beta"), "{}", v[0]);
    }

    #[test]
    fn inversion_through_a_callee_is_caught() {
        let src = "impl S {\n fn outer(&self) { let g = self.alpha.lock(); self.inner(); drop(g); }\n fn inner(&self) { let b = self.beta.lock(); touch(b); }\n fn rev(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); use_(a, b); }\n}\n";
        let v = check_lock_order(&files(src));
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn block_scope_releases_guards() {
        let src = "impl S {\n fn a(&self) { { let g = self.alpha.lock(); touch(g); } let h = self.beta.lock(); touch(h); }\n fn b(&self) { { let g = self.beta.lock(); touch(g); } let h = self.alpha.lock(); touch(h); }\n}\n";
        assert!(check_lock_order(&files(src)).is_empty(), "scoped guards must not order");
    }

    #[test]
    fn single_lock_tree_is_clean() {
        let src =
            "fn spawn(&self) { self.readers.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(h); }\n";
        assert!(check_lock_order(&files(src)).is_empty());
    }

    #[test]
    fn io_read_write_are_not_locks() {
        let src = "fn f(s: &mut TcpStream) { let n = s.read(&mut buf); s.write(&buf[..n]); }\n";
        assert!(check_lock_order(&files(src)).is_empty());
    }
}
