//! Hot-path allocation accounting (`hotalloc`).
//!
//! The broker's per-message path — frame encode/decode, sim event
//! dispatch, kvs batch apply and shard push, broker routing — runs
//! once per message at paper-scale rates (millions of events per
//! second in the 8192-rank cells). A single `format!` or fresh
//! `Vec::new` on that path turns into millions of allocator round
//! trips; PR 5/6 bought their measured wins precisely by hunting these
//! down by hand. This pass keeps them from creeping back.
//!
//! ## Hot-path registry
//!
//! Hot roots are named explicitly — `(file, fn)` pairs in
//! [`HOT_ROOTS`] — because "hot" is a design property, not something
//! inferable from syntax. Hotness then propagates *callee-ward*
//! through the per-definition call index to depth [`HOT_DEPTH`]: a
//! helper called from `flush_batch` runs just as often as
//! `flush_batch` itself. (Caller-ward would be wrong: calling a hot
//! function does not make the caller hot.)
//!
//! ## Condemned and exonerated
//!
//! Condemned per statement: `Vec::new`/`vec![]`, `String::new`, fresh
//! map/set constructors, `.to_vec()`/`.to_owned()`/`.to_string()`,
//! `format!`, `.clone()`, and fresh `.collect()`. Exonerated:
//!
//! * statements mentioning `with_capacity` — pre-reserved buffers are
//!   the sanctioned shape;
//! * statements inside `Err(`/`map_err(`/`unwrap_or_else(` — the cold
//!   error path can afford to allocate its message;
//! * top-level statements *before the first top-level loop* — one-time
//!   setup amortized over the loop's iterations;
//! * `push`/`extend`/`resize`/`clear` are never condemned — amortized
//!   growth into a reused buffer is the point of the `_into` APIs.
//!
//! ## Waivers
//!
//! `// flux-lint: allow(hotalloc) — <justification>` waives a site;
//! the justification is mandatory. The canonical justified entries are
//! the broker's fan-out `msg.clone()`s: `Message` clones are
//! header-shallow (`Topic` is `Arc<str>`-backed, `Payload` holds an
//! `Arc<PayloadInner>`), so the clone is a refcount bump, not a copy.

use crate::analysis::{display_key, line_of, split_stmts, waiver_status, DefIndex, ParsedFile, Stmt};
use crate::{Rule, Violation, ALLOW_REACH};
use std::collections::BTreeMap;

/// Waiver comment token (checked on raw lines).
const WAIVER: &str = "flux-lint: allow(hotalloc)";

/// The hot-path registry: `(file, fn)` roots whose bodies (and callees
/// to [`HOT_DEPTH`]) run once per message. Kept in sync with
/// DESIGN.md §18's table.
const HOT_ROOTS: &[(&str, &str)] = &[
    // wire framing chain
    ("crates/wire/src/codec.rs", "encode_into"),
    ("crates/wire/src/frame.rs", "write_frame_into"),
    ("crates/wire/src/frame.rs", "read_frame_into"),
    // sim event engine
    ("crates/sim/src/engine.rs", "dispatch"),
    ("crates/sim/src/engine.rs", "dispatch_pending"),
    ("crates/sim/src/engine.rs", "push_event"),
    ("crates/sim/src/arena.rs", "insert"),
    ("crates/sim/src/arena.rs", "take"),
    ("crates/sim/src/queue.rs", "push"),
    ("crates/sim/src/queue.rs", "migrate"),
    ("crates/sim/src/queue.rs", "locate_min"),
    ("crates/sim/src/queue.rs", "peek_min"),
    ("crates/sim/src/queue.rs", "pop_min"),
    // kvs batch apply and shard push
    ("crates/kvs/src/module.rs", "shard_apply"),
    ("crates/kvs/src/module.rs", "note_push"),
    ("crates/kvs/src/module.rs", "handle_shard_push"),
    ("crates/kvs/src/module.rs", "flush_batch"),
    // broker route
    ("crates/broker/src/broker.rs", "send_tree"),
    ("crates/broker/src/broker.rs", "route_response"),
    ("crates/broker/src/broker.rs", "route_ring"),
    ("crates/broker/src/broker.rs", "fan_children"),
    ("crates/broker/src/broker.rs", "dispatch_request"),
    ("crates/broker/src/broker.rs", "deliver_event_locally"),
];

/// How many call hops hotness propagates from a root.
const HOT_DEPTH: usize = 2;

/// Condemned allocation tokens, with what to call them.
const CONDEMNED: &[(&str, &str)] = &[
    ("Vec::new()", "fresh `Vec::new`"),
    ("vec![", "fresh `vec![]`"),
    ("String::new()", "fresh `String::new`"),
    ("HashMap::new()", "fresh `HashMap::new`"),
    ("HashSet::new()", "fresh `HashSet::new`"),
    ("BTreeMap::new()", "fresh `BTreeMap::new`"),
    ("BTreeSet::new()", "fresh `BTreeSet::new`"),
    ("VecDeque::new()", "fresh `VecDeque::new`"),
    (".to_vec()", "`to_vec` copy"),
    (".to_owned()", "`to_owned` copy"),
    (".to_string()", "`to_string` allocation"),
    ("format!(", "`format!` allocation"),
    (".clone()", "`clone` per message"),
    (".collect()", "fresh `collect`"),
    (".collect::<", "fresh `collect`"),
];

/// Statement-level exonerations: a statement containing any of these is
/// off the hook (pre-reserved buffer, or cold error path).
const EXONERATED: &[&str] = &["with_capacity", "Err(", "map_err(", "unwrap_or_else("];

/// One allocation site found in a hot function.
struct Site {
    /// 1-based line of the allocation.
    line: usize,
    /// What to call it, for diagnostics.
    what: &'static str,
}

/// Runs the pass over the shared parsed-file cache.
pub(crate) fn check_hotalloc(files: &[ParsedFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    let index = DefIndex::build(files);

    // Definition lookup and call edges, keyed like the index.
    let mut defs: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut edges: BTreeMap<String, Vec<(String, usize)>> = BTreeMap::new();
    let mut roots: Vec<String> = Vec::new();
    for (pi, pf) in files.iter().enumerate() {
        let crate_name = pf.crate_name().to_owned();
        for (i, f) in pf.fns.iter().enumerate() {
            let key = DefIndex::key(&crate_name, &f.name, &pf.rel, i);
            if HOT_ROOTS.contains(&(pf.rel.as_str(), f.name.as_str())) {
                roots.push(key.clone());
            }
            edges.insert(key.clone(), index.edges(pf, f));
            defs.insert(key, (pi, i));
        }
    }

    // Callee-ward hotness to HOT_DEPTH, keeping the root-ward chain.
    let mut hot: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut frontier = roots;
    for k in &frontier {
        hot.insert(k.clone(), vec![k.clone()]);
    }
    for _ in 0..HOT_DEPTH {
        let mut next = Vec::new();
        for caller in &frontier {
            let chain = hot.get(caller).cloned().unwrap_or_default();
            for (callee, _) in edges.get(caller).into_iter().flatten() {
                // Constructors are one-time setup, not per-message work
                // (and `Type::new(` matches the bare-call pattern, so a
                // `Vec::new()` would otherwise drag `Broker::new` in).
                if callee.contains("::new@") {
                    continue;
                }
                if defs.contains_key(callee) && !hot.contains_key(callee) {
                    let mut c = chain.clone();
                    c.push(callee.clone());
                    hot.insert(callee.clone(), c);
                    next.push(callee.clone());
                }
            }
        }
        frontier = next;
    }

    for (key, chain) in &hot {
        let (pi, fi) = defs[key];
        let pf = &files[pi];
        let f = &pf.fns[fi];
        let raw_lines: Vec<&str> = pf.raw.lines().collect();
        let mut sites = Vec::new();
        scan_fn(&pf.stripped, f.body, &mut sites);
        let via = if chain.len() > 1 {
            format!(
                " (hot via {})",
                chain.iter().map(|k| display_key(k)).collect::<Vec<_>>().join(" -> ")
            )
        } else {
            String::new()
        };
        for s in sites {
            match waiver_status(&raw_lines, s.line, WAIVER, ALLOW_REACH) {
                Some(true) => {}
                Some(false) => out.push(Violation {
                    file: pf.rel.clone(),
                    line: s.line,
                    rule: Rule::HotAlloc,
                    message: format!(
                        "`allow(hotalloc)` without a justification — write \
                         `// flux-lint: allow(hotalloc) — <why this allocation is fine>` ({})",
                        s.what
                    ),
                }),
                None => out.push(Violation {
                    file: pf.rel.clone(),
                    line: s.line,
                    rule: Rule::HotAlloc,
                    message: format!(
                        "{} in hot path `{}`{via} — reuse a buffer, pre-reserve, or justify \
                         with `// flux-lint: allow(hotalloc) — <why>`",
                        s.what,
                        display_key(key),
                    ),
                }),
            }
        }
    }

    out.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.message == b.message);
    out
}

/// Scans a hot function body: top-level statements before the first
/// top-level loop are one-time setup (exonerated); everything else is
/// scanned statement-by-statement, recursing into nested blocks.
fn scan_fn(blanked: &str, body: (usize, usize), out: &mut Vec<Site>) {
    let stmts = split_stmts(blanked, body);
    let first_loop = stmts.iter().position(is_loop_stmt);
    for (i, stmt) in stmts.iter().enumerate() {
        if let Some(lp) = first_loop {
            if i < lp {
                continue; // one-time setup before the loop
            }
        }
        scan_stmt(blanked, stmt, out);
    }
}

/// Scans one statement's own text (nested block interiors blanked so
/// they are only counted by the recursive walk), then recurses.
fn scan_stmt(blanked: &str, stmt: &Stmt, out: &mut Vec<Site>) {
    let own = stmt.own_text(blanked);
    if !EXONERATED.iter().any(|t| own.contains(t)) {
        for (tok, what) in CONDEMNED {
            if let Some(p) = own.find(tok) {
                out.push(Site { line: line_of(blanked, stmt.full.0 + p), what });
            }
        }
    }
    for &block in &stmt.blocks {
        for inner in &split_stmts(blanked, block) {
            scan_stmt(blanked, inner, out);
        }
    }
}

/// Is this a top-level loop statement?
fn is_loop_stmt(stmt: &Stmt) -> bool {
    let head = crate::analysis::skip_comment_markers(stmt.head());
    head.starts_with("for ")
        || head.starts_with("while ")
        || head.starts_with("while(")
        || head.starts_with("loop ")
        || head.starts_with("loop{")
        || head == "loop"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)]) -> Vec<Violation> {
        let parsed: Vec<ParsedFile> =
            files.iter().map(|(rel, src)| ParsedFile::parse(rel, src)).collect();
        check_hotalloc(&parsed)
    }

    #[test]
    fn alloc_in_hot_root_fires() {
        let src = "impl Message {\n\
                   \x20pub fn encode_into(&self, out: &mut Vec<u8>) {\n\
                   \x20 let tag = format!(\"{}\", self.kind);\n\
                   \x20 out.extend(tag.as_bytes());\n\
                   \x20}\n}\n";
        let v = run(&[("crates/wire/src/codec.rs", src)]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("format!"), "{}", v[0]);
        assert!(v[0].message.contains("encode_into"), "{}", v[0]);
    }

    #[test]
    fn cold_fns_and_cold_paths_are_clean() {
        let src = "pub fn helper() -> Vec<u8> { Vec::new() }\n\
                   impl Message {\n\
                   \x20pub fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), E> {\n\
                   \x20 let mut scratch = Vec::with_capacity(64);\n\
                   \x20 scratch.push(1);\n\
                   \x20 self.check().map_err(|e| format!(\"bad: {e}\"))?;\n\
                   \x20 if out.is_empty() { return Err(format!(\"empty {}\", self.kind)); }\n\
                   \x20 out.extend(scratch.iter());\n\
                   \x20 Ok(())\n\
                   \x20}\n}\n";
        let v = run(&[("crates/wire/src/codec.rs", src)]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn setup_before_loop_is_exonerated_but_loop_body_is_not() {
        let src = "impl Engine {\n\
                   \x20fn dispatch(&mut self, kind: EventKind) {\n\
                   \x20 let mut names = Vec::new();\n\
                   \x20 for ev in self.queue.drain() {\n\
                   \x20  let label = ev.topic.to_string();\n\
                   \x20  names.push(label);\n\
                   \x20 }\n\
                   \x20}\n}\n";
        let v = run(&[("crates/sim/src/engine.rs", src)]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("to_string"), "{}", v[0]);
    }

    #[test]
    fn hotness_propagates_to_callees_with_provenance() {
        let src = "impl Engine {\n\
                   \x20fn dispatch(&mut self, kind: EventKind) { self.deliver(kind); }\n\
                   \x20fn deliver(&mut self, kind: EventKind) {\n\
                   \x20 let copy = self.buf.to_vec();\n\
                   \x20 self.sink(copy);\n\
                   \x20}\n}\n";
        let v = run(&[("crates/sim/src/engine.rs", src)]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("to_vec"), "{}", v[0]);
        assert!(v[0].message.contains("hot via"), "{}", v[0]);
        assert!(v[0].message.contains("dispatch -> "), "{}", v[0]);
    }

    #[test]
    fn hotness_stops_at_depth_two() {
        let src = "impl Engine {\n\
                   \x20fn dispatch(&mut self, kind: EventKind) { self.a(kind); }\n\
                   \x20fn a(&mut self, kind: EventKind) { self.b(kind); }\n\
                   \x20fn b(&mut self, kind: EventKind) { self.c(kind); }\n\
                   \x20fn c(&mut self, kind: EventKind) { let _v = self.buf.to_vec(); }\n}\n";
        let v = run(&[("crates/sim/src/engine.rs", src)]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn justified_waiver_is_clean_and_bare_waiver_fires() {
        let good = "impl B {\n\
                    \x20fn fan_children(&mut self, msg: &Message) {\n\
                    \x20 // flux-lint: allow(hotalloc) — Message clone is header-shallow, payload is Arc\n\
                    \x20 self.out.push(msg.clone());\n\
                    \x20}\n}\n";
        let v = run(&[("crates/broker/src/broker.rs", good)]);
        assert!(v.is_empty(), "{v:?}");

        let bad = "impl B {\n\
                   \x20fn fan_children(&mut self, msg: &Message) {\n\
                   \x20 // flux-lint: allow(hotalloc)\n\
                   \x20 self.out.push(msg.clone());\n\
                   \x20}\n}\n";
        let v = run(&[("crates/broker/src/broker.rs", bad)]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("justification"), "{}", v[0]);
    }

    #[test]
    fn alloc_after_first_loop_is_still_flagged() {
        let src = "impl B {\n\
                   \x20fn deliver_event_locally(&mut self, msg: Message) -> bool {\n\
                   \x20 for i in 0..self.subs.len() {\n\
                   \x20  self.visit(i);\n\
                   \x20 }\n\
                   \x20 let mut to_clients: Vec<ClientId> = Vec::new();\n\
                   \x20 for (&client, prefixes) in &self.core.client_subs {\n\
                   \x20  to_clients.push(client);\n\
                   \x20 }\n\
                   \x20 true\n\
                   \x20}\n}\n";
        let v = run(&[("crates/broker/src/broker.rs", src)]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("Vec::new"), "{}", v[0]);
    }

    #[test]
    fn non_hot_files_are_ignored() {
        let src = "pub fn anything() { let _s = format!(\"x{}\", 1); }\n";
        let v = run(&[("crates/bench/src/demo.rs", src)]);
        assert!(v.is_empty(), "{v:?}");
    }
}
