//! End-to-end negative tests: each `fixtures/*.rs.bad` file, planted as
//! real source in a scratch workspace, must make [`flux_lint::lint_tree`]
//! report the violation it demonstrates — proving the tree walk (not
//! just the per-file scanner) catches it.

use flux_lint::{lint_tree, Rule};
use std::path::{Path, PathBuf};

/// Copies `fixture` into a scratch workspace at crates-relative `rel`
/// and lints the scratch tree.
fn plant_and_lint(fixture: &str, rel: &str) -> Vec<flux_lint::Violation> {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let scratch: PathBuf = std::env::temp_dir()
        .join(format!("flux-lint-e2e-{}-{}", std::process::id(), fixture.replace('.', "_")));
    let dst = scratch.join(rel);
    std::fs::create_dir_all(dst.parent().expect("rel has a parent")).expect("mkdir scratch");
    std::fs::copy(fixtures.join(fixture), &dst).expect("copy fixture");
    let result = lint_tree(&scratch).expect("walk scratch tree");
    std::fs::remove_dir_all(&scratch).ok();
    result
}

#[test]
fn topic_literal_fixture_fails_the_tree() {
    let v = plant_and_lint("topic_literal.rs.bad", "crates/modules/src/fake.rs");
    assert!(v.iter().any(|x| x.rule == Rule::TopicLiteral), "{v:?}");
}

#[test]
fn panic_fixture_fails_the_tree() {
    let v = plant_and_lint("panic_unwrap.rs.bad", "crates/kvs/src/fake.rs");
    assert!(v.iter().any(|x| x.rule == Rule::Panic), "{v:?}");
}

#[test]
fn wildcard_fixture_fails_the_tree() {
    let v = plant_and_lint("wildcard_match.rs.bad", "crates/wire/src/fake.rs");
    assert!(v.iter().any(|x| x.rule == Rule::Wildcard), "{v:?}");
}

#[test]
fn missing_header_fixture_fails_the_tree() {
    let v = plant_and_lint("missing_header.rs.bad", "crates/fake/src/lib.rs");
    assert_eq!(v.iter().filter(|x| x.rule == Rule::Header).count(), 2, "{v:?}");
}
