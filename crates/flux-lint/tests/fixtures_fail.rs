//! End-to-end negative tests: each `fixtures/*.rs.bad` file, planted as
//! real source in a scratch workspace, must make [`flux_lint::lint_tree`]
//! report the violation it demonstrates — proving the tree walk (not
//! just the per-file scanner) catches it.

use flux_lint::{lint_tree, Rule};
use std::path::{Path, PathBuf};

/// Copies `fixture` into a scratch workspace at crates-relative `rel`
/// and lints the scratch tree.
fn plant_and_lint(fixture: &str, rel: &str) -> Vec<flux_lint::Violation> {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let scratch: PathBuf = std::env::temp_dir()
        .join(format!("flux-lint-e2e-{}-{}", std::process::id(), fixture.replace('.', "_")));
    let dst = scratch.join(rel);
    std::fs::create_dir_all(dst.parent().expect("rel has a parent")).expect("mkdir scratch");
    std::fs::copy(fixtures.join(fixture), &dst).expect("copy fixture");
    let result = lint_tree(&scratch).expect("walk scratch tree");
    std::fs::remove_dir_all(&scratch).ok();
    result
}

#[test]
fn topic_literal_fixture_fails_the_tree() {
    let v = plant_and_lint("topic_literal.rs.bad", "crates/modules/src/fake.rs");
    assert!(v.iter().any(|x| x.rule == Rule::TopicLiteral), "{v:?}");
}

#[test]
fn panic_fixture_fails_the_tree() {
    let v = plant_and_lint("panic_unwrap.rs.bad", "crates/kvs/src/fake.rs");
    assert!(v.iter().any(|x| x.rule == Rule::Panic), "{v:?}");
}

#[test]
fn wildcard_fixture_fails_the_tree() {
    let v = plant_and_lint("wildcard_match.rs.bad", "crates/wire/src/fake.rs");
    assert!(v.iter().any(|x| x.rule == Rule::Wildcard), "{v:?}");
}

#[test]
fn missing_header_fixture_fails_the_tree() {
    let v = plant_and_lint("missing_header.rs.bad", "crates/fake/src/lib.rs");
    assert_eq!(v.iter().filter(|x| x.rule == Rule::Header).count(), 2, "{v:?}");
}

/// Count of one rule's violations when `fixture` is planted at `rel`.
fn rule_count(fixture: &str, rel: &str, rule: Rule) -> usize {
    plant_and_lint(fixture, rel).iter().filter(|x| x.rule == rule).count()
}

#[test]
fn taint_bad_fixture_fails_the_tree() {
    // Field iteration, local iteration, wall clock, and an unjustified
    // waiver: four distinct holes, each its own finding.
    let n = rule_count("taint_nondet.rs.bad", "crates/kvs/src/fake.rs", Rule::Nondet);
    assert_eq!(n, 4, "expected all four seeded nondet holes to fire");
}

#[test]
fn taint_good_fixture_is_clean() {
    let n = rule_count("taint_nondet.rs.good", "crates/kvs/src/fake.rs", Rule::Nondet);
    assert_eq!(n, 0, "the exonerated/waived patterns must stay silent");
}

#[test]
fn error_codes_bad_fixture_fails_the_tree() {
    // Undeclared EPERM, never-produced EINVAL, and helper-reached
    // ENOMEM: both directions, direct and one call away.
    let v = plant_and_lint("error_codes.rs.bad", "crates/modules/src/fake.rs");
    let hits: Vec<_> = v.iter().filter(|x| x.rule == Rule::ErrorCodes).collect();
    assert_eq!(hits.len(), 3, "{hits:?}");
    for code in ["EPERM", "EINVAL", "ENOMEM"] {
        assert!(hits.iter().any(|x| x.message.contains(code)), "missing {code}: {hits:?}");
    }
}

#[test]
fn error_codes_good_fixture_is_clean() {
    let n = rule_count("error_codes.rs.good", "crates/modules/src/fake.rs", Rule::ErrorCodes);
    assert_eq!(n, 0, "conforming handlers for every service must stay silent");
}

#[test]
fn shard_safety_bad_fixture_fails_the_tree() {
    // Discarded id, unregistered id, undiscriminated consume, and no
    // heartbeat-reachable sender: four distinct holes.
    let n = rule_count("shard_safety.rs.bad", "crates/kvs/src/fake.rs", Rule::ShardSafety);
    assert_eq!(n, 4, "expected all four seeded shard-safety holes to fire");
}

#[test]
fn block_bad_fixture_fails_the_tree() {
    // Sleep, bare recv, thread join, lock-across-write, bare waiver,
    // and an un-deadlined socket read: six distinct blocking shapes.
    let n = rule_count("block.rs.bad", "crates/sim/src/fake.rs", Rule::Block);
    assert_eq!(n, 6, "expected all six seeded blocking shapes to fire");
}

#[test]
fn block_good_fixture_is_clean() {
    let n = rule_count("block.rs.good", "crates/sim/src/fake.rs", Rule::Block);
    assert_eq!(n, 0, "deadline-driven/waived forms must stay silent");
}

#[test]
fn hotalloc_bad_fixture_fails_the_tree() {
    // Fresh Vec, format!, bare waiver, fresh collect, and a transitive
    // to_vec in a helper: five distinct per-message allocations.
    let n = rule_count("hotalloc.rs.bad", "crates/wire/src/codec.rs", Rule::HotAlloc);
    assert_eq!(n, 5, "expected all five seeded hot-path allocations to fire");
}

#[test]
fn hotalloc_good_fixture_is_clean() {
    let n =
        rule_count("hotalloc.rs.good", "crates/wire/src/codec.rs", Rule::HotAlloc);
    assert_eq!(n, 0, "pre-reserved/amortized/waived shapes must stay silent");
}

#[test]
fn shard_safety_good_fixture_is_clean() {
    let n = rule_count("shard_safety.rs.good", "crates/kvs/src/fake.rs", Rule::ShardSafety);
    assert_eq!(n, 0, "the full join-table discipline must stay silent");
}

/// Registry coverage: every Rpc/Stream method of every service must be
/// exercised by at least one fixture corpus, as a `<Enum>::<Variant>`
/// token. Adding a method to flux-proto without teaching the fixtures
/// about it fails here, keeping the corpora and the registry in step.
#[test]
fn every_registered_rpc_appears_in_a_fixture_corpus() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut corpus = String::new();
    for entry in std::fs::read_dir(&fixtures).expect("read fixtures dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().expect("file name").to_string_lossy().into_owned();
        if name.ends_with(".rs.good") || name.ends_with(".rs.bad") {
            corpus.push_str(&std::fs::read_to_string(&path).expect("read fixture"));
        }
    }
    // `get_version` → `GetVersion`, `shard.push` → `ShardPush`.
    let variant = |method: &str| -> String {
        method
            .split(['.', '_'])
            .map(|seg| {
                let mut cs = seg.chars();
                cs.next().map_or_else(String::new, |c| c.to_ascii_uppercase().to_string() + cs.as_str())
            })
            .collect()
    };
    let mut missing = Vec::new();
    for spec in flux_proto::methods() {
        if spec.kind == flux_proto::MethodKind::OneWay {
            continue; // no reply channel: nothing for the corpora to prove
        }
        let (service, method) = spec.topic.split_once('.').expect("topic has a service");
        let mut enum_name = service.to_owned();
        enum_name[..1].make_ascii_uppercase();
        let token = format!("{enum_name}Method::{}", variant(method));
        if !corpus.contains(&token) {
            missing.push(token);
        }
    }
    assert!(missing.is_empty(), "registered methods absent from every fixture corpus: {missing:?}");
}
