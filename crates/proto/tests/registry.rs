//! Registry exhaustiveness: every declared method and event topic
//! round-trips through its dispatch entry point, the aggregate
//! registries cover exactly the per-enum declarations, and no topic
//! string literal exists anywhere outside `crates/proto` and test
//! directories (the flux-lint topic rule, promoted to a unit test here
//! so registry drift fails in `cargo test`, not just in the lint job).

use flux_proto::{
    events, methods, BarrierMethod, CmbMethod, Event, GroupMethod, HbMethod, KvsMethod,
    LiveMethod, LogMethod, MethodSpec, MonMethod, ResvcMethod, Service, WexecMethod,
};
use std::collections::BTreeSet;

/// Round-trips one method enum: every variant dispatches back to itself
/// from its wire method string, and its spec appears in the aggregate
/// [`methods`] table with the same topic and kind.
macro_rules! round_trip {
    ($all:expr, $enum_name:ident, $specs:expr) => {
        for m in $enum_name::ALL {
            let topic = m.topic();
            assert_eq!(
                $enum_name::from_method(topic.method()),
                Some(*m),
                "{} does not dispatch back to itself",
                m.topic_str()
            );
            assert_eq!(m.topic_str(), topic.to_string(), "topic()/topic_str() disagree");
            let spec = $specs
                .iter()
                .find(|s: &&MethodSpec| s.topic == m.topic_str())
                .unwrap_or_else(|| panic!("{} missing from methods()", m.topic_str()));
            assert_eq!(spec.kind, m.kind(), "{}: kind drift", m.topic_str());
            $all.extend($enum_name::ALL.iter().map(|m| m.topic_str()));
        }
    };
}

#[test]
fn every_method_round_trips_through_dispatch() {
    let specs = methods();
    let mut all: BTreeSet<&str> = BTreeSet::new();
    round_trip!(all, CmbMethod, specs);
    round_trip!(all, HbMethod, specs);
    round_trip!(all, LiveMethod, specs);
    round_trip!(all, LogMethod, specs);
    round_trip!(all, MonMethod, specs);
    round_trip!(all, GroupMethod, specs);
    round_trip!(all, BarrierMethod, specs);
    round_trip!(all, KvsMethod, specs);
    round_trip!(all, WexecMethod, specs);
    round_trip!(all, ResvcMethod, specs);
    // The aggregate table holds exactly the union of the enums: an enum
    // missing from methods() (or from this test) fails here.
    let listed: BTreeSet<&str> = specs.iter().map(|s| s.topic).collect();
    assert_eq!(all, listed, "methods() and the per-service enums disagree");
    assert_eq!(specs.len(), listed.len(), "duplicate topic in methods()");
}

#[test]
fn unknown_methods_do_not_dispatch() {
    assert_eq!(KvsMethod::from_method("no_such_method"), None);
    assert_eq!(CmbMethod::from_method(""), None);
    // A method string from another service's namespace must not leak in.
    assert_eq!(BarrierMethod::from_method("put"), None);
}

#[test]
fn every_event_round_trips_through_dispatch() {
    let specs = events();
    for e in Event::ALL {
        assert_eq!(
            Event::from_topic_str(e.topic_str()),
            Some(*e),
            "{} does not dispatch back to itself",
            e.topic_str()
        );
        assert!(
            specs.iter().any(|s| s.topic == e.topic_str() && s.service == e.service()),
            "{} missing from events()",
            e.topic_str()
        );
    }
    assert_eq!(specs.len(), Event::ALL.len(), "events() and Event::ALL disagree");
    assert_eq!(Event::from_topic_str("kvs.nonsense"), None);
}

#[test]
fn every_topic_names_a_registered_service() {
    for spec in methods() {
        let svc = spec.topic.split('.').next().expect("topic has a service part");
        assert_eq!(
            Service::from_name(svc).map(|s| s.name()),
            Some(svc),
            "{}: unregistered service prefix",
            spec.topic
        );
    }
}

/// The flux-lint self-check as a tier-1 test: no topic string literal
/// outside `crates/proto` and test directories, and no other lint
/// violation anywhere. Keeps the conformance pass enforced even where
/// CI isn't running the dedicated lint job.
#[test]
fn workspace_has_no_stray_topic_literals() {
    let root = flux_lint::workspace_root();
    let violations = flux_lint::lint_tree(&root).expect("walk workspace");
    assert!(violations.is_empty(), "lint violations:\n{}", {
        let mut s = String::new();
        for v in &violations {
            s.push_str(&format!("  {v}\n"));
        }
        s
    });
}
