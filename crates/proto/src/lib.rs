//! # flux-proto
//!
//! The typed protocol registry: one table per Table-I comms module of
//! the ICPP'14 Flux paper (`hb`, `live`, `log`, `mon`, `group`,
//! `barrier`, `kvs`, `wexec`, `resvc`) plus the broker's builtin `cmb`
//! service. Every service name, request topic, event topic, and KVS key
//! namespace the session protocol uses is declared **here** — and only
//! here. The rest of the workspace routes through these enums, so a typo
//! in a topic is a compile error and an unhandled method is an
//! exhaustiveness error, not a silently dropped message. `flux-lint`
//! enforces the "only here" part: a string literal that looks like a
//! `<service>.<method>` topic anywhere outside this crate (and tests)
//! fails the lint pass.
//!
//! ## Layout
//!
//! * [`Service`] — the service (first topic component) of every comms
//!   module a broker hosts.
//! * One method enum per service (e.g. [`KvsMethod`], [`CmbMethod`]) with
//!   `topic()`, `topic_str()`, `kind()`, and `from_method()` for
//!   dispatch. Module dispatch is an exhaustive `match` over the enum;
//!   `None` from `from_method` is the one ENOSYS path.
//! * [`Event`] — every session-wide event topic on the root-sequenced
//!   event plane.
//! * [`MethodKind`] — whether a method is request/response, one-way, or
//!   a streaming subscription.
//! * [`methods`]/[`events`] — the flattened registry, for tools and
//!   conformance tests.
//! * [`keys`] — KVS key-namespace helpers for the protocol's well-known
//!   key prefixes (`mon.samplers.*`, `mon.data.*`, `lwj.*`, ...).
//!
//! ## Adding a service or method
//!
//! Declare the method in the service's `methods!` table below (or add a
//! new table + [`Service`] variant), then handle the new enum variant at
//! every `match` the compiler flags. See DESIGN.md §12.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use flux_wire::Topic;

/// How a declared method behaves on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Request/response: every request is answered exactly once.
    Rpc,
    /// One-way notification: never answered (malformed ones are dropped).
    OneWay,
    /// Streaming request: answered zero or more times until cancelled.
    Stream,
}

/// The services of Table I (plus the broker builtin `cmb`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Service {
    /// Broker builtin: ping, info, event subscription plumbing.
    Cmb,
    /// Session heartbeat.
    Hb,
    /// Hierarchical liveness detection.
    Live,
    /// Reduced, filtered session logging.
    Log,
    /// Heartbeat-synchronized monitoring.
    Mon,
    /// Named process groups.
    Group,
    /// Collective barriers.
    Barrier,
    /// The key-value store.
    Kvs,
    /// Bulk remote execution.
    Wexec,
    /// Resource enumeration and allocation.
    Resvc,
}

impl Service {
    /// Every declared service.
    pub const ALL: &'static [Service] = &[
        Service::Cmb,
        Service::Hb,
        Service::Live,
        Service::Log,
        Service::Mon,
        Service::Group,
        Service::Barrier,
        Service::Kvs,
        Service::Wexec,
        Service::Resvc,
    ];

    /// The service name: the first component of its topics.
    pub const fn name(self) -> &'static str {
        match self {
            Service::Cmb => "cmb",
            Service::Hb => "hb",
            Service::Live => "live",
            Service::Log => "log",
            Service::Mon => "mon",
            Service::Group => "group",
            Service::Barrier => "barrier",
            Service::Kvs => "kvs",
            Service::Wexec => "wexec",
            Service::Resvc => "resvc",
        }
    }

    /// Looks a service up by name (as returned by [`Topic::service`]).
    pub fn from_name(name: &str) -> Option<Service> {
        Service::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// The full declared error surface of one service: the union of its
    /// methods' [`MethodSpec::declared_errors`] sets plus the
    /// dispatch-level `ENOSYS` every service answers for an unknown
    /// method. Sorted and deduplicated — the machine-readable export
    /// that tools (`flux-lint`'s error-code pass) and conformance tests
    /// consume.
    pub fn declared_surface(self) -> Vec<u32> {
        let mut out = vec![flux_wire::errnum::ENOSYS];
        for spec in methods() {
            if spec.service == self {
                out.extend_from_slice(spec.declared_errors);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// One row of the flattened method registry (see [`methods`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodSpec {
    /// The owning service.
    pub service: Service,
    /// The full topic string, `<service>.<method>`.
    pub topic: &'static str,
    /// Wire behaviour.
    pub kind: MethodKind,
    /// The error numbers this method's handler may put in a response
    /// header, beyond transport-level failures (`EIO`, `ETIMEDOUT`,
    /// `EHOSTDOWN`) that any RPC can surface and the dispatch-level
    /// `ENOSYS` for unknown methods. This is the registry side of the
    /// module/proto error-code alignment: `flux-lint`'s error-code
    /// conformance pass checks every handler's rejection paths against
    /// these sets, in both directions.
    pub declared_errors: &'static [u32],
}

/// One row of the flattened event registry (see [`events`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventSpec {
    /// The service that publishes it.
    pub service: Service,
    /// The full event topic string.
    pub topic: &'static str,
}

/// Declares one service's method table: the enum, dispatch lookup,
/// topic construction, declared error sets, and registry rows. An
/// optional `[ERRNO, ...]` suffix after the kind names the
/// `flux_wire::errnum` constants the handler's own rejection paths may
/// produce (omitted = none).
macro_rules! methods {
    (
        $(#[$emeta:meta])*
        $enum_name:ident : $service:ident / $svc:literal {
            $($(#[$vmeta:meta])* $variant:ident = $method:literal => $kind:ident $([$($err:ident),* $(,)?])?;)+
        }
    ) => {
        $(#[$emeta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum $enum_name {
            $($(#[$vmeta])* $variant,)+
        }

        impl $enum_name {
            /// Every method of this service, in declaration order.
            pub const ALL: &'static [$enum_name] = &[$($enum_name::$variant,)+];

            /// The owning [`Service`].
            pub const SERVICE: Service = Service::$service;

            /// The method path: everything after the service prefix.
            pub const fn method(self) -> &'static str {
                match self { $($enum_name::$variant => $method,)+ }
            }

            /// The full topic string, `<service>.<method>`.
            pub const fn topic_str(self) -> &'static str {
                match self { $($enum_name::$variant => concat!($svc, ".", $method),)+ }
            }

            /// Wire behaviour of this method.
            pub const fn kind(self) -> MethodKind {
                match self { $($enum_name::$variant => MethodKind::$kind,)+ }
            }

            /// The error numbers this method's handler may put in a
            /// response header, beyond transport-level failures and the
            /// dispatch-level `ENOSYS` (see [`MethodSpec::declared_errors`]).
            pub const fn declared_errors(self) -> &'static [u32] {
                match self {
                    $($enum_name::$variant => &[$($(flux_wire::errnum::$err,)*)?],)+
                }
            }

            /// The validated [`Topic`] for this method.
            pub fn topic(self) -> Topic {
                // flux-lint: allow(panic) — every topic_str is a declared
                // literal, validated by the registry conformance test.
                Topic::from_static(self.topic_str())
            }

            /// Looks a method path up, as returned by [`Topic::method`].
            /// `None` is the dispatch ENOSYS path.
            pub fn from_method(m: &str) -> Option<$enum_name> {
                match m {
                    $($method => Some($enum_name::$variant),)+
                    _ => None,
                }
            }

            /// This table's rows of the flattened registry.
            pub fn specs() -> impl Iterator<Item = MethodSpec> {
                Self::ALL.iter().map(|m| MethodSpec {
                    service: Self::SERVICE,
                    topic: m.topic_str(),
                    kind: m.kind(),
                    declared_errors: m.declared_errors(),
                })
            }
        }
    };
}

methods! {
    /// Builtin `cmb` service methods (answered by the broker itself).
    CmbMethod : Cmb / "cmb" {
        /// Echo, usable rank-addressed over the ring or locally.
        Ping = "ping" => Rpc;
        /// Rank, size, tree depth, liveness count, loaded modules.
        Info = "info" => Rpc;
        /// Subscribe the requesting client to an event-topic prefix.
        Sub = "sub" => Rpc [EINVAL];
        /// Drop one subscription of the requesting client.
        Unsub = "unsub" => Rpc [EINVAL];
    }
}

methods! {
    /// `hb` service methods.
    HbMethod : Hb / "hb" {
        /// The last heartbeat epoch this broker has seen.
        Epoch = "epoch" => Rpc;
    }
}

methods! {
    /// `live` service methods.
    LiveMethod : Live / "live" {
        /// Child-to-parent keepalive, sent on every heartbeat.
        Hello = "hello" => OneWay;
        /// Local liveness view for tools.
        Status = "status" => Rpc;
    }
}

methods! {
    /// `log` service methods.
    LogMethod : Log / "log" {
        /// Append one entry to the local ring (and forward by level).
        Msg = "msg" => Rpc [EINVAL];
        /// Merged entries climbing the tree toward the session log.
        Batch = "batch" => OneWay;
        /// The local circular debug buffer (rank-addressable).
        Dump = "dump" => Rpc;
        /// The root session log, filtered by level.
        Query = "query" => Rpc;
    }
}

methods! {
    /// `mon` service methods.
    MonMethod : Mon / "mon" {
        /// Register a sampler spec in the KVS.
        Add = "add" => Rpc [EINVAL];
        /// Partial aggregate climbing the tree.
        Up = "up" => OneWay;
        /// The sampler specs active on this broker.
        List = "list" => Rpc;
    }
}

methods! {
    /// `group` service methods.
    GroupMethod : Group / "group" {
        /// Record the requester as a member in the KVS.
        Join = "join" => Rpc [EINVAL];
        /// Remove the requester's membership record.
        Leave = "leave" => Rpc [EINVAL];
        /// Group size and member list.
        Info = "info" => Rpc [EINVAL];
    }
}

methods! {
    /// `barrier` service methods.
    BarrierMethod : Barrier / "barrier" {
        /// Enter a named barrier; answered when it completes.
        Enter = "enter" => Rpc [EINVAL];
        /// Merged entry counts climbing the tree.
        Up = "up" => OneWay;
    }
}

methods! {
    /// `kvs` service methods.
    KvsMethod : Kvs / "kvs" {
        /// Stage `key = value` in the local dirty set. Rejects malformed
        /// payloads and oversize/overdeep keys.
        Put = "put" => Rpc [EINVAL, ENAMETOOLONG];
        /// Stage a key removal.
        Unlink = "unlink" => Rpc [EINVAL, ENAMETOOLONG];
        /// Push staged changes to the master and await the new version.
        /// Fails only on malformed batches (upstream transport errors are
        /// relayed verbatim).
        Commit = "commit" => Rpc [EINVAL];
        /// Internal: a commit batch climbing the tree to the master.
        Push = "push" => Rpc [EINVAL];
        /// Internal: a rank-addressed commit batch for one shard master
        /// (sharded sessions route writes directly, not up the tree).
        /// Additionally rejects batches addressed to a rank that does not
        /// master the named shard.
        ShardPush = "shard.push" => Rpc [EINVAL];
        /// Collective commit: resolves once `nprocs` have entered.
        /// Rejects malformed, zero-proc, mismatched-count, and duplicate
        /// contributions.
        Fence = "fence" => Rpc [EINVAL];
        /// Internal: merged fence contributions climbing the tree.
        /// One-way: never answered, so never errs.
        FenceUp = "fence.up" => OneWay;
        /// Read a key (or directory listing) at the current root.
        /// Distinguishes key shape/size errors from tree-shape mismatches
        /// and absent keys.
        Get = "get" => Rpc [EINVAL, ENAMETOOLONG, ENOENT, ENOTDIR, EISDIR];
        /// Internal: fetch an object by content hash from upstream.
        Load = "load" => Rpc [EINVAL, ENOENT];
        /// The root version this broker has applied. Rejects a malformed
        /// shard selector.
        GetVersion = "get_version" => Rpc [EINVAL];
        /// Answered once the local version reaches the given one.
        WaitVersion = "wait_version" => Rpc [EINVAL];
        /// Stream a value on every version that changes the key.
        Watch = "watch" => Stream [EINVAL];
        /// Cancel a watch stream.
        Unwatch = "unwatch" => Rpc [EINVAL];
        /// Object-cache statistics.
        Stats = "stats" => Rpc;
    }
}

methods! {
    /// `wexec` service methods.
    WexecMethod : Wexec / "wexec" {
        /// Launch a job on the targeted ranks (fans out as an event).
        Run = "run" => Rpc [EINVAL];
        /// Signal every task of a job (fans out as an event).
        Kill = "kill" => Rpc [EINVAL];
        /// Internal: merged exit-status contributions climbing the tree.
        StatusUp = "status.up" => OneWay;
        /// Locally running tasks.
        Ps = "ps" => Rpc;
    }
}

methods! {
    /// `resvc` service methods.
    ResvcMethod : Resvc / "resvc" {
        /// Allocate `nnodes` ranks to a job (root decides). `EAGAIN`
        /// signals an honest shortage: retry after a `free`.
        Alloc = "alloc" => Rpc [EINVAL, EAGAIN];
        /// Return a job's ranks to the free set.
        Free = "free" => Rpc [EINVAL, ENOENT];
        /// Free/total counts and active allocations.
        Status = "status" => Rpc;
    }
}

/// Every session-wide event topic on the root-sequenced event plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// The session heartbeat pulse (bare service topic, no method).
    Hb,
    /// A child missed too many heartbeats and is declared dead.
    LiveDown,
    /// A declared-dead rank sent a hello again.
    LiveUp,
    /// A new KVS root: version, root hash, resolved fences.
    KvsSetroot,
    /// A named barrier completed; waiters release.
    BarrierExit,
    /// Bulk-launch fan-out: every targeted broker starts the job.
    WexecRun,
    /// Signal fan-out to every task of a job.
    WexecKill,
    /// All tasks of a job have reported exit status.
    WexecComplete,
    /// A fault was observed; brokers dump debug rings upstream.
    LogFault,
}

impl Event {
    /// Every declared event, in declaration order.
    pub const ALL: &'static [Event] = &[
        Event::Hb,
        Event::LiveDown,
        Event::LiveUp,
        Event::KvsSetroot,
        Event::BarrierExit,
        Event::WexecRun,
        Event::WexecKill,
        Event::WexecComplete,
        Event::LogFault,
    ];

    /// The service that publishes this event.
    pub const fn service(self) -> Service {
        match self {
            Event::Hb => Service::Hb,
            Event::LiveDown | Event::LiveUp => Service::Live,
            Event::KvsSetroot => Service::Kvs,
            Event::BarrierExit => Service::Barrier,
            Event::WexecRun | Event::WexecKill | Event::WexecComplete => Service::Wexec,
            Event::LogFault => Service::Log,
        }
    }

    /// The full event topic string.
    pub const fn topic_str(self) -> &'static str {
        match self {
            Event::Hb => "hb",
            Event::LiveDown => "live.down",
            Event::LiveUp => "live.up",
            Event::KvsSetroot => "kvs.setroot",
            Event::BarrierExit => "barrier.exit",
            Event::WexecRun => "wexec.run",
            Event::WexecKill => "wexec.kill",
            Event::WexecComplete => "wexec.complete",
            Event::LogFault => "log.fault",
        }
    }

    /// The validated [`Topic`] for this event.
    pub fn topic(self) -> Topic {
        // flux-lint: allow(panic) — every topic_str is a declared
        // literal, validated by the registry conformance test.
        Topic::from_static(self.topic_str())
    }

    /// Matches a delivered event topic against the registry.
    pub fn from_topic_str(s: &str) -> Option<Event> {
        Event::ALL.iter().copied().find(|e| e.topic_str() == s)
    }
}

/// The flattened method registry: every declared method of every
/// service. Tools (`flux-lint`, `flux-kap table1`) and conformance
/// tests iterate this.
pub fn methods() -> Vec<MethodSpec> {
    CmbMethod::specs()
        .chain(HbMethod::specs())
        .chain(LiveMethod::specs())
        .chain(LogMethod::specs())
        .chain(MonMethod::specs())
        .chain(GroupMethod::specs())
        .chain(BarrierMethod::specs())
        .chain(KvsMethod::specs())
        .chain(WexecMethod::specs())
        .chain(ResvcMethod::specs())
        .collect()
}

/// The flattened event registry.
pub fn events() -> Vec<EventSpec> {
    Event::ALL
        .iter()
        .map(|e| EventSpec { service: e.service(), topic: e.topic_str() })
        .collect()
}

/// Well-known KVS key namespaces the protocol writes into. Keys are not
/// topics, but several share the `<service>.` spelling, so their
/// construction lives here with the rest of the protocol surface.
pub mod keys {
    /// `mon` module key space.
    pub mod mon {
        /// Directory of sampler specs.
        pub const SAMPLERS_DIR: &str = "mon.samplers";

        /// The spec key for one sampler.
        pub fn sampler_key(name: &str) -> String {
            format!("{SAMPLERS_DIR}.{name}")
        }

        /// The finalized-aggregate key for one sampler at one epoch.
        pub fn data_key(name: &str, epoch: u64) -> String {
            format!("mon.data.{name}.e{epoch}")
        }
    }

    /// `group` module key space.
    pub mod group {
        /// The membership directory of one group.
        pub fn dir(name: &str) -> String {
            format!("groups.{name}")
        }

        /// The membership key of one member of one group.
        pub fn member_key(name: &str, member: &str) -> String {
            format!("groups.{name}.{member}")
        }
    }

    /// `resvc` module key space.
    pub mod resvc {
        /// The collective fence marking resource enumeration complete.
        pub const ENUMERATE_FENCE: &str = "resvc.enumerate";

        /// The inventory key for one rank.
        pub fn resource_key(rank: u32) -> String {
            format!("resource.r{rank}")
        }
    }

    /// Lightweight-job (`lwj`) key space, shared by `wexec` and `resvc`.
    pub mod lwj {
        /// Captured standard output of one task.
        pub fn stdout_key(jobid: u64, rank: u32) -> String {
            format!("lwj.{jobid}.{rank}.stdout")
        }

        /// The completion record of a job.
        pub fn complete_key(jobid: u64) -> String {
            format!("lwj.{jobid}.complete")
        }

        /// The ranks allocated to a job.
        pub fn ranks_key(jobid: u64) -> String {
            format!("lwj.{jobid}.ranks")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_method_topic_is_valid_and_owned_by_its_service() {
        for spec in methods() {
            let topic = Topic::new(spec.topic).expect("declared topic must validate");
            assert_eq!(
                topic.service(),
                spec.service.name(),
                "{} must start with its service prefix",
                spec.topic
            );
            assert!(!topic.method().is_empty(), "{} must have a method path", spec.topic);
        }
    }

    #[test]
    fn every_event_topic_is_valid_and_owned_by_its_service() {
        for spec in events() {
            let topic = Topic::new(spec.topic).expect("declared event must validate");
            assert_eq!(topic.service(), spec.service.name());
        }
    }

    #[test]
    fn registry_topics_are_unique() {
        let mut seen = HashSet::new();
        for spec in methods() {
            assert!(seen.insert(spec.topic), "duplicate method topic {}", spec.topic);
        }
        // `wexec.run`/`wexec.kill` are both a method and its fan-out
        // event, and the bare `hb` event is not a method; events only
        // need to be unique among themselves.
        let mut seen_events = HashSet::new();
        for spec in events() {
            assert!(seen_events.insert(spec.topic), "duplicate event topic {}", spec.topic);
        }
    }

    #[test]
    fn dispatch_roundtrips() {
        for m in KvsMethod::ALL {
            let topic = m.topic();
            assert_eq!(topic.service(), "kvs");
            assert_eq!(KvsMethod::from_method(topic.method()), Some(*m));
        }
        assert_eq!(KvsMethod::from_method("no_such_method"), None);
        for m in CmbMethod::ALL {
            assert_eq!(CmbMethod::from_method(m.topic().method()), Some(*m));
        }
        for e in Event::ALL {
            assert_eq!(Event::from_topic_str(e.topic().as_str()), Some(*e));
        }
    }

    #[test]
    fn service_names_roundtrip() {
        for s in Service::ALL {
            assert_eq!(Service::from_name(s.name()), Some(*s));
        }
        assert_eq!(Service::from_name("nope"), None);
    }

    #[test]
    fn kinds_match_protocol_semantics() {
        assert_eq!(KvsMethod::Watch.kind(), MethodKind::Stream);
        assert_eq!(KvsMethod::FenceUp.kind(), MethodKind::OneWay);
        assert_eq!(LiveMethod::Hello.kind(), MethodKind::OneWay);
        assert_eq!(BarrierMethod::Enter.kind(), MethodKind::Rpc);
        // Every internal tree-climbing reduction is one-way.
        for spec in methods() {
            if spec.topic.ends_with(".up") {
                assert_eq!(spec.kind, MethodKind::OneWay, "{}", spec.topic);
            }
        }
    }

    #[test]
    fn declared_error_sets_are_well_formed() {
        for spec in methods() {
            let errs = spec.declared_errors;
            // Every declared code is a real, named errnum...
            for &e in errs {
                assert_ne!(e, 0, "{} declares success as an error", spec.topic);
                assert_ne!(
                    flux_wire::errnum::strerror(e),
                    "unknown error",
                    "{} declares an unregistered errnum {e}",
                    spec.topic
                );
            }
            // ...listed at most once.
            let mut sorted = errs.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), errs.len(), "{} repeats an errnum", spec.topic);
            // One-way methods have no response header to carry an error.
            if spec.kind == MethodKind::OneWay {
                assert!(errs.is_empty(), "{} is one-way but declares errors", spec.topic);
            }
        }
        // Key-validating methods must declare the key-size rejection.
        for m in [KvsMethod::Put, KvsMethod::Unlink, KvsMethod::Get] {
            assert!(m.declared_errors().contains(&flux_wire::errnum::ENAMETOOLONG), "{:?}", m);
        }
    }

    #[test]
    fn every_service_declares_a_nonempty_error_surface() {
        for &s in Service::ALL {
            let surface = s.declared_surface();
            // Dispatch-level ENOSYS makes every surface nonempty; the
            // per-method sets only add to it.
            assert!(!surface.is_empty(), "{} declares no error surface", s.name());
            assert!(
                surface.contains(&flux_wire::errnum::ENOSYS),
                "{} must answer unknown methods with ENOSYS",
                s.name()
            );
            // Sorted + deduplicated: the export is canonical.
            let mut canon = surface.clone();
            canon.sort_unstable();
            canon.dedup();
            assert_eq!(canon, surface, "{} surface is not canonical", s.name());
        }
        // Spot-check the unions against the handler ground truth.
        use flux_wire::errnum::{EAGAIN, EINVAL, ENOENT, ENOSYS};
        assert_eq!(Service::Hb.declared_surface(), vec![ENOSYS]);
        assert_eq!(Service::Resvc.declared_surface(), vec![ENOENT, EAGAIN, EINVAL, ENOSYS]);
    }

    #[test]
    fn key_helpers_spell_the_namespaces() {
        assert_eq!(keys::mon::sampler_key("load"), "mon.samplers.load");
        assert_eq!(keys::mon::data_key("load", 7), "mon.data.load.e7");
        assert_eq!(keys::group::dir("g"), "groups.g");
        assert_eq!(keys::group::member_key("g", "r1-c2"), "groups.g.r1-c2");
        assert_eq!(keys::resvc::resource_key(3), "resource.r3");
        assert_eq!(keys::lwj::stdout_key(9, 2), "lwj.9.2.stdout");
        assert_eq!(keys::lwj::complete_key(9), "lwj.9.complete");
        assert_eq!(keys::lwj::ranks_key(9), "lwj.9.ranks");
    }
}
