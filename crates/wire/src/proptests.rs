//! Property tests: codec round-trips and decoder robustness.

use crate::{Header, Message, MsgId, MsgType, Rank, Topic};
use flux_value::Value;
use proptest::prelude::*;

fn arb_topic() -> impl Strategy<Value = Topic> {
    "[a-z][a-z0-9_-]{0,8}(\\.[a-z][a-z0-9_-]{0,8}){0,3}"
        .prop_map(|s| Topic::new(s).expect("strategy produces valid topics"))
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        ".{0,16}".prop_map(Value::from),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..4).prop_map(Value::Object),
        ]
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    (
        prop_oneof![Just(MsgType::Request), Just(MsgType::Response), Just(MsgType::Event)],
        arb_topic(),
        any::<u32>(),
        any::<u64>(),
        any::<u32>(),
        prop::option::of(any::<u32>()),
        any::<u16>(),
        prop::collection::vec(any::<u32>(), 0..6),
        arb_value(),
    )
        .prop_map(|(msg_type, topic, origin, seq, src, dst, errnum, hops, payload)| Message {
            header: Header {
                msg_type,
                topic,
                id: MsgId { origin: Rank(origin), seq },
                src: Rank(src),
                dst: dst.map(Rank),
                errnum: u32::from(errnum),
                hops: hops.into_iter().map(Rank).collect(),
            },
            payload: payload.into(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity and consumes exactly the encoding.
    #[test]
    fn codec_roundtrip(m in arb_message()) {
        let enc = m.encode();
        let (back, used) = Message::decode(&enc).unwrap();
        prop_assert_eq!(used, enc.len());
        prop_assert_eq!(back, m);
    }

    /// Decoding random bytes never panics.
    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
    }

    /// Truncating a valid encoding anywhere yields an error, not a panic
    /// or a bogus success.
    #[test]
    fn truncation_always_detected(m in arb_message(), frac in 0.0f64..1.0) {
        let enc = m.encode();
        let cut = ((enc.len() as f64) * frac) as usize;
        if cut < enc.len() {
            prop_assert!(Message::decode(&enc[..cut]).is_err());
        }
    }

    /// Two different messages never produce the same encoding.
    #[test]
    fn encoding_injective(a in arb_message(), b in arb_message()) {
        if a != b {
            prop_assert_ne!(a.encode(), b.encode());
        }
    }

    /// Corrupting any byte of a valid encoding never panics the decoder:
    /// it either errs or decodes to *some* message, but always returns.
    #[test]
    fn mutated_encodings_never_panic(m in arb_message(), pos in any::<usize>(), xor in any::<u8>()) {
        let mut enc = m.encode();
        let i = pos % enc.len();
        enc[i] ^= xor.max(1);
        let _ = Message::decode(&enc);
    }

    /// The canonical value decoder is panic-free on arbitrary bytes too —
    /// it runs inside message decode, so its crashes would be ours.
    #[test]
    fn value_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Value::decode_canonical(&bytes);
        let _ = Value::decode_canonical_prefix(&bytes);
    }

    /// The TCP frame reader never panics on arbitrary bytes: it errs on
    /// garbage and reports clean EOF only at a frame boundary.
    #[test]
    fn frame_reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut r = &bytes[..];
        if let Ok(None) = crate::frame::read_frame(&mut r, crate::frame::MAX_FRAME) {
            prop_assert!(bytes.is_empty(), "EOF only at a boundary");
        }
    }
}
