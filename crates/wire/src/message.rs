//! [`Message`]: the uniform multi-part CMB message.

use crate::errnum;
use crate::{Rank, Topic};
use flux_value::Value;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// Which overlay plane carries a message (paper §IV-A, Fig. 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Plane {
    /// Publish/subscribe event bus (paper: PGM multicast) — events and
    /// heartbeats, delivered reliably and in order session-wide.
    Event,
    /// Request/response tree (paper: TCP) — RPCs, barriers, reductions.
    Tree,
    /// Secondary rank-addressed overlay (paper: ring topology).
    Ring,
}

/// Message kind.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MsgType {
    /// An RPC request, routed upstream (or by rank on the ring plane).
    Request,
    /// The reply to a request, retracing the request's hops.
    Response,
    /// A published event, fanned out on the event plane.
    Event,
}

impl MsgType {
    pub(crate) fn to_byte(self) -> u8 {
        match self {
            MsgType::Request => 1,
            MsgType::Response => 2,
            MsgType::Event => 3,
        }
    }

    pub(crate) fn from_byte(b: u8) -> Option<MsgType> {
        match b {
            1 => Some(MsgType::Request),
            2 => Some(MsgType::Response),
            3 => Some(MsgType::Event),
            // flux-lint: allow(wildcard) — matching an open byte domain:
            // every unknown value maps to a decode error, not a behavior.
            _ => None,
        }
    }
}

/// A session-unique message identifier: originating rank plus a sequence
/// number drawn from that rank's counter. Responses carry the id of the
/// request they answer, which is how clients match replies.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MsgId {
    /// Rank whose counter issued this id.
    pub origin: Rank,
    /// Per-origin sequence number.
    pub seq: u64,
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

/// The header frame.
///
/// `hops` is the response-routing stack: every broker that forwards a
/// request upstream pushes its rank, and the response pops ranks to retrace
/// the path — the paper's *"RPC responses are routed back through the same
/// set of hops, in reverse."*
#[derive(Clone, PartialEq, Debug)]
pub struct Header {
    /// Request / response / event.
    pub msg_type: MsgType,
    /// Hierarchical recipient name, e.g. `kvs.put`.
    pub topic: Topic,
    /// Unique id; responses reuse the request's id.
    pub id: MsgId,
    /// Rank of the original sender (not the last forwarder).
    pub src: Rank,
    /// Explicit destination for rank-addressed (ring-plane) requests.
    pub dst: Option<Rank>,
    /// Error number for responses; `0` means success.
    pub errnum: u32,
    /// Response-routing stack (see type-level docs).
    pub hops: Vec<Rank>,
}

/// A message's JSON payload frame, shared by reference.
///
/// Payloads are immutable once attached to a message. Sharing them lets a
/// broker fan a large event out to many children — and the simulator
/// duplicate in-flight frames — without deep-copying the value tree at
/// every hop, and lets the cost model read the payload's wire size once
/// instead of re-traversing it per send. Reads go through `Deref`, so a
/// `Payload` is used exactly like a [`Value`]; to mutate, clone the inner
/// value out ([`Payload::into_value`] or `value().clone()`) and build a
/// fresh payload.
#[derive(Clone)]
pub struct Payload {
    inner: Arc<PayloadInner>,
}

struct PayloadInner {
    value: Value,
    size: OnceLock<usize>,
}

impl Payload {
    /// The payload value.
    pub fn value(&self) -> &Value {
        &self.inner.value
    }

    /// Unwraps into the inner [`Value`], cloning only if the payload is
    /// still shared with another message.
    pub fn into_value(self) -> Value {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => inner.value,
            Err(shared) => shared.value.clone(),
        }
    }

    /// The approximate encoded size of the payload, computed once per
    /// payload and cached — every hop of a fan-out reads the same number.
    pub fn approx_size(&self) -> usize {
        *self.inner.size.get_or_init(|| self.inner.value.approx_size())
    }
}

impl From<Value> for Payload {
    fn from(value: Value) -> Payload {
        Payload { inner: Arc::new(PayloadInner { value, size: OnceLock::new() }) }
    }
}

impl Deref for Payload {
    type Target = Value;
    fn deref(&self) -> &Value {
        &self.inner.value
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner.value == other.inner.value
    }
}

impl PartialEq<Value> for Payload {
    fn eq(&self, other: &Value) -> bool {
        self.inner.value == *other
    }
}

impl PartialEq<Payload> for Value {
    fn eq(&self, other: &Payload) -> bool {
        *self == other.inner.value
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.value.fmt(f)
    }
}

/// A complete message: header frame + JSON payload frame.
#[derive(Clone, PartialEq, Debug)]
pub struct Message {
    /// The header frame.
    pub header: Header,
    /// The JSON payload frame, shared by reference across clones.
    pub payload: Payload,
}

impl Message {
    /// Builds an RPC request.
    pub fn request(topic: Topic, id: MsgId, src: Rank, payload: impl Into<Payload>) -> Message {
        Message {
            header: Header {
                msg_type: MsgType::Request,
                topic,
                id,
                src,
                dst: None,
                errnum: 0,
                hops: Vec::new(),
            },
            payload: payload.into(),
        }
    }

    /// Builds a rank-addressed request (carried on the ring plane).
    pub fn request_to(
        topic: Topic,
        id: MsgId,
        src: Rank,
        dst: Rank,
        payload: impl Into<Payload>,
    ) -> Message {
        let mut m = Message::request(topic, id, src, payload);
        m.header.dst = Some(dst);
        m
    }

    /// Builds the successful response to `req`, preserving its id, topic
    /// and hop stack (ready for reverse routing).
    pub fn response_to(req: &Message, payload: impl Into<Payload>) -> Message {
        Message {
            header: Header {
                msg_type: MsgType::Response,
                topic: req.header.topic.clone(),
                id: req.header.id,
                src: req.header.src,
                dst: req.header.dst,
                errnum: 0,
                hops: req.header.hops.clone(),
            },
            payload: payload.into(),
        }
    }

    /// Builds an error response to `req` with the given error number.
    pub fn error_response_to(req: &Message, errnum: u32) -> Message {
        let mut m = Message::response_to(
            req,
            Value::from_pairs([("errstr", Value::from(errnum::strerror(errnum)))]),
        );
        m.header.errnum = errnum;
        m
    }

    /// Builds a published event.
    pub fn event(topic: Topic, id: MsgId, src: Rank, payload: impl Into<Payload>) -> Message {
        Message {
            header: Header {
                msg_type: MsgType::Event,
                topic,
                id,
                src,
                dst: None,
                errnum: 0,
                hops: Vec::new(),
            },
            payload: payload.into(),
        }
    }

    /// True if this is a response carrying an error.
    pub fn is_error(&self) -> bool {
        self.header.msg_type == MsgType::Response && self.header.errnum != 0
    }

    /// The size this message occupies on the wire, in bytes. Used by the
    /// simulator's transfer-cost model; kept consistent with
    /// [`Message::encode`] by construction (tested). Computed without
    /// allocating: the header length is summed arithmetically and the
    /// payload size is cached inside the shared [`Payload`].
    pub fn wire_size(&self) -> usize {
        crate::codec::header_wire_len(&self.header) + self.payload.approx_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic(s: &str) -> Topic {
        Topic::new(s).unwrap()
    }

    fn id(o: u32, s: u64) -> MsgId {
        MsgId { origin: Rank(o), seq: s }
    }

    #[test]
    fn request_constructor_defaults() {
        let m = Message::request(topic("svc.get"), id(2, 9), Rank(2), Value::Null);
        assert_eq!(m.header.msg_type, MsgType::Request);
        assert_eq!(m.header.errnum, 0);
        assert!(m.header.dst.is_none());
        assert!(m.header.hops.is_empty());
        assert!(!m.is_error());
    }

    #[test]
    fn response_preserves_identity_and_hops() {
        let mut req = Message::request(topic("svc.get"), id(2, 9), Rank(2), Value::Null);
        req.header.hops = vec![Rank(2), Rank(1)];
        let resp = Message::response_to(&req, Value::Int(1));
        assert_eq!(resp.header.id, req.header.id);
        assert_eq!(resp.header.topic, req.header.topic);
        assert_eq!(resp.header.hops, req.header.hops);
        assert_eq!(resp.header.msg_type, MsgType::Response);
    }

    #[test]
    fn error_response_carries_errnum_and_string() {
        let req = Message::request(topic("nosuch.thing"), id(0, 1), Rank(0), Value::Null);
        let resp = Message::error_response_to(&req, errnum::ENOSYS);
        assert!(resp.is_error());
        assert_eq!(resp.header.errnum, errnum::ENOSYS);
        assert!(resp.payload.get("errstr").unwrap().as_str().unwrap().contains("implement"));
    }

    #[test]
    fn rank_addressed_request() {
        let m = Message::request_to(topic("ping"), id(1, 1), Rank(1), Rank(5), Value::Null);
        assert_eq!(m.header.dst, Some(Rank(5)));
    }

    #[test]
    fn msg_type_byte_roundtrip() {
        for t in [MsgType::Request, MsgType::Response, MsgType::Event] {
            assert_eq!(MsgType::from_byte(t.to_byte()), Some(t));
        }
        assert_eq!(MsgType::from_byte(0), None);
        assert_eq!(MsgType::from_byte(9), None);
    }

    #[test]
    fn wire_size_tracks_payload() {
        let small = Message::event(topic("hb"), id(0, 1), Rank(0), Value::Int(1));
        let big = Message::event(topic("hb"), id(0, 1), Rank(0), Value::from("x".repeat(1000)));
        assert!(big.wire_size() > small.wire_size() + 900);
    }
}
