//! Hierarchical topic name space.
//!
//! Topics look like `kvs.put` or `event.hb`: dot-separated lowercase
//! words. The first component is the *service* (the comms module the
//! message is addressed to); the rest is the method path inside that
//! module. Event subscriptions match by prefix, exactly like ØMQ
//! subscription prefixes the prototype used.

use std::fmt;
use std::sync::Arc;

/// A validated, hierarchical topic string.
///
/// Backed by a shared `Arc<str>`: cloning a topic (every response, every
/// event fan-out hop, every pending-event summary) is a reference-count
/// bump, not a heap allocation.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Topic(Arc<str>);

/// Why a topic string was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopicError {
    /// The string was empty.
    Empty,
    /// A component was empty (leading/trailing/double dot).
    EmptyComponent,
    /// A character outside `[a-z0-9_-]` appeared.
    BadChar(char),
    /// Longer than [`Topic::MAX_LEN`].
    TooLong(usize),
}

impl fmt::Display for TopicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopicError::Empty => write!(f, "topic is empty"),
            TopicError::EmptyComponent => write!(f, "topic has an empty component"),
            TopicError::BadChar(c) => write!(f, "invalid character {c:?} in topic"),
            TopicError::TooLong(n) => write!(f, "topic length {n} exceeds {}", Topic::MAX_LEN),
        }
    }
}

impl std::error::Error for TopicError {}

impl Topic {
    /// Maximum accepted topic length in bytes.
    pub const MAX_LEN: usize = 255;

    /// Validates and constructs a topic.
    pub fn new(s: impl Into<String>) -> Result<Topic, TopicError> {
        let s = s.into();
        if s.is_empty() {
            return Err(TopicError::Empty);
        }
        if s.len() > Self::MAX_LEN {
            return Err(TopicError::TooLong(s.len()));
        }
        for part in s.split('.') {
            if part.is_empty() {
                return Err(TopicError::EmptyComponent);
            }
            for c in part.chars() {
                if !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-') {
                    return Err(TopicError::BadChar(c));
                }
            }
        }
        Ok(Topic(s.into()))
    }

    /// Constructs a topic, panicking on invalid input. For string literals.
    ///
    /// # Panics
    /// Panics if the literal is not a valid topic.
    pub fn from_static(s: &'static str) -> Topic {
        // flux-lint: allow(panic) — documented contract for compile-time
        // literals; the flux-proto registry is the only production caller
        // and its literals are exercised by its own round-trip tests.
        Topic::new(s).unwrap_or_else(|e| panic!("invalid static topic {s:?}: {e}"))
    }

    /// The full topic string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The first component: the comms module this message is addressed to.
    pub fn service(&self) -> &str {
        // split() always yields at least one item, so this never falls
        // back — but the fallback beats a panic path in the hot decoder.
        self.0.split('.').next().unwrap_or("")
    }

    /// Everything after the service, or `""` for a bare service topic.
    pub fn method(&self) -> &str {
        match self.0.split_once('.') {
            Some((_, rest)) => rest,
            None => "",
        }
    }

    /// Prefix matching with component boundaries: `kvs` matches `kvs.put`
    /// but not `kvstore.put`. The empty-prefix case is handled by
    /// subscriptions storing `""`, which matches everything.
    pub fn matches_prefix(&self, prefix: &str) -> bool {
        if prefix.is_empty() {
            return true;
        }
        match self.0.strip_prefix(prefix) {
            Some("") => true,
            Some(rest) => rest.starts_with('.'),
            None => false,
        }
    }

    /// Number of bytes this topic occupies on the wire.
    pub fn wire_len(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Topic({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_topics() {
        for t in ["svc", "svc.put", "event.tick", "xexec.run.0", "a-b_c.d2"] {
            assert!(Topic::new(t).is_ok(), "{t}");
        }
    }

    #[test]
    fn invalid_topics() {
        assert_eq!(Topic::new(""), Err(TopicError::Empty));
        assert_eq!(Topic::new(".svc"), Err(TopicError::EmptyComponent));
        assert_eq!(Topic::new("svc."), Err(TopicError::EmptyComponent));
        assert_eq!(Topic::new("a..b"), Err(TopicError::EmptyComponent));
        assert_eq!(Topic::new("SVC.put"), Err(TopicError::BadChar('S')));
        assert_eq!(Topic::new("svc put"), Err(TopicError::BadChar(' ')));
        assert!(matches!(Topic::new("x".repeat(300)), Err(TopicError::TooLong(300))));
    }

    #[test]
    fn service_and_method() {
        let t = Topic::new("svc.commit.flush").unwrap();
        assert_eq!(t.service(), "svc");
        assert_eq!(t.method(), "commit.flush");
        let bare = Topic::new("svc").unwrap();
        assert_eq!(bare.service(), "svc");
        assert_eq!(bare.method(), "");
    }

    #[test]
    fn prefix_matching_respects_boundaries() {
        let t = Topic::new("svc.put").unwrap();
        assert!(t.matches_prefix(""));
        assert!(t.matches_prefix("svc"));
        assert!(t.matches_prefix("svc.put"));
        assert!(!t.matches_prefix("svc.p"));
        assert!(!t.matches_prefix("sv"));
        assert!(!t.matches_prefix("svc.put.x"));
        let t2 = Topic::new("svcstore.put").unwrap();
        assert!(!t2.matches_prefix("svc"));
    }

    #[test]
    #[should_panic(expected = "invalid static topic")]
    fn from_static_panics_on_bad_literal() {
        let _ = Topic::from_static("Not Valid");
    }
}
