//! Length-prefixed stream framing for [`Message`].
//!
//! The canonical encoding is self-delimiting, so a trusted byte stream
//! could be decoded without any outer framing. Socket transports still
//! want a length prefix: it lets a reader pull exactly one message off
//! the wire before parsing, enforce a size cap *before* allocating, and
//! resynchronize error handling at frame granularity. The frame is
//!
//! ```text
//! len   u32 LE   byte length of the encoded message (not counting `len`)
//! body  [u8]     `Message::encode()` bytes
//! ```
//!
//! Oversized, truncated, or malformed frames surface as
//! `io::ErrorKind::InvalidData` — never a panic.

use crate::Message;
use std::io::{self, Read, Write};

/// Default ceiling on a frame body, in bytes. Generous for control-plane
/// traffic (KVS values ride inside messages), tight enough that a
/// corrupt or hostile length prefix cannot trigger a huge allocation.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Writes `msg` as one length-prefixed frame.
///
/// # Errors
/// Returns any underlying I/O error; `InvalidData` if the encoded
/// message exceeds `max_frame`.
pub fn write_frame<W: Write>(w: &mut W, msg: &Message, max_frame: usize) -> io::Result<()> {
    let mut scratch = Vec::with_capacity(64);
    write_frame_into(w, msg, max_frame, &mut scratch)
}

/// Writes `msg` as one length-prefixed frame, encoding into the
/// caller-held `scratch` buffer. The allocation-lean form: a sender that
/// frames many messages reuses one buffer instead of allocating per
/// frame. `scratch` is cleared first; its capacity persists.
///
/// # Errors
/// Returns any underlying I/O error; `InvalidData` if the encoded
/// message exceeds `max_frame` (nothing is written in that case).
pub fn write_frame_into<W: Write>(
    w: &mut W,
    msg: &Message,
    max_frame: usize,
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    msg.encode_into(scratch);
    if scratch.len() > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("outgoing frame of {} bytes exceeds cap {max_frame}", scratch.len()),
        ));
    }
    w.write_all(&(scratch.len() as u32).to_le_bytes())?;
    w.write_all(scratch)
}

/// Reads one length-prefixed frame, returning `None` on a clean EOF at a
/// frame boundary.
///
/// # Errors
/// `InvalidData` on an oversized length prefix or a body that fails
/// [`Message::decode`]; `UnexpectedEof` if the stream ends mid-frame;
/// otherwise the underlying I/O error.
pub fn read_frame<R: Read>(r: &mut R, max_frame: usize) -> io::Result<Option<Message>> {
    let mut body = Vec::new();
    read_frame_into(r, max_frame, &mut body)
}

/// Reads one length-prefixed frame using the caller-held `body` buffer
/// for the frame bytes, returning `None` on a clean EOF at a frame
/// boundary. The allocation-lean form of [`read_frame`]: a reader loop
/// reuses one buffer across frames instead of allocating per frame.
///
/// # Errors
/// Same contract as [`read_frame`].
pub fn read_frame_into<R: Read>(
    r: &mut R,
    max_frame: usize,
    body: &mut Vec<u8>,
) -> io::Result<Option<Message>> {
    let mut len_raw = [0u8; 4];
    // A clean EOF before any length byte means the peer closed between
    // frames — a normal shutdown, not an error.
    match r.read(&mut len_raw) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_raw[n..])?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            r.read_exact(&mut len_raw)?;
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_raw) as usize;
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("incoming frame of {len} bytes exceeds cap {max_frame}"),
        ));
    }
    body.clear();
    body.resize(len, 0);
    r.read_exact(body)?;
    let (msg, used) = Message::decode(body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if used != body.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame had {} trailing bytes after one message", body.len() - used),
        ));
    }
    Ok(Some(msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MsgId, Rank, Topic};
    use flux_value::Value;

    fn sample(seq: u64) -> Message {
        Message::request(
            Topic::new("svc.put").unwrap(),
            MsgId { origin: Rank(1), seq },
            Rank(1),
            Value::from_pairs([("k", Value::from("a.b")), ("v", Value::Int(seq as i64))]),
        )
    }

    #[test]
    fn roundtrip_stream_of_frames() {
        let mut buf = Vec::new();
        for seq in 0..5 {
            write_frame(&mut buf, &sample(seq), MAX_FRAME).unwrap();
        }
        let mut r = &buf[..];
        for seq in 0..5 {
            let m = read_frame(&mut r, MAX_FRAME).unwrap().expect("frame");
            assert_eq!(m, sample(seq));
        }
        assert!(read_frame(&mut r, MAX_FRAME).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut &buf[..], MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_body_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample(9), MAX_FRAME).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_frame(&mut &buf[..], MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn corrupt_body_is_invalid_data() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample(3), MAX_FRAME).unwrap();
        buf[4] = 0x00; // stomp the magic byte
        let err = read_frame(&mut &buf[..], MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn trailing_garbage_in_frame_is_invalid_data() {
        let body = {
            let mut b = sample(4).encode();
            b.push(0xAB);
            b
        };
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&body);
        let err = read_frame(&mut &buf[..], MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn buffer_reuse_forms_match_the_allocating_forms() {
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        for seq in 0..8 {
            write_frame_into(&mut buf, &sample(seq), MAX_FRAME, &mut scratch).unwrap();
        }
        // One scratch allocation serves every frame on the link.
        let cap = scratch.capacity();
        write_frame_into(&mut buf, &sample(8), MAX_FRAME, &mut scratch).unwrap();
        assert_eq!(scratch.capacity(), cap, "scratch must not reallocate for same-size frames");
        let mut r = &buf[..];
        let mut body = Vec::new();
        for seq in 0..9 {
            let m = read_frame_into(&mut r, MAX_FRAME, &mut body).unwrap().expect("frame");
            assert_eq!(m, sample(seq));
        }
        assert!(read_frame_into(&mut r, MAX_FRAME, &mut body).unwrap().is_none());
    }

    #[test]
    fn encode_into_reuses_and_matches_encode() {
        let m = sample(7);
        let mut buf = vec![0xFFu8; 3]; // stale content must be cleared
        m.encode_into(&mut buf);
        assert_eq!(buf, m.encode());
    }

    #[test]
    fn outgoing_cap_is_enforced() {
        let m = sample(1);
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, &m, 4).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(buf.is_empty(), "nothing written for a rejected frame");
    }
}
