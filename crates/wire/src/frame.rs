//! Length-prefixed stream framing for [`Message`].
//!
//! The canonical encoding is self-delimiting, so a trusted byte stream
//! could be decoded without any outer framing. Socket transports still
//! want a length prefix: it lets a reader pull exactly one message off
//! the wire before parsing, enforce a size cap *before* allocating, and
//! resynchronize error handling at frame granularity. The frame is
//!
//! ```text
//! len   u32 LE   byte length of the encoded message (not counting `len`)
//! body  [u8]     `Message::encode()` bytes
//! ```
//!
//! Oversized, truncated, or malformed frames surface as
//! `io::ErrorKind::InvalidData` — never a panic.

use crate::Message;
use std::io::{self, Read, Write};

/// Default ceiling on a frame body, in bytes. Generous for control-plane
/// traffic (KVS values ride inside messages), tight enough that a
/// corrupt or hostile length prefix cannot trigger a huge allocation.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Writes `msg` as one length-prefixed frame.
///
/// # Errors
/// Returns any underlying I/O error; `InvalidData` if the encoded
/// message exceeds `max_frame`.
pub fn write_frame<W: Write>(w: &mut W, msg: &Message, max_frame: usize) -> io::Result<()> {
    let mut scratch = Vec::with_capacity(64);
    write_frame_into(w, msg, max_frame, &mut scratch)
}

/// Writes `msg` as one length-prefixed frame, encoding into the
/// caller-held `scratch` buffer. The allocation-lean form: a sender that
/// frames many messages reuses one buffer instead of allocating per
/// frame. `scratch` is cleared first; its capacity persists.
///
/// # Errors
/// Returns any underlying I/O error; `InvalidData` if the encoded
/// message exceeds `max_frame` (nothing is written in that case).
pub fn write_frame_into<W: Write>(
    w: &mut W,
    msg: &Message,
    max_frame: usize,
    scratch: &mut Vec<u8>,
) -> io::Result<()> {
    msg.encode_into(scratch);
    if scratch.len() > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("outgoing frame of {} bytes exceeds cap {max_frame}", scratch.len()),
        ));
    }
    w.write_all(&(scratch.len() as u32).to_le_bytes())?;
    w.write_all(scratch)
}

/// Reads one length-prefixed frame, returning `None` on a clean EOF at a
/// frame boundary.
///
/// # Errors
/// `InvalidData` on an oversized length prefix or a body that fails
/// [`Message::decode`]; `UnexpectedEof` if the stream ends mid-frame;
/// otherwise the underlying I/O error.
pub fn read_frame<R: Read>(r: &mut R, max_frame: usize) -> io::Result<Option<Message>> {
    let mut body = Vec::new();
    read_frame_into(r, max_frame, &mut body)
}

/// Reads one length-prefixed frame using the caller-held `body` buffer
/// for the frame bytes, returning `None` on a clean EOF at a frame
/// boundary. The allocation-lean form of [`read_frame`]: a reader loop
/// reuses one buffer across frames instead of allocating per frame.
///
/// # Errors
/// Same contract as [`read_frame`].
pub fn read_frame_into<R: Read>(
    r: &mut R,
    max_frame: usize,
    body: &mut Vec<u8>,
) -> io::Result<Option<Message>> {
    let mut len_raw = [0u8; 4];
    // A clean EOF before any length byte means the peer closed between
    // frames — a normal shutdown, not an error.
    match r.read(&mut len_raw) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_raw[n..])?,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => {
            r.read_exact(&mut len_raw)?;
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_raw) as usize;
    if len > max_frame {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("incoming frame of {len} bytes exceeds cap {max_frame}"),
        ));
    }
    body.clear();
    body.resize(len, 0);
    r.read_exact(body)?;
    let (msg, used) = Message::decode(body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if used != body.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame had {} trailing bytes after one message", body.len() - used),
        ));
    }
    Ok(Some(msg))
}

/// Incremental frame decoder for nonblocking readers.
///
/// A reactor reads whatever bytes the kernel has ready — which may end
/// mid-length-prefix, mid-body, or contain several frames at once — and
/// cannot use the pull-style [`read_frame_into`] (it would block waiting
/// for the rest of a frame). `FrameDecoder` inverts control: the caller
/// [`feed`](FrameDecoder::feed)s raw bytes as they arrive and drains
/// complete messages with [`next_message`](FrameDecoder::next_message).
/// Partial frames stay buffered across calls, so frames torn at
/// arbitrary byte boundaries (including one byte at a time) reassemble
/// exactly.
///
/// One internal buffer serves the whole connection: consumed bytes are
/// reclaimed by compaction (`copy_within`) once they pass a threshold,
/// so steady-state decoding does not reallocate.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    start: usize,
}

/// Consumed-prefix size beyond which [`FrameDecoder`] compacts its
/// buffer instead of letting dead bytes accumulate.
const COMPACT_AT: usize = 64 * 1024;

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends raw stream bytes to the internal buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.start == self.buf.len() {
            // Everything consumed: restart at the buffer's front for free.
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_AT {
            self.buf.copy_within(self.start.., 0);
            self.buf.truncate(self.buf.len() - self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded (partial frame tail).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decodes and returns the next complete message, or `None` if the
    /// buffered bytes end mid-frame (feed more and retry).
    ///
    /// # Errors
    /// `InvalidData` on an oversized length prefix, an undecodable body,
    /// or trailing bytes inside a frame — same contract as
    /// [`read_frame`]. After an error the stream is unframeable and the
    /// connection should be dropped.
    pub fn next_message(&mut self, max_frame: usize) -> io::Result<Option<Message>> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        // flux-lint: allow(panic) — the length check above guarantees
        // four bytes; a shorter slice is unreachable.
        let len_raw: [u8; 4] = avail[..4].try_into().expect("four length bytes");
        let len = u32::from_le_bytes(len_raw) as usize;
        if len > max_frame {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("incoming frame of {len} bytes exceeds cap {max_frame}"),
            ));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let body = &avail[4..4 + len];
        let (msg, used) = Message::decode(body)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if used != len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame had {} trailing bytes after one message", len - used),
            ));
        }
        self.start += 4 + len;
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MsgId, Rank, Topic};
    use flux_value::Value;

    fn sample(seq: u64) -> Message {
        Message::request(
            Topic::new("svc.put").unwrap(),
            MsgId { origin: Rank(1), seq },
            Rank(1),
            Value::from_pairs([("k", Value::from("a.b")), ("v", Value::Int(seq as i64))]),
        )
    }

    #[test]
    fn roundtrip_stream_of_frames() {
        let mut buf = Vec::new();
        for seq in 0..5 {
            write_frame(&mut buf, &sample(seq), MAX_FRAME).unwrap();
        }
        let mut r = &buf[..];
        for seq in 0..5 {
            let m = read_frame(&mut r, MAX_FRAME).unwrap().expect("frame");
            assert_eq!(m, sample(seq));
        }
        assert!(read_frame(&mut r, MAX_FRAME).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut &buf[..], MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_body_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample(9), MAX_FRAME).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_frame(&mut &buf[..], MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn corrupt_body_is_invalid_data() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample(3), MAX_FRAME).unwrap();
        buf[4] = 0x00; // stomp the magic byte
        let err = read_frame(&mut &buf[..], MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn trailing_garbage_in_frame_is_invalid_data() {
        let body = {
            let mut b = sample(4).encode();
            b.push(0xAB);
            b
        };
        let mut buf = Vec::new();
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&body);
        let err = read_frame(&mut &buf[..], MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn buffer_reuse_forms_match_the_allocating_forms() {
        let mut buf = Vec::new();
        let mut scratch = Vec::new();
        for seq in 0..8 {
            write_frame_into(&mut buf, &sample(seq), MAX_FRAME, &mut scratch).unwrap();
        }
        // One scratch allocation serves every frame on the link.
        let cap = scratch.capacity();
        write_frame_into(&mut buf, &sample(8), MAX_FRAME, &mut scratch).unwrap();
        assert_eq!(scratch.capacity(), cap, "scratch must not reallocate for same-size frames");
        let mut r = &buf[..];
        let mut body = Vec::new();
        for seq in 0..9 {
            let m = read_frame_into(&mut r, MAX_FRAME, &mut body).unwrap().expect("frame");
            assert_eq!(m, sample(seq));
        }
        assert!(read_frame_into(&mut r, MAX_FRAME, &mut body).unwrap().is_none());
    }

    #[test]
    fn encode_into_reuses_and_matches_encode() {
        let m = sample(7);
        let mut buf = vec![0xFFu8; 3]; // stale content must be cleared
        m.encode_into(&mut buf);
        assert_eq!(buf, m.encode());
    }

    #[test]
    fn outgoing_cap_is_enforced() {
        let m = sample(1);
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, &m, 4).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(buf.is_empty(), "nothing written for a rejected frame");
    }

    #[test]
    fn decoder_reassembles_byte_at_a_time() {
        let mut wire = Vec::new();
        for seq in 0..6 {
            write_frame(&mut wire, &sample(seq), MAX_FRAME).unwrap();
        }
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &wire {
            dec.feed(std::slice::from_ref(b));
            while let Some(m) = dec.next_message(MAX_FRAME).unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got.len(), 6);
        for (seq, m) in got.iter().enumerate() {
            assert_eq!(*m, sample(seq as u64));
        }
        assert_eq!(dec.pending(), 0, "no tail bytes left over");
    }

    #[test]
    fn decoder_drains_multiple_frames_from_one_feed() {
        let mut wire = Vec::new();
        for seq in 0..4 {
            write_frame(&mut wire, &sample(seq), MAX_FRAME).unwrap();
        }
        // One extra partial frame at the tail.
        let mut tail = Vec::new();
        write_frame(&mut tail, &sample(4), MAX_FRAME).unwrap();
        wire.extend_from_slice(&tail[..tail.len() - 2]);

        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let mut got = 0;
        while let Some(m) = dec.next_message(MAX_FRAME).unwrap() {
            assert_eq!(m, sample(got));
            got += 1;
        }
        assert_eq!(got, 4, "the torn fifth frame must not surface early");
        assert!(dec.pending() > 0);
        dec.feed(&tail[tail.len() - 2..]);
        let m = dec.next_message(MAX_FRAME).unwrap().expect("completed tail frame");
        assert_eq!(m, sample(4));
    }

    #[test]
    fn decoder_rejects_oversized_prefix_before_body_arrives() {
        let mut dec = FrameDecoder::new();
        dec.feed(&u32::MAX.to_le_bytes());
        let err = dec.next_message(MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn decoder_rejects_corrupt_body() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &sample(2), MAX_FRAME).unwrap();
        wire[4] = 0x00; // stomp the magic byte
        let mut dec = FrameDecoder::new();
        dec.feed(&wire);
        let err = dec.next_message(MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn decoder_reclaims_consumed_bytes() {
        let mut one = Vec::new();
        write_frame(&mut one, &sample(0), MAX_FRAME).unwrap();

        // Fully-drained decoders restart at the buffer front: feeding the
        // same frame forever keeps the buffer at one frame's size.
        let mut dec = FrameDecoder::new();
        for _ in 0..1000 {
            dec.feed(&one);
            assert!(dec.next_message(MAX_FRAME).unwrap().is_some());
        }
        assert!(
            dec.buf.capacity() <= 2 * one.len().max(16),
            "fully-drained decoder must not grow: {}",
            dec.buf.capacity()
        );

        // A long consumed prefix ahead of a partial frame is compacted
        // away on the next feed rather than accumulating forever.
        let mut dec = FrameDecoder::new();
        let frames = COMPACT_AT / one.len() + 2;
        for _ in 0..frames {
            dec.feed(&one);
        }
        dec.feed(&one[..3]); // torn tail
        for _ in 0..frames {
            assert!(dec.next_message(MAX_FRAME).unwrap().is_some());
        }
        assert!(dec.start >= COMPACT_AT, "test setup: consumed prefix passed the threshold");
        dec.feed(&one[3..]);
        assert_eq!(dec.start, 0, "feed must compact the consumed prefix");
        assert_eq!(dec.next_message(MAX_FRAME).unwrap(), Some(sample(0)));
        assert_eq!(dec.pending(), 0);
    }
}
