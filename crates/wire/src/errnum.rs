//! POSIX-flavoured error numbers carried in response headers.
//!
//! The Flux prototype reported RPC failures with errno values in the
//! response header; we mirror the subset the system actually uses.

/// Operation not permitted (violates parent bounds or session policy).
pub const EPERM: u32 = 1;
/// No such key / object / rank.
pub const ENOENT: u32 = 2;
/// Interrupted (session shutting down).
pub const EINTR: u32 = 4;
/// I/O error (transport failure).
pub const EIO: u32 = 5;
/// Try again (resource temporarily unavailable).
pub const EAGAIN: u32 = 11;
/// Out of memory / cache capacity.
pub const ENOMEM: u32 = 12;
/// Invalid argument (malformed payload).
pub const EINVAL: u32 = 22;
/// Name too long (KVS key exceeds the length or depth bound).
pub const ENAMETOOLONG: u32 = 36;
/// Function not implemented (no module matched the topic).
pub const ENOSYS: u32 = 38;
/// Not a directory (KVS path component is a value).
pub const ENOTDIR: u32 = 20;
/// Is a directory (KVS get of a directory without dir flag).
pub const EISDIR: u32 = 21;
/// Operation timed out.
pub const ETIMEDOUT: u32 = 110;
/// Host (rank) is down.
pub const EHOSTDOWN: u32 = 112;
/// Stale version (KVS root moved backwards — should never happen).
pub const ESTALE: u32 = 116;

/// A human-readable description of an error number.
pub fn strerror(errnum: u32) -> &'static str {
    match errnum {
        0 => "success",
        EPERM => "operation not permitted",
        ENOENT => "no such key or object",
        EINTR => "interrupted",
        EIO => "input/output error",
        EAGAIN => "resource temporarily unavailable",
        ENOMEM => "out of memory",
        EINVAL => "invalid argument",
        ENAMETOOLONG => "name too long",
        ENOTDIR => "not a directory",
        EISDIR => "is a directory",
        ENOSYS => "function not implemented",
        ETIMEDOUT => "operation timed out",
        EHOSTDOWN => "host is down",
        ESTALE => "stale version",
        // flux-lint: allow(wildcard) — errnums are an open u32 domain;
        // unknown codes get a generic string, never silent behavior.
        _ => "unknown error",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strerror_known_and_unknown() {
        assert_eq!(strerror(0), "success");
        assert_eq!(strerror(ENOENT), "no such key or object");
        assert_eq!(strerror(ENOSYS), "function not implemented");
        assert_eq!(strerror(99999), "unknown error");
    }

    #[test]
    fn codes_are_distinct() {
        let codes = [
            EPERM, ENOENT, EINTR, EIO, EAGAIN, ENOMEM, EINVAL, ENAMETOOLONG, ENOSYS, ENOTDIR,
            EISDIR, ETIMEDOUT, EHOSTDOWN, ESTALE,
        ];
        let mut sorted = codes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), codes.len());
    }
}
