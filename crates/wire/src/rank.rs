//! Session ranks.

use std::fmt;

/// A node's rank within a comms session.
///
/// Ranks are dense `0..size`; rank 0 is the session root (where the KVS
/// master and the log/event roots live). A rank identifies a CMB broker
/// node, not an application process — the paper runs 16 client processes
/// per node, all attached to their node's broker over local IPC.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Rank(pub u32);

impl Rank {
    /// The session root.
    pub const ROOT: Rank = Rank(0);

    /// Bit marking a hop-stack entry as a broker-local client id rather
    /// than a broker rank (see [`Rank::client_hop`]).
    const CLIENT_BIT: u32 = 1 << 31;

    /// Returns true if this is the session root.
    pub fn is_root(self) -> bool {
        self.0 == 0
    }

    /// The rank as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Encodes a broker-local client id as a hop-stack entry.
    ///
    /// The response-routing hop stack (see `flux_wire::Header::hops`)
    /// usually holds broker ranks, but the first entry pushed for a
    /// client-originated request identifies the *local client connection*
    /// on the originating broker — the moral equivalent of a ZeroMQ
    /// identity frame. Client entries are tagged with the top bit, which
    /// keeps real ranks (bounded by session size, far below 2³¹) and
    /// client ids disjoint.
    ///
    /// # Panics
    /// Panics if `id` itself has the tag bit set.
    pub fn client_hop(id: u32) -> Rank {
        assert!(id & Self::CLIENT_BIT == 0, "client id too large");
        Rank(id | Self::CLIENT_BIT)
    }

    /// Decodes a hop entry: `Some(client_id)` if it is a client entry.
    pub fn as_client_hop(self) -> Option<u32> {
        if self.0 & Self::CLIENT_BIT != 0 {
            Some(self.0 & !Self::CLIENT_BIT)
        } else {
            None
        }
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u32> for Rank {
    fn from(v: u32) -> Self {
        Rank(v)
    }
}

impl From<usize> for Rank {
    /// # Panics
    /// Panics if `v` exceeds `u32::MAX` — sessions are bounded well below that.
    fn from(v: usize) -> Self {
        // flux-lint: allow(panic) — documented contract; ranks index
        // in-process session vectors whose sizes never approach u32::MAX.
        Rank(u32::try_from(v).expect("rank fits in u32"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_identification() {
        assert!(Rank::ROOT.is_root());
        assert!(!Rank(1).is_root());
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(Rank::from(5u32), Rank(5));
        assert_eq!(Rank::from(7usize).index(), 7);
        assert_eq!(Rank(12).to_string(), "r12");
    }

    #[test]
    fn ordering() {
        assert!(Rank(1) < Rank(2));
        assert_eq!(Rank::default(), Rank::ROOT);
    }

    #[test]
    fn client_hop_roundtrip() {
        let h = Rank::client_hop(5);
        assert_eq!(h.as_client_hop(), Some(5));
        assert_eq!(Rank(5).as_client_hop(), None);
        assert_eq!(Rank::client_hop(0).as_client_hop(), Some(0));
    }

    #[test]
    #[should_panic(expected = "client id too large")]
    fn client_hop_rejects_tagged_ids() {
        let _ = Rank::client_hop(1 << 31);
    }
}
