//! # flux-wire
//!
//! The CMB message format and wire codec.
//!
//! Per the ICPP'14 Flux paper (§IV-A): *"All CMB messages have a uniform,
//! multi-part message format consisting of at least a header frame and a
//! JSON frame. The header frame identifies the message recipient using a
//! hierarchical name space."* This crate defines:
//!
//! * [`Rank`] — a node's position in a comms session,
//! * [`Topic`] — the hierarchical service name space (`kvs.put` routes to
//!   the `kvs` comms module, handler `put`),
//! * [`Header`] and [`Message`] — the multi-part message (header frame +
//!   [`flux_value::Value`] JSON frame),
//! * [`Plane`] — which of the three overlay planes carries a message
//!   (event bus, request/response tree, rank-addressed ring),
//! * a binary codec ([`Message::encode`] / [`Message::decode`]) with framed,
//!   self-delimiting messages, used by both runtimes,
//! * [`errnum`] — POSIX-flavoured error numbers carried by responses.
//!
//! Requests are routed *upstream* in the tree to the first comms module
//! matching the topic; responses retrace the recorded hops in reverse
//! (the header carries the hop stack). Rank-addressed requests travel the
//! ring plane instead.
//!
//! # Example
//!
//! ```
//! use flux_wire::{Message, MsgId, Rank, Topic};
//! use flux_value::Value;
//!
//! let req = Message::request(
//!     Topic::new("store.put").unwrap(),
//!     MsgId { origin: Rank(3), seq: 1 },
//!     Rank(3),
//!     Value::from_pairs([("key", Value::from("a.b.c")), ("val", Value::Int(42))]),
//! );
//! let bytes = req.encode();
//! let (back, used) = Message::decode(&bytes).unwrap();
//! assert_eq!(used, bytes.len());
//! assert_eq!(back, req);
//! assert_eq!(back.header.topic.service(), "store");
//! ```


#![forbid(unsafe_code)]
#![deny(missing_docs)]
mod codec;
pub mod errnum;
pub mod frame;
mod message;
mod rank;
mod topic;

pub use codec::WireError;
pub use message::{Header, Message, MsgId, MsgType, Payload, Plane};
pub use rank::Rank;
pub use topic::{Topic, TopicError};

#[cfg(test)]
mod proptests;
