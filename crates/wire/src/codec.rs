//! Binary framing for [`Message`].
//!
//! Layout (all integers little-endian, lengths LEB128 varints):
//!
//! ```text
//! magic   u8      0xFC
//! version u8      1
//! type    u8      1=request 2=response 3=event
//! flags   u8      bit0: dst present
//! id      u32 origin, varint seq
//! src     u32
//! dst     u32                       (iff flags bit0)
//! errnum  varint
//! topic   varint len + bytes
//! hops    varint count + u32 each
//! payload canonical Value encoding (self-delimiting)
//! ```
//!
//! Messages are self-delimiting, so a byte stream of concatenated messages
//! (as a TCP transport would produce) decodes without external framing.

use crate::{Header, Message, MsgId, MsgType, Rank, Topic};
use flux_value::{DecodeError, Value};
use std::fmt;

const MAGIC: u8 = 0xFC;
const VERSION: u8 = 1;

const FLAG_DST: u8 = 0x01;

/// Errors produced while decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended mid-message.
    Truncated,
    /// First byte was not the magic.
    BadMagic(u8),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown message type byte.
    BadType(u8),
    /// The topic failed validation.
    BadTopic,
    /// The payload failed canonical decoding.
    BadPayload(DecodeError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire message truncated"),
            WireError::BadMagic(b) => write!(f, "bad magic byte {b:#04x}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadType(t) => write!(f, "unknown message type {t}"),
            WireError::BadTopic => write!(f, "invalid topic in wire message"),
            WireError::BadPayload(e) => write!(f, "invalid payload: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Number of bytes [`encode_header`] will write for `h`, computed without
/// touching an output buffer. The simulator's cost model calls this on
/// every send; keeping it arithmetic (no allocation, no byte writes)
/// keeps the hot path flat. Consistency with [`encode_header`] is pinned
/// by tests.
pub(crate) fn header_wire_len(h: &Header) -> usize {
    let mut n = 4 // magic, version, type, flags
        + 4 // id.origin
        + varint_len(h.id.seq)
        + 4; // src
    if h.dst.is_some() {
        n += 4;
    }
    n += varint_len(u64::from(h.errnum));
    n += varint_len(h.topic.as_str().len() as u64) + h.topic.as_str().len();
    n += varint_len(h.hops.len() as u64) + 4 * h.hops.len();
    n
}

/// Encoded length of a LEB128 varint (mirrors `flux_value::write_varint`).
fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

pub(crate) fn encode_header(h: &Header, out: &mut Vec<u8>) {
    out.push(MAGIC);
    out.push(VERSION);
    out.push(h.msg_type.to_byte());
    let mut flags = 0u8;
    if h.dst.is_some() {
        flags |= FLAG_DST;
    }
    out.push(flags);
    out.extend_from_slice(&h.id.origin.0.to_le_bytes());
    flux_value::write_varint(out, h.id.seq);
    out.extend_from_slice(&h.src.0.to_le_bytes());
    if let Some(dst) = h.dst {
        out.extend_from_slice(&dst.0.to_le_bytes());
    }
    flux_value::write_varint(out, u64::from(h.errnum));
    flux_value::write_varint(out, h.topic.as_str().len() as u64);
    out.extend_from_slice(h.topic.as_str().as_bytes());
    flux_value::write_varint(out, h.hops.len() as u64);
    for hop in &h.hops {
        out.extend_from_slice(&hop.0.to_le_bytes());
    }
}

impl Message {
    /// Encodes to the framed binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.payload.approx_size());
        self.encode_into(&mut out);
        out
    }

    /// Encodes into `out`, clearing it first but keeping its allocation.
    /// The hot-path form for senders that frame many messages: one
    /// scratch buffer amortizes across every message on a link instead
    /// of a fresh heap allocation per frame.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        encode_header(&self.header, out);
        self.payload.encode_canonical_into(out);
    }

    /// Decodes one message from the front of `bytes`, returning it and the
    /// bytes consumed.
    pub fn decode(bytes: &[u8]) -> Result<(Message, usize), WireError> {
        let mut cur = Cur { bytes, pos: 0 };
        let magic = cur.u8()?;
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = cur.u8()?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let type_byte = cur.u8()?;
        let msg_type = MsgType::from_byte(type_byte).ok_or(WireError::BadType(type_byte))?;
        let flags = cur.u8()?;
        let origin = Rank(cur.u32()?);
        let seq = cur.varint()?;
        let src = Rank(cur.u32()?);
        let dst = if flags & FLAG_DST != 0 { Some(Rank(cur.u32()?)) } else { None };
        let errnum = u32::try_from(cur.varint()?).map_err(|_| WireError::Truncated)?;
        let topic_len = cur.varint()? as usize;
        let topic_raw = cur.take(topic_len)?;
        let topic_str = std::str::from_utf8(topic_raw).map_err(|_| WireError::BadTopic)?;
        let topic = Topic::new(topic_str).map_err(|_| WireError::BadTopic)?;
        let hop_count = cur.varint()? as usize;
        // Guard: each hop needs 4 bytes; reject absurd counts before allocating.
        if hop_count > cur.remaining() / 4 {
            return Err(WireError::Truncated);
        }
        let mut hops = Vec::with_capacity(hop_count);
        for _ in 0..hop_count {
            hops.push(Rank(cur.u32()?));
        }
        let (payload, used) =
            Value::decode_canonical_prefix(&bytes[cur.pos..]).map_err(WireError::BadPayload)?;
        let total = cur.pos + used;
        Ok((
            Message {
                header: Header {
                    msg_type,
                    topic,
                    id: MsgId { origin, seq },
                    src,
                    dst,
                    errnum,
                    hops,
                },
                payload: payload.into(),
            },
            total,
        ))
    }
}

struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.bytes.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let raw = self.take(4)?;
        Ok(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]))
    }

    fn varint(&mut self) -> Result<u64, WireError> {
        let (v, n) =
            flux_value::read_varint(&self.bytes[self.pos..]).map_err(|_| WireError::Truncated)?;
        self.pos += n;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_value::Value;

    fn sample() -> Message {
        let mut m = Message::request(
            Topic::new("svc.commit").unwrap(),
            MsgId { origin: Rank(7), seq: 123456 },
            Rank(7),
            Value::from_pairs([("root", Value::from("abc")), ("n", Value::Int(3))]),
        );
        m.header.hops = vec![Rank(7), Rank(3), Rank(1)];
        m
    }

    #[test]
    fn header_wire_len_matches_encoder() {
        let t = Topic::new("x.y").unwrap();
        let id = MsgId { origin: Rank(0), seq: u64::MAX };
        let mut hopped = Message::request(t.clone(), id, Rank(0), Value::Null);
        hopped.header.hops = (0..300).map(Rank).collect();
        for m in [
            sample(),
            hopped,
            Message::request_to(t.clone(), id, Rank(0), Rank(9), Value::Null),
            Message::error_response_to(&Message::request(t, id, Rank(0), Value::Null), 200),
        ] {
            let mut out = Vec::new();
            encode_header(&m.header, &mut out);
            assert_eq!(header_wire_len(&m.header), out.len(), "{m:?}");
        }
    }

    #[test]
    fn roundtrip_request() {
        let m = sample();
        let enc = m.encode();
        let (back, used) = Message::decode(&enc).unwrap();
        assert_eq!(used, enc.len());
        assert_eq!(back, m);
    }

    #[test]
    fn roundtrip_all_types() {
        let t = Topic::new("x.y").unwrap();
        let id = MsgId { origin: Rank(0), seq: 0 };
        for m in [
            Message::request(t.clone(), id, Rank(0), Value::Null),
            Message::request_to(t.clone(), id, Rank(0), Rank(9), Value::Null),
            Message::response_to(&Message::request(t.clone(), id, Rank(0), Value::Null), Value::Bool(true)),
            Message::event(t.clone(), id, Rank(0), Value::Int(-1)),
            Message::error_response_to(&Message::request(t, id, Rank(0), Value::Null), 38),
        ] {
            let enc = m.encode();
            let (back, used) = Message::decode(&enc).unwrap();
            assert_eq!(used, enc.len());
            assert_eq!(back, m);
        }
    }

    #[test]
    fn concatenated_stream_decodes() {
        let a = sample();
        let b = Message::event(
            Topic::new("hb").unwrap(),
            MsgId { origin: Rank(0), seq: 9 },
            Rank(0),
            Value::Int(9),
        );
        let mut buf = a.encode();
        buf.extend(b.encode());
        let (m1, n1) = Message::decode(&buf).unwrap();
        let (m2, n2) = Message::decode(&buf[n1..]).unwrap();
        assert_eq!(m1, a);
        assert_eq!(m2, b);
        assert_eq!(n1 + n2, buf.len());
    }

    #[test]
    fn rejects_corruption() {
        let enc = sample().encode();
        assert_eq!(Message::decode(&[]), Err(WireError::Truncated));
        let mut bad = enc.clone();
        bad[0] = 0x00;
        assert_eq!(Message::decode(&bad), Err(WireError::BadMagic(0)));
        let mut bad = enc.clone();
        bad[1] = 99;
        assert_eq!(Message::decode(&bad), Err(WireError::BadVersion(99)));
        let mut bad = enc.clone();
        bad[2] = 77;
        assert_eq!(Message::decode(&bad), Err(WireError::BadType(77)));
        for cut in 1..enc.len() {
            assert!(Message::decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_invalid_topic_bytes() {
        // Build a message then corrupt the topic bytes in place.
        let m = Message::event(
            Topic::new("hb").unwrap(),
            MsgId { origin: Rank(0), seq: 1 },
            Rank(0),
            Value::Null,
        );
        let mut enc = m.encode();
        let pos = enc.windows(2).position(|w| w == b"hb").unwrap();
        enc[pos] = b'H';
        assert_eq!(Message::decode(&enc), Err(WireError::BadTopic));
    }

    #[test]
    fn hop_count_bomb_rejected() {
        // Header claiming 2^32 hops with no bytes behind it must not allocate.
        let m = sample();
        let mut enc = m.encode();
        enc.truncate(20);
        assert!(Message::decode(&enc).is_err());
    }
}
