//! Fig. 1 — comms-session wire-up: virtual time for a freshly created
//! session to become collectively operational (all brokers up, a full
//! cross-session barrier completed on each of the three planes'
//! machinery).
//!
//! The paper shows the wire-up diagram rather than a measurement; this
//! bench quantifies the bring-up cost of that wire-up as sessions grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flux_broker::CommsModule;
use flux_kvs::KvsModule;
use flux_modules::BarrierModule;
use flux_rt::script::{Op, ScriptClient};
use flux_rt::sim::SimSession;
use flux_sim::NetParams;
use flux_wire::Rank;
use std::time::Duration;

fn wireup_time(size: u32, arity: u32) -> Duration {
    let mut session = SimSession::new(size, arity, NetParams::default(), |_| {
        vec![
            Box::new(KvsModule::new()) as Box<dyn CommsModule>,
            Box::new(BarrierModule::new()),
        ]
    });
    // One client per broker joins a session-wide barrier: completion
    // requires every broker reachable over the tree and the event plane
    // delivering the exit everywhere.
    let outcomes: Vec<_> = (0..size)
        .map(|r| {
            ScriptClient::spawn(
                &mut session,
                Rank(r),
                vec![Op::Barrier { name: "wireup".into(), nprocs: u64::from(size) }],
            )
        })
        .collect();
    let end = session.run_until_quiet(None).expect("unbounded");
    for o in &outcomes {
        assert!(o.borrow().finished);
    }
    Duration::from_nanos(end.as_nanos())
}

fn fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_wireup");
    g.sample_size(10);
    for size in [16u32, 64, 256] {
        for arity in [2u32, 16] {
            let id = BenchmarkId::new(format!("arity-{arity}"), size);
            g.bench_function(id, |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += wireup_time(size, arity);
                    }
                    total
                });
            });
        }
    }
    g.finish();
}

criterion_group!(
    name = benches;
    // Deterministic virtual-time measurements have zero variance, which
    // criterion's HTML plotter cannot render; plain reports only.
    config = Criterion::default().without_plots();
    targets = fig1
);
criterion_main!(benches);
