//! §V-B model check — measured single-directory consumer latency vs the
//! paper's `log2(C) × T(G)` prediction.
//!
//! Two series per scale: `measured` is the simulated phase latency,
//! `model` the analytic prediction with the same cost constants. Close
//! tracking (same order of magnitude, same growth) validates both the
//! simulator and the paper's critical-path analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flux_bench::{bench_params, virtual_phase, Phase, BENCH_SCALES};
use flux_kap::model;
use std::time::Duration;

fn model_check(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_check");
    g.sample_size(10);
    for &nodes in &BENCH_SCALES {
        let p = bench_params(nodes);
        let consumers = p.total_procs();
        g.bench_function(BenchmarkId::new("measured", consumers), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += virtual_phase(&p, Phase::Consumer);
                }
                total
            });
        });
        let t_g = model::transfer_time_ns(p.total_objects(), p.value_size as u64, 1_300, 305);
        let predicted = model::consumer_latency_model_ns(consumers, t_g);
        g.bench_function(BenchmarkId::new("model", consumers), |b| {
            b.iter_custom(|iters| Duration::from_nanos(predicted) * iters as u32);
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    // Deterministic virtual-time measurements have zero variance, which
    // criterion's HTML plotter cannot render; plain reports only.
    config = Criterion::default().without_plots();
    targets = model_check
);
criterion_main!(benches);
