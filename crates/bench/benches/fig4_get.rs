//! Fig. 4 — consumer-phase (`kvs_get`) maximum latency: single directory
//! (4a) vs directories of ≤128 objects (4b).
//!
//! Expected shape: the single-directory layout pays to fault the whole
//! (ever-growing) directory object through the slave-cache chain and
//! grows ~linearly with the consumer count; the split layout caps
//! directory size and scales visibly better.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flux_bench::{bench_params, virtual_phase, Phase, BENCH_SCALES};
use flux_kap::layout::DirLayout;

fn fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_get");
    g.sample_size(10);
    for &nodes in &BENCH_SCALES {
        for (layout, label) in [(DirLayout::Single, "single-dir"), (DirLayout::Split128, "split-128")]
        {
            for naccess in [1u64, 4] {
                let mut p = bench_params(nodes);
                p.layout = layout;
                p.naccess = naccess;
                p.stride = naccess;
                let id =
                    BenchmarkId::new(format!("{label}/access-{naccess}"), p.total_procs());
                g.bench_function(id, |b| {
                    b.iter_custom(|iters| {
                        let mut total = std::time::Duration::ZERO;
                        for _ in 0..iters {
                            total += virtual_phase(&p, Phase::Consumer);
                        }
                        total
                    });
                });
            }
        }
    }
    g.finish();
}

criterion_group!(
    name = benches;
    // Deterministic virtual-time measurements have zero variance, which
    // criterion's HTML plotter cannot render; plain reports only.
    config = Criterion::default().without_plots();
    targets = fig4
);
criterion_main!(benches);
