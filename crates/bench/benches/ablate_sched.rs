//! Ablation A2 — scheduler parallelism (paper §II/§III): one centralized
//! scheduler over the whole machine vs a hierarchy of instances each
//! scheduling a lease.
//!
//! Measured in *wall-clock* time (this is real scheduling computation,
//! not simulated message latency): draining the same 2000-job UQ
//! ensemble through one 256-node FCFS instance vs through 8 children of
//! 32 nodes each. The hierarchical split keeps each queue short — the
//! divide-and-conquer scaling argument of the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use flux_core::{Fcfs, Instance, InstanceConfig, Workload};
use std::hint::black_box;

const TOTAL_NODES: u32 = 256;
const CHILDREN: u32 = 8;
const JOBS: usize = 2000;

fn centralized() -> u64 {
    let mut root = Instance::root(
        InstanceConfig::new("central", TOTAL_NODES).with_power(u64::MAX / 2),
        Box::new(Fcfs),
    );
    for spec in Workload::seeded(11).uq_ensemble(JOBS, 10_000) {
        root.submit(spec);
    }
    root.drain()
}

fn hierarchical() -> u64 {
    let mut root = Instance::root(
        InstanceConfig::new("root", TOTAL_NODES).with_power(u64::MAX / 2),
        Box::new(Fcfs),
    );
    let kids: Vec<_> = (0..CHILDREN)
        .map(|i| {
            root.spawn_child(
                InstanceConfig::new(format!("part{i}"), TOTAL_NODES / CHILDREN),
                Box::new(Fcfs),
            )
            .expect("lease fits")
        })
        .collect();
    for (i, spec) in Workload::seeded(11).uq_ensemble(JOBS, 10_000).into_iter().enumerate() {
        let kid = kids[i % kids.len()];
        root.child_mut(kid).unwrap().submit(spec);
    }
    root.drain()
}

fn ablate_sched(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_sched");
    g.sample_size(10);
    g.bench_function("centralized-fcfs-2000-jobs", |b| b.iter(|| black_box(centralized())));
    g.bench_function("hierarchical-8x-fcfs-2000-jobs", |b| b.iter(|| black_box(hierarchical())));
    g.finish();
}

criterion_group!(
    name = benches;
    // Deterministic virtual-time measurements have zero variance, which
    // criterion's HTML plotter cannot render; plain reports only.
    config = Criterion::default().without_plots();
    targets = ablate_sched
);
criterion_main!(benches);
