//! Fig. 2 — producer-phase (`kvs_put`) maximum latency.
//!
//! Reported durations are *virtual* phase latencies from the simulator
//! (via `iter_custom`); the series should stay nearly flat as the
//! producer count scales, with value size shifting the curves upward.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flux_bench::{bench_params, virtual_phase, Phase, BENCH_SCALES};

fn fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_put");
    g.sample_size(10);
    for &nodes in &BENCH_SCALES {
        for vsize in [8usize, 512, 8192] {
            let mut p = bench_params(nodes);
            p.value_size = vsize;
            let id = BenchmarkId::new(format!("vsize-{vsize}"), p.total_procs());
            g.bench_function(id, |b| {
                b.iter_custom(|iters| {
                    let mut total = std::time::Duration::ZERO;
                    for _ in 0..iters {
                        total += virtual_phase(&p, Phase::Producer);
                    }
                    total
                });
            });
        }
    }
    g.finish();
}

criterion_group!(
    name = benches;
    // Deterministic virtual-time measurements have zero variance, which
    // criterion's HTML plotter cannot render; plain reports only.
    config = Criterion::default().without_plots();
    targets = fig2
);
criterion_main!(benches);
