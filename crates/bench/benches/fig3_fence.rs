//! Fig. 3 — synchronization-phase (`kvs_fence`) maximum latency,
//! unique vs redundant values.
//!
//! Expected shape: unique values grow ~linearly with the producer count
//! (value payloads concatenate up the tree); redundant values are much
//! cheaper (they deduplicate at every hop) but still grow faster than
//! logarithmically, because the `(key, SHA1)` tuples still concatenate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flux_bench::{bench_params, virtual_phase, Phase, BENCH_SCALES};

fn fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_fence");
    g.sample_size(10);
    for &nodes in &BENCH_SCALES {
        for vsize in [512usize, 8192] {
            for redundant in [false, true] {
                let mut p = bench_params(nodes);
                p.value_size = vsize;
                p.redundant = redundant;
                let series =
                    if redundant { format!("red-vsize-{vsize}") } else { format!("vsize-{vsize}") };
                let id = BenchmarkId::new(series, p.total_procs());
                g.bench_function(id, |b| {
                    b.iter_custom(|iters| {
                        let mut total = std::time::Duration::ZERO;
                        for _ in 0..iters {
                            total += virtual_phase(&p, Phase::Sync);
                        }
                        total
                    });
                });
            }
        }
    }
    g.finish();
}

criterion_group!(
    name = benches;
    // Deterministic virtual-time measurements have zero variance, which
    // criterion's HTML plotter cannot render; plain reports only.
    config = Criterion::default().without_plots();
    targets = fig3
);
criterion_main!(benches);
