//! Wall-clock micro-benchmarks of the engine-level building blocks:
//! SHA1 hashing, canonical encoding, wire codec, and master-side commit
//! application. These are real CPU costs (not simulated), guarding
//! against performance regressions in the hot paths every KVS operation
//! touches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flux_hash::{ObjectId, Sha1};
use flux_kvs::{apply_tuples, KvsObject, ObjectCache};
use flux_proto::KvsMethod;
use flux_value::Value;
use flux_wire::{Message, MsgId, Rank};
use std::hint::black_box;

fn sha1_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/sha1");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter(|| black_box(Sha1::digest(black_box(&data))));
        });
    }
    g.finish();
}

fn canonical_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/canonical");
    let small = Value::parse(r#"{"k": "a.b.c", "v": 42}"#).unwrap();
    let mut big = Value::object();
    for i in 0..1000 {
        big.insert(format!("key{i:04}"), Value::Int(i));
    }
    for (label, v) in [("small", &small), ("1k-object", &big)] {
        g.bench_function(BenchmarkId::new("encode", label), |b| {
            b.iter(|| black_box(v.encode_canonical()));
        });
        let enc = v.encode_canonical();
        g.bench_function(BenchmarkId::new("decode", label), |b| {
            b.iter(|| black_box(Value::decode_canonical(black_box(&enc)).unwrap()));
        });
    }
    g.finish();
}

fn codec_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/wire-codec");
    let msg = Message::request(
        KvsMethod::Put.topic(),
        MsgId { origin: Rank(3), seq: 42 },
        Rank(3),
        Value::parse(r#"{"k": "a.b.c", "v": "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}"#).unwrap(),
    );
    g.bench_function("encode", |b| b.iter(|| black_box(msg.encode())));
    let enc = msg.encode();
    g.bench_function("decode", |b| {
        b.iter(|| black_box(Message::decode(black_box(&enc)).unwrap()))
    });
    g.finish();
}

fn commit_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro/master-commit");
    g.sample_size(20);
    for n in [16usize, 256, 4096] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(BenchmarkId::new("apply_tuples", n), |b| {
            b.iter_batched(
                || {
                    let mut cache = ObjectCache::new();
                    let root = cache.insert(KvsObject::empty_dir());
                    let tuples: Vec<(String, Option<ObjectId>)> = (0..n)
                        .map(|i| {
                            let id = cache.insert(KvsObject::Val(Value::Int(i as i64)));
                            (format!("kap.d{}.k{i}", i / 128), Some(id))
                        })
                        .collect();
                    (cache, root, tuples)
                },
                |(mut cache, root, tuples)| {
                    black_box(apply_tuples(&mut cache, root, &tuples))
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    // Deterministic virtual-time measurements have zero variance, which
    // criterion's HTML plotter cannot render; plain reports only.
    config = Criterion::default().without_plots();
    targets = sha1_bench, canonical_bench, codec_bench, commit_bench
);
criterion_main!(benches);
