//! Ablation A3 — module placement depth (paper §IV-A: "A comms module
//! may thus be loaded at a configurable tree depth to tune its level of
//! distribution or to conserve node resources for application workloads
//! toward the leaves").
//!
//! The KVS module is loaded only on brokers at depth ≤ d; requests from
//! deeper brokers route upstream to the first instance. Shallow
//! placement saves leaf memory but concentrates load and lengthens every
//! access path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flux_broker::CommsModule;
use flux_kap::layout::key_for;
use flux_kap::layout::DirLayout;
use flux_modules::BarrierModule;
use flux_rt::script::{Op, ScriptClient};
use flux_rt::sim::SimSession;
use flux_sim::NetParams;
use flux_topo::Tree;
use flux_value::Value;
use flux_wire::Rank;
use std::time::Duration;

const NODES: u32 = 32;
const PPN: u32 = 4;

/// Virtual makespan of a put+fence+get run with the KVS loaded only at
/// depth ≤ `max_depth`.
fn run_with_depth(max_depth: u32) -> Duration {
    let tree = Tree::binary(NODES);
    let mut session = SimSession::new(NODES, 2, NetParams::default(), |rank| {
        let mut mods: Vec<Box<dyn CommsModule>> = vec![Box::new(BarrierModule::new())];
        if tree.depth(rank) <= max_depth {
            mods.push(Box::new(flux_kvs::KvsModule::new()));
        }
        mods
    });
    let procs = u64::from(NODES * PPN);
    let outcomes: Vec<_> = (0..procs)
        .map(|gid| {
            let node = Rank((gid % u64::from(NODES)) as u32);
            ScriptClient::spawn(
                &mut session,
                node,
                vec![
                    Op::Put {
                        key: key_for(DirLayout::Split128, gid),
                        val: Value::from(format!("{gid:08x}")),
                    },
                    Op::Fence { name: "d".into(), nprocs: procs },
                    Op::Get { key: key_for(DirLayout::Split128, (gid + 1) % procs) },
                ],
            )
        })
        .collect();
    let end = session.run_until_quiet(None).expect("unbounded");
    for (g, o) in outcomes.iter().enumerate() {
        let o = o.borrow();
        assert!(o.finished && o.op_err.iter().all(|&e| e == 0), "proc {g}: {:?}", o.op_err);
    }
    Duration::from_nanos(end.as_nanos())
}

fn ablate_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_depth");
    g.sample_size(10);
    let height = Tree::binary(NODES).height();
    for depth in [0u32, 1, 2, height] {
        let label = if depth == height { "leaves(all)".to_owned() } else { format!("depth<={depth}") };
        g.bench_function(BenchmarkId::new("kvs-placement", label), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += run_with_depth(depth);
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    // Deterministic virtual-time measurements have zero variance, which
    // criterion's HTML plotter cannot render; plain reports only.
    config = Criterion::default().without_plots();
    targets = ablate_depth
);
criterion_main!(benches);
