//! Ablation A1 — tree-plane fan-out: fence latency under binary, 4-ary,
//! and 16-ary trees (the paper: "Although a binary RPC/reduction tree is
//! pictured, the tree shape is configurable").
//!
//! Higher arity shortens the tree (fewer reduction hops) but concentrates
//! more children per interior broker; the crossover is what this ablation
//! maps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flux_bench::{bench_params, virtual_phase, Phase};
use std::time::Duration;

fn ablate_arity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_arity");
    g.sample_size(10);
    let nodes = 32;
    for arity in [2u32, 4, 16] {
        let mut p = bench_params(nodes);
        p.arity = arity;
        p.value_size = 2048;
        let id = BenchmarkId::new("fence", format!("arity-{arity}"));
        g.bench_function(id, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += virtual_phase(&p, Phase::Sync);
                }
                total
            });
        });
        let id = BenchmarkId::new("consumer", format!("arity-{arity}"));
        g.bench_function(id, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += virtual_phase(&p, Phase::Consumer);
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    // Deterministic virtual-time measurements have zero variance, which
    // criterion's HTML plotter cannot render; plain reports only.
    config = Criterion::default().without_plots();
    targets = ablate_arity
);
criterion_main!(benches);
