//! Ablation A4 — the PR-5 KVS hot-path optimizations, measured in
//! virtual time on the bench harness's margin workload: per-producer
//! commits with redundant values and repeat consumer reads.
//!
//! Four configurations isolate each optimization's contribution:
//! neither, batching only, lookup memo only, both (the shipped
//! defaults). `BENCH_kap.json`'s `optimization` section records the
//! committed neither-vs-both margin; this ablation maps the space.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flux_bench::{virtual_phase, Phase};
use flux_kap::bench::{baseline_kvs, margin_params};
use flux_kvs::KvsConfig;
use std::time::Duration;

fn ablate_kvs_hotpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablate_kvs_hotpath");
    g.sample_size(10);
    let variants: [(&str, KvsConfig); 4] = [
        ("neither", baseline_kvs()),
        ("batching", KvsConfig { lookup_cache: false, ..KvsConfig::default() }),
        ("memo", KvsConfig { batch_window_ns: 0, ..KvsConfig::default() }),
        ("both", KvsConfig::default()),
    ];
    for (name, kvs) in variants {
        let p = margin_params(kvs);
        let id = BenchmarkId::new("makespan", name);
        g.bench_function(id, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += virtual_phase(&p, Phase::Makespan);
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group!(benches, ablate_kvs_hotpath);
criterion_main!(benches);
