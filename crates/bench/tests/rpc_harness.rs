//! Harness-level guarantees for the sustained-RPC bench matrix.
//!
//! Every cell is wall-clock (live sockets), so nothing is pinned to
//! absolute numbers. What the committed `BENCH_rpc.json` must always
//! show — and what a regenerated file must reproduce — are the
//! *relations* the reactor exists for:
//!
//! * at the ≥1k-client head-to-head, the pipelined reactor's throughput
//!   is strictly above the thread-per-link baseline's;
//! * deep request windows are strictly above window 1 (pipelining pays);
//! * the 4k-client scale point exists and completed every RPC —
//!   a population the thread-per-link architecture would need 8k OS
//!   threads to serve.
//!
//! Plus a live smoke: a small cell of each architecture actually runs.

use flux_bench::rpc::{self, RpcParams, ServerKind};
use flux_value::Value;

fn golden() -> Value {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rpc.json");
    let text = std::fs::read_to_string(path).expect("committed BENCH_rpc.json");
    Value::parse(&text).expect("BENCH_rpc.json parses")
}

fn cell<'a>(doc: &'a Value, name: &str) -> &'a Value {
    doc.get("cells")
        .and_then(Value::as_array)
        .and_then(|cells| {
            cells.iter().find(|c| c.get("name").and_then(Value::as_str) == Some(name))
        })
        .unwrap_or_else(|| panic!("cell {name} missing from BENCH_rpc.json"))
}

fn tput(doc: &Value, name: &str) -> f64 {
    cell(doc, name)
        .get("throughput_rpc_per_s")
        .and_then(Value::as_float)
        .unwrap_or_else(|| panic!("cell {name}: no throughput"))
}

#[test]
fn golden_file_passes_the_schema_check() {
    let doc = golden();
    let errs = rpc::check_schema(&doc);
    assert!(errs.is_empty(), "{errs:?}");
    assert_eq!(
        doc.get("smoke").and_then(Value::as_bool),
        Some(false),
        "committed file must be the full matrix, not a CI smoke run"
    );
}

#[test]
fn reactor_beats_thread_per_link_at_1k_clients() {
    let doc = golden();
    let reactor = tput(&doc, "reactor/1024c/w32");
    let threads = tput(&doc, "tcpthreads/1024c/w32");
    assert!(
        reactor > threads,
        "pipelined reactor throughput ({reactor:.0}/s) must be strictly above \
         thread-per-link ({threads:.0}/s) — regenerate with `rpc_bench --out BENCH_rpc.json`"
    );
    let margin = doc
        .get("architecture")
        .and_then(|a| a.get("reactor_over_threadlink"))
        .and_then(Value::as_float)
        .expect("architecture.reactor_over_threadlink");
    assert!(margin > 1.0);
    assert!(
        (margin - reactor / threads).abs() < 1e-9,
        "derived margin disagrees with its cells"
    );
}

#[test]
fn pipelining_beats_window_one() {
    let doc = golden();
    let deep = tput(&doc, "reactor/1024c/w32");
    let w1 = tput(&doc, "reactor/1024c/w1");
    assert!(
        deep > w1,
        "window-32 throughput ({deep:.0}/s) must beat window-1 ({w1:.0}/s)"
    );
    let speedup = doc
        .get("pipelining")
        .and_then(|p| p.get("speedup_deep_over_w1"))
        .and_then(Value::as_float)
        .expect("pipelining.speedup_deep_over_w1");
    assert!(speedup > 1.0);
}

#[test]
fn four_thousand_client_scale_point_is_committed() {
    let doc = golden();
    let c = cell(&doc, "reactor/4096c/w32");
    assert_eq!(c.get("clients").and_then(Value::as_int), Some(4096));
    let total = c.get("total_rpcs").and_then(Value::as_int).expect("total_rpcs");
    let per_client = c.get("per_client").and_then(Value::as_int).expect("per_client");
    assert_eq!(total, 4096 * per_client, "4k cell lost replies");
}

/// Both server architectures still run end to end: a small live cell
/// each, every RPC answered. Wall-clock — nothing about relative speed
/// is asserted here (machine load would make that flaky).
#[test]
fn live_smoke_both_architectures_complete_all_rpcs() {
    let p = RpcParams { clients: 16, window: 8, per_client: 16 };
    for kind in [ServerKind::Reactor, ServerKind::ThreadLink] {
        let r = rpc::run_server_cell(kind, &p)
            .unwrap_or_else(|e| panic!("{} smoke failed: {e}", kind.name()));
        assert_eq!(r.total_rpcs, p.total(), "{} lost replies", kind.name());
        assert!(r.p50_ns > 0 && r.p50_ns <= r.p99_ns && r.p99_ns <= r.max_ns);
    }
}
