//! # flux-bench
//!
//! The evaluation harness crate: Criterion benches (one per paper table
//! and figure, plus the ablations listed in DESIGN.md), the runnable
//! examples in the repository's `examples/`, and the cross-crate
//! integration tests in `tests/`.
//!
//! DES-based benches report **virtual time** through Criterion's
//! `iter_custom`: the measured quantity is the simulated phase latency at
//! a fixed (reduced) scale, so `cargo bench` regenerates the figures'
//! shapes quickly; the `kap` binary (flux-kap) runs the full paper-scale
//! sweeps.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod rpc;
pub mod threadlink;

use flux_kap::{run_kap, KapParams};
use std::time::Duration;

/// Runs a KAP configuration and reports the chosen phase as a wall-like
/// `Duration` (virtual nanoseconds), for `iter_custom`.
pub fn virtual_phase(params: &KapParams, phase: Phase) -> Duration {
    let r = run_kap(params);
    let ns = match phase {
        Phase::Producer => r.producer_ns,
        Phase::Sync => r.sync_ns,
        Phase::Consumer => r.consumer_ns,
        Phase::Makespan => r.makespan_ns,
    };
    Duration::from_nanos(ns)
}

/// Which KAP phase a bench measures.
#[derive(Clone, Copy, Debug)]
pub enum Phase {
    /// kvs_put phase (Fig. 2).
    Producer,
    /// kvs_fence phase (Fig. 3).
    Sync,
    /// kvs_get phase (Fig. 4).
    Consumer,
    /// Whole run.
    Makespan,
}

/// The reduced node scales benches sweep (full scales live in the `kap`
/// binary; these keep `cargo bench` minutes-fast on one core).
pub const BENCH_SCALES: [u32; 3] = [8, 16, 32];

/// Reduced processes per node for benches.
pub const BENCH_PPN: u32 = 4;

/// A bench-sized KAP parameter set at `nodes` nodes.
pub fn bench_params(nodes: u32) -> KapParams {
    let mut p = KapParams::fully_populated(nodes);
    p.procs_per_node = BENCH_PPN;
    p.producers = p.total_procs();
    p.consumers = p.total_procs();
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_phase_reports_positive_durations() {
        let p = bench_params(4);
        assert!(virtual_phase(&p, Phase::Sync) > Duration::ZERO);
        assert!(virtual_phase(&p, Phase::Makespan) >= virtual_phase(&p, Phase::Consumer));
    }
}
