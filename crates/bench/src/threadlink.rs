//! Thread-per-link baseline server for the RPC benchmark.
//!
//! Before the poll-based reactor landed, `flux_rt::tcp` ran one reader
//! and one writer OS thread per TCP connection. This module keeps that
//! architecture alive as a measurable baseline: a single sans-io
//! [`Broker`] serviced by an acceptor thread plus two blocking threads
//! per accepted client, speaking the exact wire protocol the reactor
//! speaks (`CLIENT_HELLO` handshake, length-prefixed frames). The RPC
//! bench drives both servers with the identical client load so the
//! committed `BENCH_rpc.json` comparison isolates the I/O architecture.
//!
//! Deliberately *not* a [`flux_rt::transport::Transport`]: it hosts a
//! single broker with socket clients only, which is all the sustained
//! RPC benchmark needs.

use flux_broker::{Broker, BrokerConfig, ClientId, CommsModule, Input, Output};
use flux_rt::tcp::CLIENT_HELLO;
use flux_wire::frame::{write_frame_into, FrameDecoder, MAX_FRAME};
use flux_wire::{Message, Rank};
use std::collections::{BinaryHeap, HashMap};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocking conn threads wake to check the stop flag.
const POLL: Duration = Duration::from_millis(100);

/// Events funnelled into the single broker thread.
enum Ev {
    /// A frame arrived from socket client `0`.
    FromClient(ClientId, Message),
    /// A freshly accepted client registered its writer channel.
    NewClient(ClientId, Sender<Message>),
    /// Tear the server down.
    Shutdown,
}

/// A running thread-per-link broker server. Dropping without calling
/// [`ThreadLinkServer::shutdown`] leaks its threads; tests and benches
/// must shut it down explicitly.
pub struct ThreadLinkServer {
    addr: SocketAddr,
    tx: Sender<Ev>,
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadLinkServer {
    /// Binds a loopback listener and starts the broker + acceptor
    /// threads. The broker is rank 0 of a size-1 session running
    /// `modules`.
    ///
    /// # Panics
    /// Panics if the listener cannot bind (benchmark setup, not a
    /// recoverable path).
    pub fn start(modules: Vec<Box<dyn CommsModule>>) -> ThreadLinkServer {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("listener addr");
        let (tx, rx) = channel();
        let stop = Arc::new(AtomicBool::new(false));

        let broker = Broker::new(BrokerConfig::new(Rank(0), 1), modules);
        let h_broker = std::thread::Builder::new()
            .name("threadlink-broker".into())
            .spawn(move || broker_loop(broker, rx))
            .expect("spawn broker thread");

        let a_tx = tx.clone();
        let a_stop = Arc::clone(&stop);
        let h_accept = std::thread::Builder::new()
            .name("threadlink-accept".into())
            .spawn(move || accept_loop(listener, a_tx, a_stop))
            .expect("spawn acceptor thread");

        ThreadLinkServer { addr, tx, stop, handles: vec![h_broker, h_accept] }
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the broker and acceptor and joins them. Per-connection
    /// threads notice the stop flag (or their closed streams) within
    /// [`POLL`] and exit on their own.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.tx.send(Ev::Shutdown);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, POLL);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The single broker thread: applies timers and client frames to the
/// sans-io core and routes `ToClient` outputs to per-connection writer
/// channels. `ToBroker` outputs cannot occur in a size-1 session and
/// are dropped.
fn broker_loop(mut broker: Broker, rx: Receiver<Ev>) {
    let epoch = Instant::now();
    let mut timers: BinaryHeap<std::cmp::Reverse<(Instant, u64)>> = BinaryHeap::new();
    let mut writers: HashMap<ClientId, Sender<Message>> = HashMap::new();
    let now_ns = |epoch: Instant| epoch.elapsed().as_nanos() as u64;

    let outs = broker.start(now_ns(epoch));
    apply(&mut writers, &mut timers, outs);

    loop {
        // Snapshot `now` once per pass (mirroring BrokerHost::
        // service_timers): a timer re-armed during this pass lands
        // strictly after the snapshot and waits for the next pass.
        let pass = Instant::now();
        while let Some(&std::cmp::Reverse((at, token))) = timers.peek() {
            if at > pass {
                break;
            }
            timers.pop();
            let outs = broker.handle(now_ns(epoch), Input::Timer { token });
            apply(&mut writers, &mut timers, outs);
        }
        let wait = timers
            .peek()
            .map(|&std::cmp::Reverse((at, _))| at.saturating_duration_since(Instant::now()))
            .unwrap_or(POLL)
            .min(POLL);
        match rx.recv_timeout(wait) {
            Ok(Ev::FromClient(client, msg)) => {
                let outs = broker.handle(now_ns(epoch), Input::FromClient { client, msg });
                apply(&mut writers, &mut timers, outs);
            }
            Ok(Ev::NewClient(id, tx)) => {
                writers.insert(id, tx);
            }
            Ok(Ev::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
    // Dropping the writer channels unblocks every writer thread.
}

fn apply(
    writers: &mut HashMap<ClientId, Sender<Message>>,
    timers: &mut BinaryHeap<std::cmp::Reverse<(Instant, u64)>>,
    outs: Vec<Output>,
) {
    for out in outs {
        match out {
            Output::ToClient { client, msg } => {
                // A disconnected client's channel is gone; drop, exactly
                // like the reactor drops writes to dead conns.
                if let Some(tx) = writers.get(&client) {
                    if tx.send(msg).is_err() {
                        writers.remove(&client);
                    }
                }
            }
            Output::SetTimer { delay_ns, token } => {
                // `delay_ns` is relative to now, exactly as BrokerHost
                // treats it. (Anchoring it to `epoch` instead pins every
                // heartbeat re-arm to one fixed past instant, and the
                // timer pass spins forever without ever reaching the
                // channel — a bug this baseline shipped with once.)
                let at = Instant::now() + Duration::from_nanos(delay_ns);
                timers.push(std::cmp::Reverse((at, token)));
            }
            Output::ToBroker { .. } => {}
        }
    }
}

/// Accepts connections, performs the 4-byte hello handshake, and spawns
/// the per-connection reader and writer threads — the thread-per-link
/// architecture under measurement.
fn accept_loop(listener: TcpListener, tx: Sender<Ev>, stop: Arc<AtomicBool>) {
    let mut next_client: ClientId = 0;
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_nodelay(true);
        if handshake(&stream, &tx, &stop, &mut next_client).is_err() {
            // Bad hello or I/O error mid-handshake: drop the conn.
            continue;
        }
    }
}

/// Reads the client hello, assigns an id, replies with it, registers
/// the writer channel, and spawns the two service threads.
fn handshake(
    stream: &TcpStream,
    tx: &Sender<Ev>,
    stop: &Arc<AtomicBool>,
    next_client: &mut ClientId,
) -> io::Result<()> {
    let mut s = stream.try_clone()?;
    s.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut raw = [0u8; 4];
    s.read_exact(&mut raw)?;
    if u32::from_le_bytes(raw) != CLIENT_HELLO {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a client hello"));
    }
    let id = *next_client;
    *next_client += 1;
    s.write_all(&id.to_le_bytes())?;

    let (wtx, wrx) = channel::<Message>();
    let _ = tx.send(Ev::NewClient(id, wtx));

    let r_stream = stream.try_clone()?;
    let r_tx = tx.clone();
    let r_stop = Arc::clone(stop);
    std::thread::Builder::new()
        .name(format!("threadlink-r{id}"))
        .spawn(move || reader_loop(r_stream, id, r_tx, r_stop))
        .expect("spawn reader thread");

    let w_stream = stream.try_clone()?;
    let w_stop = Arc::clone(stop);
    std::thread::Builder::new()
        .name(format!("threadlink-w{id}"))
        .spawn(move || writer_loop(w_stream, wrx, w_stop))
        .expect("spawn writer thread");
    Ok(())
}

/// Blocking read half of one connection: decode frames, forward them to
/// the broker thread.
fn reader_loop(mut stream: TcpStream, id: ClientId, tx: Sender<Ev>, stop: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(POLL));
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    while !stop.load(Ordering::SeqCst) {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                dec.feed(&buf[..n]);
                loop {
                    match dec.next_message(MAX_FRAME) {
                        Ok(Some(msg)) => {
                            if tx.send(Ev::FromClient(id, msg)).is_err() {
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => return,
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Blocking write half of one connection: frames messages queued by the
/// broker thread onto the socket.
fn writer_loop(mut stream: TcpStream, rx: Receiver<Message>, stop: Arc<AtomicBool>) {
    let mut scratch = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match rx.recv_timeout(POLL) {
            Ok(msg) => {
                let mut out = Vec::new();
                if write_frame_into(&mut out, &msg, MAX_FRAME, &mut scratch).is_err() {
                    break;
                }
                if stream.write_all(&out).is_err() {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}
