//! Generates `BENCH_rpc.json`: the sustained-RPC cell matrix comparing
//! the poll-based reactor against the thread-per-link baseline.
//!
//! ```text
//! rpc_bench [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` runs the reduced CI matrix (64 clients); without it the
//! full acceptance matrix runs (1k/4k clients — minutes, not seconds).
//! Output goes to `PATH` or stdout.

#![forbid(unsafe_code)]

use flux_bench::rpc;

fn main() {
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = Some(args.next().expect("--out needs a path")),
            other => {
                eprintln!("unknown argument {other:?}; usage: rpc_bench [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let doc = rpc::run_matrix(smoke);
    let errs = rpc::check_schema(&doc);
    assert!(errs.is_empty(), "generated document fails its own schema: {errs:?}");
    let text = doc.to_json_pretty();
    match out {
        Some(path) => std::fs::write(&path, text + "\n").expect("write output file"),
        None => println!("{text}"),
    }
}
