//! Sustained-RPC benchmark: pipelined socket clients against a broker.
//!
//! The load driver multiplexes many nonblocking client connections on a
//! few OS threads. Each connection keeps a window of `cmb.ping`
//! requests in flight (matched back by [`ClientCore`]), so a window of
//! 1 measures strict request/response round trips while deeper windows
//! measure the pipelining the reactor's per-connection state machines
//! exist to serve.
//!
//! [`run_matrix`] produces the committed `BENCH_rpc.json`: wall-clock
//! cells (never byte-reproducible), so the harness in
//! `crates/bench/tests/rpc_harness.rs` pins *relations* — reactor above
//! thread-per-link at the same load, deep windows above window 1 — not
//! absolute numbers.

use crate::threadlink::ThreadLinkServer;
use flux_broker::client::{ClientCore, Delivery};
use flux_modules::standard_modules;
use flux_proto::CmbMethod;
use flux_rt::tcp::{connect_socket_client, TcpSession};
use flux_value::Value;
use flux_wire::frame::{write_frame_into, FrameDecoder, MAX_FRAME};
use flux_wire::Rank;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Schema tag stamped into the document; bump on layout changes.
pub const SCHEMA: &str = "flux-rpc-bench/v1";

/// One load configuration.
#[derive(Clone, Copy, Debug)]
pub struct RpcParams {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests in flight per connection.
    pub window: usize,
    /// Requests each connection completes before it is done.
    pub per_client: usize,
}

impl RpcParams {
    /// Total requests the run completes.
    pub fn total(&self) -> u64 {
        (self.clients * self.per_client) as u64
    }
}

/// Wall-clock results of one [`drive`] run.
#[derive(Clone, Debug)]
pub struct RpcReport {
    /// Requests completed (always `params.total()` on success).
    pub total_rpcs: u64,
    /// Wall time from first issue to last completion.
    pub elapsed_ns: u64,
    /// Completed requests per second.
    pub throughput_per_s: f64,
    /// Median request latency.
    pub p50_ns: u64,
    /// 99th-percentile request latency.
    pub p99_ns: u64,
    /// Worst observed request latency.
    pub max_ns: u64,
}

/// One multiplexed client connection's driver state.
struct Conn {
    stream: TcpStream,
    core: ClientCore,
    dec: FrameDecoder,
    out: Vec<u8>,
    sent: usize,
    issued: usize,
    done: usize,
    inflight: HashMap<u64, Instant>,
}

impl Conn {
    /// True once every request has been issued and answered.
    fn finished(&self, p: &RpcParams) -> bool {
        self.done >= p.per_client
    }
}

/// Connects `p.clients` sockets to `addr` and completes
/// `p.clients * p.per_client` pipelined `cmb.ping` RPCs, `p.window`
/// in flight per connection. Single driver thread: the bench host has
/// one core, so extra driver threads would only contend with the server.
///
/// # Errors
/// Fails if any connect fails or the run exceeds the 300s safety
/// deadline (a wedged server).
pub fn drive(addr: SocketAddr, p: &RpcParams) -> io::Result<RpcReport> {
    let topic = CmbMethod::Ping.topic();
    let mut conns = Vec::with_capacity(p.clients);
    for _ in 0..p.clients {
        let (stream, id) = connect_socket_client(addr, Duration::from_secs(30))?;
        stream.set_nonblocking(true)?;
        conns.push(Conn {
            stream,
            core: ClientCore::new(Rank(0), id),
            dec: FrameDecoder::new(),
            out: Vec::new(),
            sent: 0,
            issued: 0,
            done: 0,
            inflight: HashMap::new(),
        });
    }

    let mut scratch = Vec::new();
    let mut buf = vec![0u8; 16 * 1024];
    let mut lats: Vec<u64> = Vec::with_capacity(p.clients * p.per_client);
    let deadline = Instant::now() + Duration::from_secs(300);
    let start = Instant::now();
    let mut remaining = conns.len();

    while remaining > 0 {
        if Instant::now() > deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("rpc run wedged: {remaining} conns unfinished"),
            ));
        }
        let mut progressed = false;
        for conn in &mut conns {
            if conn.finished(p) {
                continue;
            }
            // Top up the window.
            while conn.issued < p.per_client && conn.inflight.len() < p.window {
                let tag = conn.issued as u64;
                let msg = conn.core.request(topic.clone(), Value::object(), tag);
                write_frame_into(&mut conn.out, &msg, MAX_FRAME, &mut scratch)?;
                conn.inflight.insert(tag, Instant::now());
                conn.issued += 1;
                progressed = true;
            }
            // Drain the write queue as far as the kernel allows.
            while conn.sent < conn.out.len() {
                match conn.stream.write(&conn.out[conn.sent..]) {
                    Ok(0) => {
                        return Err(io::Error::new(io::ErrorKind::WriteZero, "server closed"))
                    }
                    Ok(n) => {
                        conn.sent += n;
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            if conn.sent == conn.out.len() && !conn.out.is_empty() {
                conn.out.clear();
                conn.sent = 0;
            }
            // Harvest replies.
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server hung up mid-run",
                        ))
                    }
                    Ok(n) => {
                        conn.dec.feed(&buf[..n]);
                        progressed = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            while let Some(msg) = conn.dec.next_message(MAX_FRAME)? {
                if let Delivery::Response { tag, .. } = conn.core.deliver(msg) {
                    if let Some(sent_at) = conn.inflight.remove(&tag) {
                        lats.push(sent_at.elapsed().as_nanos() as u64);
                        conn.done += 1;
                        progressed = true;
                        if conn.finished(p) {
                            remaining -= 1;
                            break;
                        }
                    }
                }
            }
        }
        if !progressed {
            // Every conn is waiting on the server; don't spin a shared
            // core the server needs.
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let elapsed = start.elapsed();

    lats.sort_unstable();
    let pct = |p: usize| lats[(lats.len() - 1) * p / 100];
    let total = lats.len() as u64;
    Ok(RpcReport {
        total_rpcs: total,
        elapsed_ns: elapsed.as_nanos() as u64,
        throughput_per_s: total as f64 / elapsed.as_secs_f64(),
        p50_ns: pct(50),
        p99_ns: pct(99),
        max_ns: *lats.last().expect("nonempty latency set"),
    })
}

/// Which server architecture a cell measures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServerKind {
    /// The poll-based reactor runtime (`flux_rt::tcp`).
    Reactor,
    /// The pre-reactor thread-per-link architecture
    /// ([`crate::threadlink`]).
    ThreadLink,
}

impl ServerKind {
    /// Stable name used in cell ids and the JSON.
    pub fn name(self) -> &'static str {
        match self {
            ServerKind::Reactor => "reactor",
            ServerKind::ThreadLink => "tcpthreads",
        }
    }
}

/// Starts a server of `kind`, drives `p` against it, shuts the server
/// down, and returns the report.
///
/// # Errors
/// Propagates driver failures (connect errors, wedged runs).
pub fn run_server_cell(kind: ServerKind, p: &RpcParams) -> io::Result<RpcReport> {
    match kind {
        ServerKind::Reactor => {
            let session = TcpSession::builder(1, 2, |_| standard_modules()).start();
            let report = drive(session.addrs()[0], p);
            session.shutdown();
            report
        }
        ServerKind::ThreadLink => {
            let server = ThreadLinkServer::start(standard_modules());
            let report = drive(server.addr(), p);
            server.shutdown();
            report
        }
    }
}

/// Renders one cell as its JSON object.
fn cell_json(name: &str, kind: ServerKind, p: &RpcParams, r: &RpcReport) -> Value {
    Value::from_pairs([
        ("name", Value::from(name)),
        ("transport", Value::from(kind.name())),
        ("deterministic", Value::from(false)),
        ("clients", Value::from(p.clients as i64)),
        ("window", Value::from(p.window as i64)),
        ("per_client", Value::from(p.per_client as i64)),
        ("total_rpcs", Value::from(r.total_rpcs as i64)),
        ("elapsed_ns", Value::from(r.elapsed_ns as i64)),
        ("throughput_rpc_per_s", Value::Float(r.throughput_per_s)),
        (
            "latency",
            Value::from_pairs([
                ("p50_ns", Value::from(r.p50_ns as i64)),
                ("p99_ns", Value::from(r.p99_ns as i64)),
                ("max_ns", Value::from(r.max_ns as i64)),
            ]),
        ),
    ])
}

/// The cell list: `(name, server, params)`. The full matrix holds the
/// acceptance cells — a ≥1k-client head-to-head at window 32, the
/// window-1 pipelining ablation, and a 4k-client reactor scale point
/// (4k × 2 sockets stays under the host's 20k fd ceiling; the
/// thread-per-link server at 4k clients would need 8k OS threads, which
/// is exactly the scaling wall the reactor removes, so that cell is
/// reactor-only). Smoke cells keep CI minutes-fast.
fn cells(smoke: bool) -> Vec<(String, ServerKind, RpcParams)> {
    let mk = |kind: ServerKind, clients: usize, window: usize, per_client: usize| {
        (
            format!("{}/{}c/w{}", kind.name(), clients, window),
            kind,
            RpcParams { clients, window, per_client },
        )
    };
    if smoke {
        vec![
            mk(ServerKind::Reactor, 64, 16, 32),
            mk(ServerKind::ThreadLink, 64, 16, 32),
            mk(ServerKind::Reactor, 64, 1, 8),
        ]
    } else {
        vec![
            mk(ServerKind::Reactor, 1024, 32, 50),
            mk(ServerKind::ThreadLink, 1024, 32, 50),
            mk(ServerKind::Reactor, 1024, 1, 10),
            mk(ServerKind::Reactor, 4096, 32, 32),
        ]
    }
}

/// Runs the cell matrix and returns the `BENCH_rpc.json` document.
///
/// # Panics
/// Panics if any cell's driver fails — a bench run against a wedged
/// server has no useful partial output.
pub fn run_matrix(smoke: bool) -> Value {
    let mut out = Vec::new();
    for (name, kind, p) in cells(smoke) {
        let r = run_server_cell(kind, &p)
            .unwrap_or_else(|e| panic!("cell {name} failed: {e}"));
        assert_eq!(r.total_rpcs, p.total(), "cell {name}: lost replies");
        out.push(cell_json(&name, kind, &p, &r));
    }
    let tput = |cells: &[Value], name: &str| {
        cells
            .iter()
            .find(|c| c.get("name").and_then(Value::as_str) == Some(name))
            .and_then(|c| c.get("throughput_rpc_per_s"))
            .and_then(Value::as_float)
            .unwrap_or_else(|| panic!("cell {name} missing from matrix"))
    };
    let (deep, shallow, rival) = if smoke {
        ("reactor/64c/w16", "reactor/64c/w1", "tcpthreads/64c/w16")
    } else {
        ("reactor/1024c/w32", "reactor/1024c/w1", "tcpthreads/1024c/w32")
    };
    let pipelining = tput(&out, deep) / tput(&out, shallow);
    let vs_threads = tput(&out, deep) / tput(&out, rival);
    Value::from_pairs([
        ("schema", Value::from(SCHEMA)),
        ("smoke", Value::from(smoke)),
        ("cells", Value::Array(out)),
        (
            "pipelining",
            Value::from_pairs([("speedup_deep_over_w1", Value::Float(pipelining))]),
        ),
        (
            "architecture",
            Value::from_pairs([("reactor_over_threadlink", Value::Float(vs_threads))]),
        ),
    ])
}

/// Schema check shared by the harness test and the CI smoke: returns
/// human-readable problems, empty when the document is well-formed.
pub fn check_schema(doc: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    if doc.get("schema").and_then(Value::as_str) != Some(SCHEMA) {
        errs.push(format!("schema tag is not {SCHEMA:?}"));
    }
    let Some(cells) = doc.get("cells").and_then(Value::as_array) else {
        errs.push("no cells array".into());
        return errs;
    };
    for c in cells {
        let name = c.get("name").and_then(Value::as_str).unwrap_or("<unnamed>");
        for field in ["clients", "window", "per_client", "total_rpcs", "elapsed_ns"] {
            if c.get(field).and_then(Value::as_int).is_none_or(|v| v <= 0) {
                errs.push(format!("cell {name}: missing/nonpositive {field}"));
            }
        }
        if c.get("throughput_rpc_per_s").and_then(Value::as_float).is_none_or(|v| v <= 0.0) {
            errs.push(format!("cell {name}: missing/nonpositive throughput"));
        }
        let lat = c.get("latency");
        for field in ["p50_ns", "p99_ns", "max_ns"] {
            if lat.and_then(|l| l.get(field)).and_then(Value::as_int).is_none_or(|v| v <= 0) {
                errs.push(format!("cell {name}: missing/nonpositive latency.{field}"));
            }
        }
        let (c_n, w, pc, total) = (
            c.get("clients").and_then(Value::as_int).unwrap_or(0),
            c.get("window").and_then(Value::as_int).unwrap_or(0),
            c.get("per_client").and_then(Value::as_int).unwrap_or(0),
            c.get("total_rpcs").and_then(Value::as_int).unwrap_or(0),
        );
        if c_n * pc != total {
            errs.push(format!("cell {name}: total_rpcs != clients * per_client"));
        }
        if w > pc {
            errs.push(format!("cell {name}: window deeper than per_client"));
        }
    }
    errs
}
