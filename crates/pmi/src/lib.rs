//! # flux-pmi
//!
//! A PMI-style process-management interface over the Flux KVS.
//!
//! The paper (§IV-A): *"a custom PMI library allows MPI run-times to
//! access the Flux KVS and collective barrier modules over this
//! transport"* — and §V motivates the KAP benchmark with exactly this
//! pattern: *"distributed HPC software would use KVS operations in a
//! coordinated fashion to exchange connection information among processes
//! during its bootstrapping phase as shown in LIBI and PMI."*
//!
//! [`Pmi`] exposes the classic PMI-1 surface (`put`, `commit`/`fence`,
//! `barrier`, `get`) with keys namespaced per job under
//! `pmi.<jobid>.<rank>.<key>`. Like the rest of flux-rs it is sans-io:
//! builders return [`flux_wire::Message`]s for the runtime to transmit
//! and [`Pmi::deliver`] decodes what comes back.
//!
//! [`bootstrap_ops`] emits the canonical MPI wire-up exchange as a script
//! for simulator clients: put your business card, fence with all ranks,
//! read your peers' cards.


#![forbid(unsafe_code)]
#![deny(missing_docs)]
use flux_broker::ClientId;
use flux_kvs::client::{KvsClient, KvsDelivery, KvsReply};
use flux_value::Value;
use flux_wire::{Message, Rank};

/// A PMI connection for one application process.
pub struct Pmi {
    kvs: KvsClient,
    jobid: String,
    /// This process's global rank within the application.
    pub grank: u64,
    /// Application size in processes.
    pub size: u64,
}

/// A decoded PMI reply.
#[derive(Debug, Clone, PartialEq)]
pub enum PmiReply {
    /// `put` acknowledged.
    PutOk,
    /// `fence` (commit + barrier) complete; all puts are visible.
    FenceOk,
    /// `get` result.
    Value(Value),
    /// The operation failed.
    Err(u32),
}

/// Classified delivery for a PMI client.
#[derive(Debug, Clone, PartialEq)]
pub enum PmiDelivery {
    /// Reply to the request issued under this tag.
    Reply {
        /// Caller-chosen tag.
        tag: u64,
        /// Decoded reply.
        reply: PmiReply,
    },
    /// Something else (event / stale response).
    Other(Message),
}

impl Pmi {
    /// Creates a PMI connection for process `grank` of `size` in job
    /// `jobid`, attached to the broker at `broker_rank` as local client
    /// `client_id`.
    pub fn new(
        jobid: impl Into<String>,
        grank: u64,
        size: u64,
        broker_rank: Rank,
        client_id: ClientId,
    ) -> Pmi {
        assert!(size > 0 && grank < size, "rank {grank} outside 0..{size}");
        Pmi { kvs: KvsClient::new(broker_rank, client_id), jobid: jobid.into(), grank, size }
    }

    fn key_of(&self, grank: u64, key: &str) -> String {
        format!("pmi.{}.{grank}.{key}", self.jobid)
    }

    /// `PMI_KVS_Put(key, val)` — under this process's namespace.
    pub fn put(&mut self, key: &str, val: Value, tag: u64) -> Message {
        let k = self.key_of(self.grank, key);
        self.kvs.put(&k, val, tag)
    }

    /// `PMI_KVS_Commit + PMI_Barrier` — the Flux KVS fuses both into
    /// `kvs_fence` across all `size` processes.
    pub fn fence(&mut self, tag: u64) -> Message {
        let name = format!("pmi.{}", self.jobid);
        self.kvs.fence(&name, self.size, tag)
    }

    /// `PMI_KVS_Get` of `key` from process `grank`'s namespace.
    pub fn get(&mut self, grank: u64, key: &str, tag: u64) -> Message {
        let k = self.key_of(grank, key);
        self.kvs.get(&k, tag)
    }

    /// Classifies an incoming message.
    pub fn deliver(&mut self, msg: Message) -> PmiDelivery {
        match self.kvs.deliver(msg) {
            KvsDelivery::Reply { tag, reply } => {
                let reply = match reply {
                    KvsReply::Ack => PmiReply::PutOk,
                    KvsReply::Version { .. } => PmiReply::FenceOk,
                    KvsReply::Value(v) => PmiReply::Value(v),
                    KvsReply::Err(e) => PmiReply::Err(e),
                    // Dir listings / watch updates / stats never come back
                    // for PMI-issued requests.
                    _ => PmiReply::Err(flux_wire::errnum::EINVAL),
                };
                PmiDelivery::Reply { tag, reply }
            }
            KvsDelivery::Event(m) | KvsDelivery::Unmatched(m) => PmiDelivery::Other(m),
        }
    }
}

/// The canonical bootstrap exchange as simulator script ops: publish this
/// process's business card, fence with everyone, then read `fanout`
/// peers' cards (ring neighbours — each process contacts the next few
/// ranks, the usual wire-up pattern).
pub fn bootstrap_ops(jobid: &str, grank: u64, size: u64, fanout: u64) -> Vec<BootstrapOp> {
    let mut ops = vec![BootstrapOp::Put {
        key: format!("pmi.{jobid}.{grank}.card"),
        val: Value::from(format!("endpoint://node/{grank}")),
    }];
    ops.push(BootstrapOp::Fence { name: format!("pmi.{jobid}"), nprocs: size });
    for i in 1..=fanout.min(size.saturating_sub(1)) {
        let peer = (grank + i) % size;
        ops.push(BootstrapOp::Get { key: format!("pmi.{jobid}.{peer}.card") });
    }
    ops
}

/// A runtime-agnostic description of one bootstrap step. `flux-rt`'s
/// `ScriptClient` ops mirror these exactly; the conversion lives with the
/// caller to keep this crate free of runtime dependencies.
#[derive(Debug, Clone, PartialEq)]
pub enum BootstrapOp {
    /// Publish a value.
    Put {
        /// Full KVS key.
        key: String,
        /// The business card.
        val: Value,
    },
    /// Collective fence.
    Fence {
        /// Fence name.
        name: String,
        /// Participants.
        nprocs: u64,
    },
    /// Read a peer's value.
    Get {
        /// Full KVS key.
        key: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_namespaced_per_rank_and_job() {
        let mut p = Pmi::new("job7", 3, 8, Rank(1), 0);
        let put = p.put("card", Value::from("x"), 1);
        assert_eq!(put.payload.get("k"), Some(&Value::from("pmi.job7.3.card")));
        let get = p.get(5, "card", 2);
        assert_eq!(get.payload.get("k"), Some(&Value::from("pmi.job7.5.card")));
    }

    #[test]
    fn fence_covers_all_processes() {
        let mut p = Pmi::new("j", 0, 64, Rank(0), 0);
        let f = p.fence(1);
        assert_eq!(f.payload.get("name"), Some(&Value::from("pmi.j")));
        assert_eq!(f.payload.get("nprocs"), Some(&Value::Int(64)));
    }

    #[test]
    fn deliver_decodes_lifecycle() {
        let mut p = Pmi::new("j", 0, 2, Rank(0), 0);
        let put = p.put("card", Value::from("c"), 1);
        let ack = Message::response_to(&put, Value::object());
        assert_eq!(p.deliver(ack), PmiDelivery::Reply { tag: 1, reply: PmiReply::PutOk });
        let fence = p.fence(2);
        let done = Message::response_to(
            &fence,
            Value::from_pairs([("version", Value::Int(1)), ("root", Value::from("ab"))]),
        );
        assert_eq!(p.deliver(done), PmiDelivery::Reply { tag: 2, reply: PmiReply::FenceOk });
        let get = p.get(1, "card", 3);
        let val = Message::response_to(&get, Value::from_pairs([("v", Value::from("peer"))]));
        assert_eq!(
            p.deliver(val),
            PmiDelivery::Reply { tag: 3, reply: PmiReply::Value(Value::from("peer")) }
        );
    }

    #[test]
    fn bootstrap_ops_shape() {
        let ops = bootstrap_ops("mpi1", 2, 8, 3);
        assert_eq!(ops.len(), 1 + 1 + 3);
        assert!(matches!(&ops[0], BootstrapOp::Put { key, .. } if key == "pmi.mpi1.2.card"));
        assert!(matches!(&ops[1], BootstrapOp::Fence { nprocs: 8, .. }));
        assert!(matches!(&ops[2], BootstrapOp::Get { key } if key == "pmi.mpi1.3.card"));
        // Fanout clamps for tiny jobs.
        let tiny = bootstrap_ops("t", 0, 1, 5);
        assert_eq!(tiny.len(), 2);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_rank_rejected() {
        let _ = Pmi::new("j", 8, 8, Rank(0), 0);
    }
}
