//! A zero-latency in-memory session harness for unit tests.
//!
//! [`TestNet`] wires `size` brokers into a comms session, shuttling
//! [`Output`]s back in as [`Input`]s with instantaneous delivery and a
//! logical timer queue. It exists so protocol logic (broker routing, the
//! comms modules, the KVS) can be tested exhaustively without either
//! runtime; the cost-model simulator and the threaded runtime live in
//! `flux-rt`.

use crate::{Broker, BrokerConfig, ClientId, CommsModule, Input, Output};
use flux_wire::{Message, Rank};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

/// An in-memory comms session with instantaneous message delivery.
pub struct TestNet {
    brokers: Vec<Broker>,
    queue: VecDeque<(Rank, Input)>,
    timers: BinaryHeap<Reverse<(u64, u64, u32, u64)>>,
    timer_seq: u64,
    now_ns: u64,
    dead: HashSet<Rank>,
    client_inbox: HashMap<(Rank, ClientId), VecDeque<Message>>,
}

impl TestNet {
    /// Builds a session of `size` brokers with tree `arity`; each broker
    /// gets the modules produced by `factory` for its rank.
    pub fn new<F>(size: u32, arity: u32, factory: F) -> TestNet
    where
        F: Fn(Rank) -> Vec<Box<dyn CommsModule>>,
    {
        Self::with_config(size, arity, |r| BrokerConfig::new(r, size).with_arity(arity), factory)
    }

    /// Like [`TestNet::new`] with full control over per-rank config.
    pub fn with_config<C, F>(size: u32, _arity: u32, config: C, factory: F) -> TestNet
    where
        C: Fn(Rank) -> BrokerConfig,
        F: Fn(Rank) -> Vec<Box<dyn CommsModule>>,
    {
        let mut brokers = Vec::with_capacity(size as usize);
        for r in 0..size {
            let rank = Rank(r);
            brokers.push(Broker::new(config(rank), factory(rank)));
        }
        let mut net = TestNet {
            brokers,
            queue: VecDeque::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            now_ns: 0,
            dead: HashSet::new(),
            client_inbox: HashMap::new(),
        };
        for r in 0..size {
            let outs = net.brokers[r as usize].start(0);
            net.absorb(Rank(r), outs);
        }
        net.run();
        net
    }

    /// Current logical time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Access a broker (e.g. for module-name assertions).
    pub fn broker(&self, rank: Rank) -> &Broker {
        &self.brokers[rank.index()]
    }

    /// Injects a client request at `rank`'s broker and runs to quiescence
    /// (without firing timers).
    pub fn client_send(&mut self, rank: Rank, client: ClientId, msg: Message) {
        self.queue.push_back((rank, Input::FromClient { client, msg }));
        self.run();
    }

    /// Drains messages delivered to a client.
    pub fn take_client_msgs(&mut self, rank: Rank, client: ClientId) -> Vec<Message> {
        self.client_inbox
            .remove(&(rank, client))
            .map(|q| q.into_iter().collect())
            .unwrap_or_default()
    }

    /// Publishes a session event from the root broker (stands in for a
    /// module publication in tests).
    pub fn publish_from_root(&mut self, topic: flux_wire::Topic, payload: flux_value::Value) {
        let now = self.now_ns;
        let outs = self.brokers[0].publish(now, topic, payload);
        self.absorb(Rank(0), outs);
        self.run();
    }

    /// Marks a broker dead: messages to it vanish, its timers stop.
    pub fn kill(&mut self, rank: Rank) {
        assert!(!rank.is_root(), "root death ends the session");
        self.dead.insert(rank);
    }

    /// Revives a previously [`TestNet::kill`]ed broker with its state
    /// intact (the crash-restart model used by fault injection): it
    /// receives traffic again and can re-announce itself via the live
    /// module's hello path.
    pub fn revive(&mut self, rank: Rank) {
        self.dead.remove(&rank);
    }

    /// Processes queued deliveries until quiescent. Timers do not fire.
    pub fn run(&mut self) {
        let mut guard = 0u64;
        while let Some((rank, input)) = self.queue.pop_front() {
            guard += 1;
            assert!(guard < 10_000_000, "test network livelock");
            if self.dead.contains(&rank) {
                continue;
            }
            let outs = self.brokers[rank.index()].handle(self.now_ns, input);
            self.absorb(rank, outs);
        }
    }

    /// Fires the earliest pending timer (advancing logical time), then
    /// runs to quiescence. Returns false if no timer was pending.
    pub fn fire_next_timer(&mut self) -> bool {
        loop {
            let Some(Reverse((at, _, rank, token))) = self.timers.pop() else {
                return false;
            };
            let rank = Rank(rank);
            if self.dead.contains(&rank) {
                continue;
            }
            self.now_ns = self.now_ns.max(at);
            self.queue.push_back((rank, Input::Timer { token }));
            self.run();
            return true;
        }
    }

    /// Fires all timers due up to `deadline_ns`, delivering messages as
    /// they are produced.
    pub fn run_until(&mut self, deadline_ns: u64) {
        self.run();
        while let Some(&Reverse((at, _, _, _))) = self.timers.peek() {
            if at > deadline_ns {
                break;
            }
            self.fire_next_timer();
        }
        self.now_ns = self.now_ns.max(deadline_ns);
    }

    fn absorb(&mut self, from: Rank, outs: Vec<Output>) {
        for out in outs {
            match out {
                Output::ToBroker { plane, to, msg } => {
                    if self.dead.contains(&to) {
                        continue;
                    }
                    self.queue.push_back((to, Input::FromBroker { plane, from, msg }));
                }
                Output::ToClient { client, msg } => {
                    self.client_inbox.entry((from, client)).or_default().push_back(msg);
                }
                Output::SetTimer { delay_ns, token } => {
                    self.timer_seq += 1;
                    self.timers.push(Reverse((
                        self.now_ns + delay_ns,
                        self.timer_seq,
                        from.0,
                        token,
                    )));
                }
            }
        }
    }
}
