//! The broker's builtin `cmb` service.
//!
//! The prototype's `flux` utility exposes "about two dozen modular Flux
//! sub-commands"; the broker itself answers the session-introspection and
//! plumbing subset:
//!
//! * `cmb.ping` — echo, usable rank-addressed over the ring (the paper's
//!   debugging use case) or locally;
//! * `cmb.info` — rank, size, arity, tree depth, liveness count;
//! * `cmb.sub` / `cmb.unsub` — client event-subscription management.

use crate::broker::Broker;
use flux_proto::CmbMethod;
use flux_value::Value;
use flux_wire::{errnum, Message};

pub(crate) fn handle(broker: &mut Broker, msg: Message) {
    match CmbMethod::from_method(msg.header.topic.method()) {
        Some(CmbMethod::Ping) => {
            let rank = broker.core().rank();
            let mut payload = msg.payload.value().clone();
            if payload.is_null() {
                payload = Value::object();
            }
            if payload.as_object().is_some() {
                payload.insert("pong", Value::from(rank.0));
                payload.insert("now_ns", Value::from(broker.core().now_ns as i64));
            }
            let resp = Message::response_to(&msg, payload);
            broker.core_mut().route_response(resp);
        }
        Some(CmbMethod::Info) => {
            let core = broker.core();
            let payload = Value::from_pairs([
                ("rank", Value::from(core.rank().0)),
                ("size", Value::from(core.size())),
                ("depth", Value::from(core.depth() as i64)),
                ("live", Value::from(core.live.live_count())),
                ("modules", Value::from(
                    broker
                        .module_names()
                        .into_iter()
                        .map(Value::from)
                        .collect::<Vec<_>>(),
                )),
            ]);
            let resp = Message::response_to(&msg, payload);
            broker.core_mut().route_response(resp);
        }
        Some(method @ (CmbMethod::Sub | CmbMethod::Unsub)) => {
            // Only valid directly from a local client: the hop stack must
            // be exactly [client].
            let client = match (msg.header.hops.len(), msg.header.hops.last()) {
                (1, Some(h)) => h.as_client_hop(),
                _ => None,
            };
            let Some(client) = client else {
                let resp = Message::error_response_to(&msg, errnum::EINVAL);
                broker.core_mut().route_response(resp);
                return;
            };
            let Some(prefix) = msg.payload.get("prefix").and_then(Value::as_str) else {
                let resp = Message::error_response_to(&msg, errnum::EINVAL);
                broker.core_mut().route_response(resp);
                return;
            };
            let prefix = prefix.to_owned();
            if method == CmbMethod::Sub {
                broker.core_mut().subscribe_client(client, prefix);
            } else {
                broker.core_mut().unsubscribe_client(client, &prefix);
            }
            let resp = Message::response_to(&msg, Value::object());
            broker.core_mut().route_response(resp);
        }
        None => {
            let resp = Message::error_response_to(&msg, errnum::ENOSYS);
            broker.core_mut().route_response(resp);
        }
    }
}
