//! The broker core: routing, event sequencing, module dispatch.

use crate::builtin;
use crate::config::BrokerConfig;
use crate::io::{ClientId, Input, Output};
use crate::module::{CommsModule, ModuleCtx};
use flux_proto::{Event, Service};
use flux_topo::{LiveSet, Ring, Tree};
use flux_value::Value;
use flux_wire::{errnum, Message, MsgId, MsgType, Payload, Plane, Rank, Topic};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Timer-token namespace: the top 16 bits identify the owner (0 = broker
/// core, `i + 1` = module index `i`); the low 48 bits are owner-private.
const TOKEN_OWNER_SHIFT: u32 = 48;

/// Shared broker state reachable from module contexts.
pub(crate) struct Core {
    config: BrokerConfig,
    tree: Tree,
    ring: Ring,
    /// Session liveness view, updated from `live.down` / `live.up` events.
    pub(crate) live: LiveSet,
    /// Per-broker RPC sequence counter.
    seq: u64,
    /// Current time, refreshed on every [`Broker::handle`] call.
    pub(crate) now_ns: u64,
    /// Outputs accumulated during the current handle() call.
    outputs: Vec<Output>,
    /// Module-originated RPCs awaiting responses: id → module index.
    pending: HashMap<MsgId, usize>,
    /// Ids whose modules expect further responses (streaming replies).
    sticky_pending: HashMap<MsgId, usize>,
    /// Locally raised messages to process after the current dispatch.
    raised: VecDeque<Message>,
    /// Event-plane sequencing (root only).
    event_seq: u64,
    /// Last event sequence seen (all brokers; delivery-order check).
    last_event_seq: u64,
    /// Per-client event subscriptions: topic prefixes.
    // Ordered map: event fan-out to clients iterates this directly, so
    // delivery order must be deterministic (ascending client id).
    client_subs: BTreeMap<ClientId, Vec<String>>,
    /// Module indices matching responses queued in `raised`, FIFO.
    raised_response_module: VecDeque<usize>,
    /// Stamped events awaiting local delivery; `true` = also fan to
    /// children after local delivery (liveness updates carried by the
    /// event must apply before the child set is computed).
    deliver_queue: VecDeque<(Message, bool)>,
}

impl Core {
    pub(crate) fn rank(&self) -> Rank {
        self.config.rank
    }

    pub(crate) fn size(&self) -> u32 {
        self.config.size
    }

    pub(crate) fn config(&self) -> &BrokerConfig {
        &self.config
    }

    pub(crate) fn depth(&self) -> u32 {
        self.tree.depth(self.config.rank)
    }

    pub(crate) fn tree_height(&self) -> u32 {
        self.tree.height()
    }

    pub(crate) fn effective_parent(&self) -> Option<Rank> {
        self.live.effective_parent(&self.tree, self.config.rank)
    }

    pub(crate) fn effective_children(&self) -> Vec<Rank> {
        self.live.effective_children(&self.tree, self.config.rank)
    }

    pub(crate) fn next_msg_id(&mut self) -> MsgId {
        self.seq += 1;
        MsgId { origin: self.config.rank, seq: self.seq }
    }

    pub(crate) fn register_pending(&mut self, id: MsgId, module_idx: usize) {
        self.pending.insert(id, module_idx);
    }

    pub(crate) fn raise(&mut self, msg: Message) {
        self.raised.push_back(msg);
    }

    pub(crate) fn send_tree(&mut self, to: Rank, msg: Message) {
        self.outputs.push(Output::ToBroker { plane: Plane::Tree, to, msg });
    }

    /// Routes a response one step along its recorded hops (or completes a
    /// module-originated RPC if the hop stack is empty).
    pub(crate) fn route_response(&mut self, mut msg: Message) {
        match msg.header.hops.pop() {
            Some(hop) => match hop.as_client_hop() {
                Some(client) => self.outputs.push(Output::ToClient { client, msg }),
                None => {
                    let plane =
                        if msg.header.dst.is_some() { Plane::Ring } else { Plane::Tree };
                    self.outputs.push(Output::ToBroker { plane, to: hop, msg });
                }
            },
            None => {
                // This broker originated the RPC from a module.
                if let Some(&idx) = self.pending.get(&msg.header.id) {
                    if self.sticky_pending.contains_key(&msg.header.id) {
                        // keep for streaming replies
                    } else {
                        self.pending.remove(&msg.header.id);
                    }
                    self.raised.push_back(msg);
                    self.raised_response_module.push_back(idx);
                }
                // else: stale response for a forgotten request; drop.
            }
        }
    }

    /// Forwards a rank-addressed request one hop toward its destination
    /// on the configured overlay (ring or tree), skipping dead ranks. A
    /// request addressed to a dead rank fails with EHOSTDOWN.
    pub(crate) fn route_ring(&mut self, msg: Message) {
        // Only rank-addressed messages reach here; one without a
        // destination is malformed and dropped rather than trusted.
        let Some(dst) = msg.header.dst else { return };
        if !self.live.is_up(dst) {
            if msg.header.msg_type == MsgType::Request {
                let resp = Message::error_response_to(&msg, errnum::EHOSTDOWN);
                self.route_response(resp);
            }
            return;
        }
        let next = match self.config.rank_overlay {
            crate::RankOverlay::Ring => {
                let mut next = self.ring.next(self.config.rank);
                let mut guard = 0;
                while !self.live.is_up(next) && next != self.config.rank {
                    next = self.ring.next(next);
                    guard += 1;
                    assert!(guard <= self.config.size, "no live ranks on ring");
                }
                next
            }
            crate::RankOverlay::Tree => {
                // Down into the (effective) child subtree holding dst, or
                // up to the effective parent. Self-healing falls out of
                // the effective relations.
                if self.tree.is_ancestor(self.config.rank, dst) {
                    self.effective_children()
                        .into_iter()
                        .find(|&c| self.tree.is_ancestor(c, dst))
                        .unwrap_or(dst)
                } else {
                    // The root is an ancestor of every rank, so a dst not
                    // below us means we have a parent; if the healed tree
                    // disagrees, drop rather than mis-route.
                    match self.effective_parent() {
                        Some(parent) => parent,
                        None => return,
                    }
                }
            }
            // Liveness was checked above; the destination is reachable
            // in one hop on the fully connected overlay.
            crate::RankOverlay::Full => dst,
        };
        self.outputs.push(Output::ToBroker { plane: Plane::Ring, to: next, msg });
    }

    /// Publishes an event: root-sequenced, total-ordered session-wide.
    pub(crate) fn publish(&mut self, topic: Topic, payload: impl Into<Payload>) {
        let id = self.next_msg_id();
        let msg = Message::event(topic, id, self.config.rank, payload);
        if self.config.rank.is_root() {
            self.sequence_and_fan_out(msg);
        } else {
            // A non-root broker always has an effective parent; if the
            // healed tree momentarily disagrees, drop the publication
            // (events are retried by their publishers' protocols).
            let Some(parent) = self.effective_parent() else { return };
            self.outputs.push(Output::ToBroker { plane: Plane::Event, to: parent, msg });
        }
    }

    /// Root only: stamp the session sequence number and queue for local
    /// delivery followed by downward fan-out.
    fn sequence_and_fan_out(&mut self, mut msg: Message) {
        debug_assert!(self.config.rank.is_root());
        self.event_seq += 1;
        msg.header.id = MsgId { origin: Rank::ROOT, seq: self.event_seq };
        self.deliver_queue.push_back((msg, true));
    }

    /// Queues a stamped (downward-travelling) event: local delivery first,
    /// then fan-out to the (possibly updated) effective children.
    fn fan_down(&mut self, msg: Message) {
        self.deliver_queue.push_back((msg, true));
    }

    /// Emits the event to all effective children, plus any *down* direct
    /// tree children. Called after local delivery so liveness changes
    /// carried by the event are in force. Sending to down children costs
    /// nothing while they are truly dead (the transport drops it), but it
    /// is what lets a silently revived broker hear heartbeats again and
    /// announce itself — without it, a restart could never rejoin.
    pub(crate) fn fan_children(&mut self, msg: &Message) {
        let mut targets = self.effective_children();
        for child in self.tree.children(self.config.rank) {
            if !self.live.is_up(child) && !targets.contains(&child) {
                targets.push(child);
            }
        }
        for child in targets {
            // flux-lint: allow(hotalloc) — Message clones are
            // header-shallow (Arc'd topic and payload): the per-child
            // fan-out copy is two refcount bumps, not a payload copy.
            self.outputs.push(Output::ToBroker {
                plane: Plane::Event,
                to: child,
                msg: msg.clone(),
            });
        }
    }

    pub(crate) fn set_module_timer(&mut self, module_idx: usize, delay_ns: u64, token: u64) {
        assert!(token < (1 << TOKEN_OWNER_SHIFT), "module timer token too large");
        let owner = (module_idx as u64 + 1) << TOKEN_OWNER_SHIFT;
        self.outputs.push(Output::SetTimer { delay_ns, token: owner | token });
    }

    /// Mark an RPC id as expecting multiple responses (streaming).
    pub(crate) fn expect_more(&mut self, id: MsgId) {
        if let Some(&idx) = self.pending.get(&id) {
            self.sticky_pending.insert(id, idx);
        }
    }

    /// Forget a streaming RPC id.
    pub(crate) fn forget_pending(&mut self, id: MsgId) {
        self.pending.remove(&id);
        self.sticky_pending.remove(&id);
    }

}

/// A comms session broker. See the crate docs for the model.
pub struct Broker {
    core: Core,
    /// Module slots; taken during dispatch to satisfy the borrow checker.
    modules: Vec<Option<Box<dyn CommsModule>>>,
    names: HashMap<&'static str, usize>,
    subs: Vec<(usize, String)>,
    started: bool,
}

impl Broker {
    /// Creates a broker with the given modules loaded.
    ///
    /// # Panics
    /// Panics on invalid config or duplicate module names.
    pub fn new(config: BrokerConfig, modules: Vec<Box<dyn CommsModule>>) -> Broker {
        config.validate();
        let tree = Tree::new(config.size, config.arity);
        let ring = Ring::new(config.size);
        let live = LiveSet::new(config.size);
        let mut names = HashMap::new();
        let mut subs = Vec::new();
        for (i, m) in modules.iter().enumerate() {
            let prev = names.insert(m.name(), i);
            assert!(prev.is_none(), "duplicate module {}", m.name());
            for s in m.subscriptions() {
                subs.push((i, s));
            }
        }
        Broker {
            core: Core {
                config,
                tree,
                ring,
                live,
                seq: 0,
                now_ns: 0,
                outputs: Vec::new(),
                pending: HashMap::new(),
                sticky_pending: HashMap::new(),
                raised: VecDeque::new(),
                raised_response_module: VecDeque::new(),
                deliver_queue: VecDeque::new(),
                event_seq: 0,
                last_event_seq: 0,
                client_subs: BTreeMap::new(),
            },
            modules: modules.into_iter().map(Some).collect(),
            names,
            subs,
            started: false,
        }
    }

    /// This broker's rank.
    pub fn rank(&self) -> Rank {
        self.core.rank()
    }

    /// This broker's depth in the tree plane.
    pub fn depth(&self) -> u32 {
        self.core.depth()
    }

    /// Names of loaded modules, in load order.
    pub fn module_names(&self) -> Vec<&'static str> {
        let mut v: Vec<(usize, &'static str)> =
            self.names.iter().map(|(&n, &i)| (i, n)).collect();
        v.sort_unstable();
        v.into_iter().map(|(_, n)| n).collect()
    }

    /// Runs module `on_start` hooks. Must be called once before `handle`.
    pub fn start(&mut self, now_ns: u64) -> Vec<Output> {
        assert!(!self.started, "broker started twice");
        self.started = true;
        self.core.now_ns = now_ns;
        for i in 0..self.modules.len() {
            self.with_module(i, |m, ctx| m.on_start(ctx));
        }
        self.drain_raised();
        std::mem::take(&mut self.core.outputs)
    }

    /// Publishes an event as if a local module had: runtimes and tests use
    /// this to inject session events (e.g. administrative liveness
    /// updates) without going through a module.
    pub fn publish(&mut self, now_ns: u64, topic: Topic, payload: impl Into<Payload>) -> Vec<Output> {
        assert!(self.started, "broker not started");
        self.core.now_ns = now_ns;
        self.core.publish(topic, payload);
        self.drain_raised();
        std::mem::take(&mut self.core.outputs)
    }

    /// Processes one input and returns the effects to perform.
    pub fn handle(&mut self, now_ns: u64, input: Input) -> Vec<Output> {
        assert!(self.started, "broker not started");
        self.core.now_ns = now_ns;
        match input {
            Input::FromClient { client, msg } => {
                // Clients only send requests; anything else is a
                // protocol violation. Dropped, not panicked: over a
                // live transport a misbehaving client must not be able
                // to take its broker down.
                if msg.header.msg_type == MsgType::Request {
                    let mut msg = msg;
                    msg.header.hops.push(Rank::client_hop(client));
                    self.route_request(msg);
                }
            }
            Input::FromBroker { plane, from, msg } => match msg.header.msg_type {
                MsgType::Request => {
                    let mut msg = msg;
                    msg.header.hops.push(from);
                    self.route_request(msg);
                }
                MsgType::Response => self.core.route_response(msg),
                MsgType::Event => self.handle_event_arrival(plane, from, msg),
            },
            Input::Timer { token } => {
                let owner = (token >> TOKEN_OWNER_SHIFT) as usize;
                let private = token & ((1 << TOKEN_OWNER_SHIFT) - 1);
                if owner == 0 {
                    // Broker-core timers (currently none).
                } else {
                    let idx = owner - 1;
                    if idx < self.modules.len() {
                        self.with_module(idx, |m, ctx| m.on_timer(ctx, private));
                    }
                }
            }
        }
        self.drain_raised();
        std::mem::take(&mut self.core.outputs)
    }

    /// Routes a request: ring-addressed requests travel the ring; others
    /// dispatch to the first matching local module or continue upstream.
    fn route_request(&mut self, msg: Message) {
        if let Some(dst) = msg.header.dst {
            if dst == self.core.rank() {
                self.dispatch_request(msg);
            } else {
                self.core.route_ring(msg);
            }
            return;
        }
        self.dispatch_request(msg);
    }

    /// Dispatches to a local module, the broker's builtin `cmb` service,
    /// or forwards upstream; at the root an unmatched request fails with
    /// ENOSYS.
    fn dispatch_request(&mut self, msg: Message) {
        // Resolve the target while borrowing the topic, then release the
        // borrow before `msg` moves: no owned copy of the service name.
        enum Target {
            Builtin,
            Module(usize),
            Forward,
        }
        let target = {
            let service = msg.header.topic.service();
            if service == Service::Cmb.name() {
                Target::Builtin
            } else if let Some(&idx) = self.names.get(service) {
                Target::Module(idx)
            } else {
                Target::Forward
            }
        };
        match target {
            Target::Builtin => {
                builtin::handle(self, msg);
                return;
            }
            Target::Module(idx) => {
                self.with_module(idx, |m, ctx| m.handle_request(ctx, &msg));
                return;
            }
            Target::Forward => {}
        }
        if msg.header.dst.is_some() {
            // Rank-addressed request reached its target but nothing serves
            // the topic here.
            let resp = Message::error_response_to(&msg, errnum::ENOSYS);
            self.core.route_response(resp);
            return;
        }
        match self.core.effective_parent() {
            Some(parent) => self.core.send_tree(parent, msg),
            None => {
                let resp = Message::error_response_to(&msg, errnum::ENOSYS);
                self.core.route_response(resp);
            }
        }
    }

    /// Event-plane arrivals: upward-travelling publications head for the
    /// root; stamped events fan down, get delivered to subscribed modules
    /// and clients, and drive the heartbeat hook.
    fn handle_event_arrival(&mut self, _plane: Plane, from: Rank, msg: Message) {
        let from_upstream = self.core.tree.is_ancestor(from, self.core.rank());
        if from_upstream && from != self.core.rank() {
            // Stamped event travelling downward.
            debug_assert!(msg.header.id.origin.is_root(), "downward event must be stamped");
            self.core.fan_down(msg);
            self.drain_raised();
        } else if self.core.rank().is_root() {
            // Raw publication arriving from our subtree.
            self.core.sequence_and_fan_out(msg);
            self.drain_raised();
        } else {
            // Raw publication still climbing; relay toward the root. As
            // in `publish`, a missing parent during healing drops it.
            let Some(parent) = self.core.effective_parent() else { return };
            self.core.outputs.push(Output::ToBroker { plane: Plane::Event, to: parent, msg });
        }
    }

    /// Delivers one stamped event locally: liveness bookkeeping, module
    /// subscriptions, client subscriptions, heartbeat hook. Returns
    /// `false` for a stale or duplicate event (sequence at or below the
    /// newest already delivered) — routine under fault injection
    /// (duplicated frames, delayed copies overtaken by newer events) and
    /// during tree healing, when a broker can briefly hear two parents.
    /// Stale events are dropped without redelivery or re-fanning.
    fn deliver_event_locally(&mut self, msg: &Message) -> bool {
        let seq = msg.header.id.seq;
        if seq <= self.core.last_event_seq {
            return false;
        }
        self.core.last_event_seq = seq;

        let topic = &msg.header.topic;

        // Liveness view: the broker core itself tracks live.down/live.up
        // so routing self-heals no matter which modules are loaded.
        if topic.as_str() == Event::LiveDown.topic_str() {
            if let Some(r) = msg.payload.get("rank").and_then(Value::as_uint) {
                let r = Rank(r as u32);
                if !r.is_root() {
                    self.core.live.mark_down(r);
                }
            }
        } else if topic.as_str() == Event::LiveUp.topic_str() {
            if let Some(r) = msg.payload.get("rank").and_then(Value::as_uint) {
                self.core.live.mark_up(Rank(r as u32));
            }
        }

        // Module subscriptions.
        for i in 0..self.subs.len() {
            let (idx, ref prefix) = self.subs[i];
            if topic.matches_prefix(prefix) {
                self.with_module(idx, |m, ctx| m.handle_event(ctx, msg));
            }
        }

        // Heartbeat hook.
        if topic.as_str() == Event::Hb.topic_str() {
            let epoch = msg.payload.get("epoch").and_then(Value::as_uint).unwrap_or(0);
            for i in 0..self.modules.len() {
                self.with_module(i, |m, ctx| m.on_heartbeat(ctx, epoch));
            }
        }

        // Client subscriptions: `client_subs` is ordered by client id,
        // so iterating it directly gives deterministic delivery order
        // with no scratch list or sort on the event path.
        for (&client, prefixes) in &self.core.client_subs {
            if prefixes.iter().any(|p| topic.matches_prefix(p)) {
                // flux-lint: allow(hotalloc) — Message clones are
                // header-shallow: the topic is Arc<str>-backed and the
                // payload holds an Arc, so each fan-out copy is a pair
                // of refcount bumps, not a payload copy.
                self.core.outputs.push(Output::ToClient { client, msg: msg.clone() });
            }
        }
        true
    }

    /// Runs `f` against module `idx` with a fresh context.
    fn with_module<F>(&mut self, idx: usize, f: F)
    where
        F: FnOnce(&mut dyn CommsModule, &mut ModuleCtx<'_>),
    {
        // flux-lint: allow(panic) — module re-entry is a broker bug, not
        // an input condition; continuing with a vanished module would
        // silently drop its traffic.
        let mut m = self.modules[idx].take().expect("module re-entered");
        {
            let mut ctx = ModuleCtx { core: &mut self.core, module_idx: idx };
            f(&mut *m, &mut ctx);
        }
        self.modules[idx] = Some(m);
    }

    /// Processes locally raised messages (module-originated local requests
    /// and completed module RPC responses) and queued event deliveries
    /// until quiescent.
    fn drain_raised(&mut self) {
        loop {
            if let Some((msg, fan)) = self.core.deliver_queue.pop_front() {
                let fresh = self.deliver_event_locally(&msg);
                if fan && fresh {
                    self.core.fan_children(&msg);
                }
                continue;
            }
            let Some(msg) = self.core.raised.pop_front() else { break };
            match msg.header.msg_type {
                MsgType::Request => self.route_request(msg),
                MsgType::Response => {
                    // flux-lint: allow(panic) — raised and
                    // raised_response_module are pushed in lockstep by
                    // Core::raise; divergence is memory corruption, not
                    // load.
                    let idx = self
                        .core
                        .raised_response_module
                        .pop_front()
                        .expect("response raised with module idx");
                    self.with_module(idx, |m, ctx| m.handle_response(ctx, &msg));
                }
                // flux-lint: allow(panic) — Core::raise never queues
                // events; this arm existing at all is a local logic bug.
                MsgType::Event => unreachable!("events are not raised"),
            }
        }
    }

    /// Client subscription management, exposed for the builtin service.
    pub(crate) fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    /// Shared core view for the builtin service.
    pub(crate) fn core(&self) -> &Core {
        &self.core
    }
}

impl Core {
    pub(crate) fn subscribe_client(&mut self, client: ClientId, prefix: String) {
        self.client_subs.entry(client).or_default().push(prefix);
    }

    pub(crate) fn unsubscribe_client(&mut self, client: ClientId, prefix: &str) {
        if let Some(v) = self.client_subs.get_mut(&client) {
            v.retain(|p| p != prefix);
            if v.is_empty() {
                self.client_subs.remove(&client);
            }
        }
    }
}
