//! The comms-module plugin interface.
//!
//! Paper §IV-A: *"The various service components of Flux have been
//! implemented as comms modules, plugins which are loaded into the CMB
//! address space and pass messages over shared memory."* A module owns a
//! service name (`kvs`, `barrier`, …); requests whose topic service
//! matches are dispatched to it at the first broker along the upstream
//! path where the module is loaded.

use crate::broker::Core;
use flux_wire::{errnum, Message, MsgId, Payload, Rank, Topic};

/// A service plugin loaded into a broker.
///
/// All handlers receive a [`ModuleCtx`] through which they reply, issue
/// their own upstream or rank-addressed RPCs, publish events, and set
/// timers. Handlers run to completion; long-running work is expressed as
/// state machines driven by responses, events, heartbeats, and timers.
///
/// `Send` is required so the threaded runtime can host brokers on their
/// own threads; module state is owned by exactly one broker at a time.
pub trait CommsModule: Send {
    /// The service name this module answers to (`kvs` handles `kvs.*`).
    fn name(&self) -> &'static str;

    /// Event-topic prefixes this module wants delivered to
    /// [`CommsModule::handle_event`].
    fn subscriptions(&self) -> Vec<String> {
        Vec::new()
    }

    /// Called once when the broker starts.
    fn on_start(&mut self, _ctx: &mut ModuleCtx<'_>) {}

    /// A request addressed to this module.
    fn handle_request(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message);

    /// The response to an RPC this module issued via
    /// [`ModuleCtx::request_upstream`] or [`ModuleCtx::request_to_rank`].
    fn handle_response(&mut self, _ctx: &mut ModuleCtx<'_>, _msg: &Message) {}

    /// An event matching one of this module's subscriptions.
    fn handle_event(&mut self, _ctx: &mut ModuleCtx<'_>, _msg: &Message) {}

    /// The session heartbeat (delivered on every broker when the `hb`
    /// event arrives). Modules synchronize background activity to this
    /// pulse to reduce scheduling jitter.
    fn on_heartbeat(&mut self, _ctx: &mut ModuleCtx<'_>, _epoch: u64) {}

    /// A timer set through [`ModuleCtx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut ModuleCtx<'_>, _token: u64) {}
}

/// Handler context handed to module callbacks.
///
/// Wraps the broker core with the identity of the module being dispatched
/// (used to namespace timers and route RPC responses back to the issuing
/// module).
pub struct ModuleCtx<'a> {
    pub(crate) core: &'a mut Core,
    pub(crate) module_idx: usize,
}

impl<'a> ModuleCtx<'a> {
    /// This broker's rank.
    pub fn rank(&self) -> Rank {
        self.core.rank()
    }

    /// Session size in brokers.
    pub fn size(&self) -> u32 {
        self.core.size()
    }

    /// True on the session root (rank 0).
    pub fn is_root(&self) -> bool {
        self.core.rank().is_root()
    }

    /// Current time in nanoseconds (virtual or real depending on runtime).
    pub fn now_ns(&self) -> u64 {
        self.core.now_ns
    }

    /// The effective (live) tree parent, `None` at the root.
    pub fn parent(&self) -> Option<Rank> {
        self.core.effective_parent()
    }

    /// The effective (live) tree children.
    pub fn children(&self) -> Vec<Rank> {
        self.core.effective_children()
    }

    /// This broker's depth in the tree plane.
    pub fn depth(&self) -> u32 {
        self.core.depth()
    }

    /// The height of the session's tree plane (max depth over all ranks).
    pub fn tree_height(&self) -> u32 {
        self.core.tree_height()
    }

    /// True if `r` is currently believed alive.
    pub fn is_up(&self, r: Rank) -> bool {
        self.core.live.is_up(r)
    }

    /// Sends a successful response to `req` (routed back along its hops).
    ///
    /// May be called more than once for the same request — `kvs.watch`
    /// uses repeated responses to stream updates to a client.
    pub fn respond(&mut self, req: &Message, payload: impl Into<Payload>) {
        let resp = Message::response_to(req, payload);
        self.core.route_response(resp);
    }

    /// Sends an error response to `req`.
    pub fn respond_err(&mut self, req: &Message, errnum: u32) {
        let resp = Message::error_response_to(req, errnum);
        self.core.route_response(resp);
    }

    /// Issues an RPC to this module's counterpart on the upstream path.
    /// The request starts at the effective parent (it does not match
    /// locally), and the response is delivered to
    /// [`CommsModule::handle_response`].
    ///
    /// Returns the request id for correlating the response, or an
    /// `Err(errnum)` at the root where there is no upstream.
    pub fn request_upstream(&mut self, topic: Topic, payload: impl Into<Payload>) -> Result<MsgId, u32> {
        let Some(parent) = self.core.effective_parent() else {
            return Err(errnum::ENOENT);
        };
        let id = self.core.next_msg_id();
        let msg = Message::request(topic, id, self.core.rank(), payload);
        self.core.register_pending(id, self.module_idx);
        self.core.send_tree(parent, msg);
        Ok(id)
    }

    /// Sends a one-way request upstream (no response expected, nothing
    /// registered). Used for reduction flows whose completion is signalled
    /// out-of-band — e.g. `kvs.fence` contributions, whose completion
    /// arrives as the `kvs.setroot` event.
    ///
    /// Returns `Err(errnum)` at the root where there is no upstream.
    pub fn notify_upstream(&mut self, topic: Topic, payload: impl Into<Payload>) -> Result<(), u32> {
        let Some(parent) = self.core.effective_parent() else {
            return Err(errnum::ENOENT);
        };
        let id = self.core.next_msg_id();
        let msg = Message::request(topic, id, self.core.rank(), payload);
        self.core.send_tree(parent, msg);
        Ok(())
    }

    /// Issues a rank-addressed RPC over the ring plane. The response is
    /// delivered to [`CommsModule::handle_response`].
    pub fn request_to_rank(&mut self, to: Rank, topic: Topic, payload: impl Into<Payload>) -> MsgId {
        let id = self.core.next_msg_id();
        let msg = Message::request_to(topic, id, self.core.rank(), to, payload);
        self.core.register_pending(id, self.module_idx);
        self.core.route_ring(msg);
        id
    }

    /// Publishes an event session-wide. Events are sequenced through the
    /// root, so all brokers observe all events in one total order.
    pub fn publish(&mut self, topic: Topic, payload: impl Into<Payload>) {
        self.core.publish(topic, payload);
    }

    /// Sets a module-private timer; `token` comes back in
    /// [`CommsModule::on_timer`].
    pub fn set_timer(&mut self, delay_ns: u64, token: u64) {
        self.core.set_module_timer(self.module_idx, delay_ns, token);
    }

    /// Broker configuration (heartbeat period, liveness limits, …).
    pub fn config(&self) -> &crate::BrokerConfig {
        self.core.config()
    }

    /// Marks one of this module's RPC ids as expecting multiple responses
    /// (streaming); pair with [`ModuleCtx::forget_request`].
    pub fn expect_stream(&mut self, id: MsgId) {
        self.core.expect_more(id);
    }

    /// Deregisters an RPC id (streaming or not); later responses for it
    /// are dropped.
    pub fn forget_request(&mut self, id: MsgId) {
        self.core.forget_pending(id);
    }

    /// Submits a locally originated request into this broker's routing
    /// (e.g. the `wexec` module storing output via `kvs.put`). Dispatched
    /// after the current handler returns; any response is routed to this
    /// module's [`CommsModule::handle_response`].
    pub fn local_request(&mut self, topic: Topic, payload: impl Into<Payload>) -> MsgId {
        let id = self.core.next_msg_id();
        let msg = Message::request(topic, id, self.core.rank(), payload);
        self.core.register_pending(id, self.module_idx);
        self.core.raise(msg);
        id
    }
}
