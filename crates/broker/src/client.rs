//! Client-side protocol support.
//!
//! External programs (the `flux` utility, PMI libraries, KAP testers)
//! attach to their node's broker over a local connection and speak the
//! same wire protocol. [`ClientCore`] is the sans-io client half: it mints
//! request ids, tracks outstanding requests, and classifies incoming
//! messages. Runtimes embed it in whatever concurrency shape they use
//! (a sim actor, a thread).

use flux_value::Value;
use flux_wire::{Message, MsgId, Rank, Topic};
use std::collections::HashMap;

/// How an incoming message relates to this client's state.
#[derive(Debug, Clone, PartialEq)]
pub enum Delivery {
    /// The response to the outstanding request registered with this tag.
    Response {
        /// Caller-chosen correlation tag.
        tag: u64,
        /// The response message.
        msg: Message,
    },
    /// A subscribed event.
    Event(Message),
    /// A response with no matching outstanding request (stale, or a
    /// streaming follow-up after the caller deregistered).
    Unmatched(Message),
}

/// Sans-io client state: id minting and response matching.
///
/// Request-id uniqueness: every broker and every client mints
/// `MsgId { origin, seq }` ids. Brokers use their own rank and a bare
/// counter; clients share their broker's rank as `origin`, so their
/// sequence numbers are namespaced by the local client id in the upper
/// bits to keep the id space collision-free session-wide.
pub struct ClientCore {
    origin: Rank,
    seq_base: u64,
    seq: u64,
    outstanding: HashMap<MsgId, u64>,
    /// Tags whose requests expect multiple responses (`kvs.watch`).
    streaming: HashMap<MsgId, u64>,
}

impl ClientCore {
    /// Creates a client attached to the broker at `broker_rank`, with the
    /// broker-local connection id `client_id`.
    pub fn new(broker_rank: Rank, client_id: u32) -> ClientCore {
        ClientCore {
            origin: broker_rank,
            // 2^24 clients per broker, 2^40 requests per client: plenty.
            seq_base: u64::from(client_id) << 40,
            seq: 0,
            outstanding: HashMap::new(),
            streaming: HashMap::new(),
        }
    }

    /// The broker rank this client is attached to.
    pub fn origin(&self) -> Rank {
        self.origin
    }

    /// Number of outstanding (unanswered) requests.
    pub fn outstanding_len(&self) -> usize {
        self.outstanding.len()
    }

    /// Builds a request and registers it under `tag` for response
    /// matching. The returned message is ready to send to the local
    /// broker.
    pub fn request(&mut self, topic: Topic, payload: Value, tag: u64) -> Message {
        let id = self.next_id();
        self.outstanding.insert(id, tag);
        Message::request(topic, id, self.origin, payload)
    }

    /// Like [`ClientCore::request`] but rank-addressed (ring plane).
    pub fn request_to(&mut self, to: Rank, topic: Topic, payload: Value, tag: u64) -> Message {
        let id = self.next_id();
        self.outstanding.insert(id, tag);
        Message::request_to(topic, id, self.origin, to, payload)
    }

    /// Marks the request with this id as expecting multiple responses;
    /// each will be delivered as [`Delivery::Response`] until
    /// [`ClientCore::cancel`] is called.
    pub fn expect_stream(&mut self, id: MsgId) {
        if let Some(&tag) = self.outstanding.get(&id) {
            self.streaming.insert(id, tag);
        }
    }

    /// Deregisters an outstanding or streaming request.
    pub fn cancel(&mut self, id: MsgId) {
        self.outstanding.remove(&id);
        self.streaming.remove(&id);
    }

    /// Classifies an incoming message from the broker.
    pub fn deliver(&mut self, msg: Message) -> Delivery {
        match msg.header.msg_type {
            flux_wire::MsgType::Event => Delivery::Event(msg),
            flux_wire::MsgType::Response => {
                let id = msg.header.id;
                if let Some(&tag) = self.outstanding.get(&id) {
                    if !self.streaming.contains_key(&id) {
                        self.outstanding.remove(&id);
                    }
                    Delivery::Response { tag, msg }
                } else {
                    Delivery::Unmatched(msg)
                }
            }
            flux_wire::MsgType::Request => Delivery::Unmatched(msg),
        }
    }

    fn next_id(&mut self) -> MsgId {
        self.seq += 1;
        assert!(self.seq < (1 << 40), "client request counter exhausted");
        MsgId { origin: self.origin, seq: self.seq_base | self.seq }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic(s: &str) -> Topic {
        Topic::new(s).unwrap()
    }

    #[test]
    fn request_response_matching() {
        let mut c = ClientCore::new(Rank(3), 0);
        let req = c.request(topic("svc.get"), Value::from("k"), 42);
        assert_eq!(c.outstanding_len(), 1);
        let resp = Message::response_to(&req, Value::Int(1));
        match c.deliver(resp) {
            Delivery::Response { tag, msg } => {
                assert_eq!(tag, 42);
                assert_eq!(msg.payload, Value::Int(1));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.outstanding_len(), 0);
    }

    #[test]
    fn duplicate_response_unmatched() {
        let mut c = ClientCore::new(Rank(0), 0);
        let req = c.request(topic("a"), Value::Null, 1);
        let resp = Message::response_to(&req, Value::Null);
        assert!(matches!(c.deliver(resp.clone()), Delivery::Response { .. }));
        assert!(matches!(c.deliver(resp), Delivery::Unmatched(_)));
    }

    #[test]
    fn streaming_responses_persist() {
        let mut c = ClientCore::new(Rank(0), 0);
        let req = c.request(topic("svc.watch"), Value::from("k"), 7);
        c.expect_stream(req.header.id);
        let resp = Message::response_to(&req, Value::Int(1));
        for _ in 0..3 {
            assert!(matches!(c.deliver(resp.clone()), Delivery::Response { tag: 7, .. }));
        }
        c.cancel(req.header.id);
        assert!(matches!(c.deliver(resp), Delivery::Unmatched(_)));
    }

    #[test]
    fn events_classified() {
        let mut c = ClientCore::new(Rank(0), 0);
        let ev = Message::event(topic("hb"), MsgId { origin: Rank(0), seq: 1 }, Rank(0), Value::Null);
        assert!(matches!(c.deliver(ev), Delivery::Event(_)));
    }

    #[test]
    fn ids_distinct_across_clients() {
        let mut a = ClientCore::new(Rank(5), 0);
        let mut b = ClientCore::new(Rank(5), 1);
        let ra = a.request(topic("x"), Value::Null, 0);
        let rb = b.request(topic("x"), Value::Null, 0);
        assert_ne!(ra.header.id, rb.header.id);
    }

    #[test]
    fn rank_addressed_request_sets_dst() {
        let mut c = ClientCore::new(Rank(2), 0);
        let req = c.request_to(Rank(6), topic("bld.ping"), Value::Null, 9);
        assert_eq!(req.header.dst, Some(Rank(6)));
    }
}
