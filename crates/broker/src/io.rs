//! The broker's sans-io boundary: inputs it consumes, outputs it emits.

use flux_wire::{Message, Plane, Rank};

/// Identifies a client connection local to one broker (the prototype's
/// UNIX-domain-socket connections). Only meaningful to that broker.
pub type ClientId = u32;

/// One unit of work for [`crate::Broker::handle`].
#[derive(Debug, Clone, PartialEq)]
pub enum Input {
    /// A message arrived from a peer broker on the given plane.
    FromBroker {
        /// Which overlay plane delivered it.
        plane: Plane,
        /// The sending broker's rank (the immediate hop, not the origin).
        from: Rank,
        /// The message.
        msg: Message,
    },
    /// A message arrived from a locally attached client.
    FromClient {
        /// The local connection id.
        client: ClientId,
        /// The message (a request; clients never send responses).
        msg: Message,
    },
    /// A timer previously requested via [`Output::SetTimer`] fired.
    Timer {
        /// The token passed when the timer was set.
        token: u64,
    },
}

/// An effect the runtime must perform on the broker's behalf.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// Transmit `msg` to broker `to` on `plane`.
    ToBroker {
        /// Which overlay plane to use (affects runtime bookkeeping only;
        /// delivery semantics are identical).
        plane: Plane,
        /// Destination broker rank.
        to: Rank,
        /// The message.
        msg: Message,
    },
    /// Deliver `msg` to locally attached client `client`.
    ToClient {
        /// The local connection id.
        client: ClientId,
        /// The message (a response or a subscribed event).
        msg: Message,
    },
    /// Arrange for [`Input::Timer`] with this token after `delay_ns`
    /// virtual/real nanoseconds.
    SetTimer {
        /// Delay in nanoseconds.
        delay_ns: u64,
        /// Token to pass back.
        token: u64,
    },
}

impl Output {
    /// Convenience for tests: the message carried, if any.
    pub fn message(&self) -> Option<&Message> {
        match self {
            Output::ToBroker { msg, .. } | Output::ToClient { msg, .. } => Some(msg),
            Output::SetTimer { .. } => None,
        }
    }
}
