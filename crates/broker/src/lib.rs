//! # flux-broker
//!
//! The Comms Message Broker (CMB): the per-node daemon at the heart of a
//! Flux comms session (paper §IV-A).
//!
//! A comms session interconnects one broker per node with three overlay
//! planes (Fig. 1 of the paper):
//!
//! * an **event plane** — publish/subscribe with session-wide, in-order,
//!   guaranteed delivery: publications travel up the tree to rank 0, which
//!   stamps a session-wide sequence number and fans them back down;
//! * a **tree plane** — the request/response k-ary tree used for RPCs,
//!   barriers, and reductions: requests route *upstream* to the first
//!   loaded comms module whose name matches the topic's service, and
//!   responses retrace the recorded hops in reverse;
//! * a **ring plane** — rank-addressed RPC without routing tables, used by
//!   debugging tools (`cmb.ping` and friends).
//!
//! Services are **comms modules** ([`CommsModule`]) loaded into the broker,
//! exchanging messages over shared memory in the prototype; here they are
//! plain trait objects dispatched in-process. External programs attach as
//! **clients** over a local connection and speak the same wire protocol.
//!
//! The broker is written *sans-io*: [`Broker::handle`] consumes one
//! [`Input`] and appends [`Output`]s describing what the runtime should
//! transmit or schedule. The same broker code therefore runs unmodified on
//! the deterministic simulator (`flux-sim`, virtual time, 8192 ranks) and
//! on the threaded runtime (`flux-rt`, real channels and wall clocks).
//!
//! ## Self-healing
//!
//! The broker tracks session liveness (fed by `live.down`/`live.up`
//! events, produced by the `live` module). Tree routing always uses the
//! *effective* parent/children — dead interior nodes are skipped, which is
//! how the planes "self-heal when interior nodes fail". Root failure ends
//! the session, as in the paper's prototype.


#![forbid(unsafe_code)]
#![deny(missing_docs)]
mod broker;
pub mod testing;
mod builtin;
pub mod client;
mod config;
mod io;
mod module;

pub use broker::Broker;
pub use config::{BrokerConfig, RankOverlay};
pub use io::{ClientId, Input, Output};
pub use module::{CommsModule, ModuleCtx};
