//! Broker configuration.

use flux_wire::Rank;

/// Topology of the secondary, rank-addressed RPC overlay (paper §IV-A:
/// "a secondary TCP request-response overlay with configurable topology
/// for rank-addressed RPCs").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RankOverlay {
    /// The prototype's choice: "a ring topology which allows ranks to be
    /// trivially reached without routing tables", with high latency that
    /// is "manageable and preferable over additional complexity" for
    /// debugging tools.
    #[default]
    Ring,
    /// Tree-edge routing (up to the common ancestor, then down): O(log N)
    /// paths at the cost of one subtree test per hop.
    Tree,
    /// Fully connected: a rank-addressed RPC goes straight to its
    /// destination in one overlay hop. The right topology when
    /// rank-addressed RPCs are hot-path traffic — sharded-KVS sessions
    /// route every commit part to a shard master this way, and relaying
    /// those through tree edges would funnel the whole write stream
    /// through the root broker.
    Full,
}

/// Static configuration for one broker in a comms session.
///
/// Every broker in a session must agree on `size` and `arity` (the
/// session wire-up is computed, not discovered).
#[derive(Clone, Debug)]
pub struct BrokerConfig {
    /// This broker's rank, `0..size`.
    pub rank: Rank,
    /// Session size in brokers (= nodes).
    pub size: u32,
    /// Fan-out of the tree plane (paper evaluates arity 2).
    pub arity: u32,
    /// Heartbeat period in nanoseconds (the `hb` module publishes, all
    /// modules synchronize background work to it). Paper default: O(1s);
    /// we default to 100 ms to keep simulations snappy.
    pub hb_period_ns: u64,
    /// Number of consecutive missed hellos after which the `live` module
    /// declares a child dead ("after a configurable number of missed
    /// messages, a liveliness event is issued").
    pub live_miss_limit: u32,
    /// KVS slave-cache entries unused for this many heartbeat epochs are
    /// expired ("unused slave object cache entries are expired after a
    /// period of disuse").
    pub kvs_expiry_epochs: u64,
    /// Topology of the rank-addressed RPC overlay.
    pub rank_overlay: RankOverlay,
}

impl BrokerConfig {
    /// A session-default configuration for the given rank/size with a
    /// binary tree, matching the paper's evaluated topology.
    pub fn new(rank: Rank, size: u32) -> BrokerConfig {
        BrokerConfig {
            rank,
            size,
            arity: 2,
            hb_period_ns: 100_000_000,
            live_miss_limit: 3,
            kvs_expiry_epochs: 16,
            rank_overlay: RankOverlay::default(),
        }
    }

    /// Same, with tree-routed rank-addressed RPCs instead of the ring.
    pub fn with_rank_overlay(mut self, overlay: RankOverlay) -> BrokerConfig {
        self.rank_overlay = overlay;
        self
    }

    /// Same, with a custom tree arity (for the topology ablation).
    pub fn with_arity(mut self, arity: u32) -> BrokerConfig {
        assert!(arity > 0, "arity must be positive");
        self.arity = arity;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics if the rank is out of range or the session is empty.
    pub fn validate(&self) {
        assert!(self.size > 0, "session must have at least one broker");
        assert!(self.rank.0 < self.size, "rank {} out of range 0..{}", self.rank, self.size);
        assert!(self.arity > 0, "arity must be positive");
        assert!(self.live_miss_limit > 0, "miss limit must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        BrokerConfig::new(Rank(0), 1).validate();
        BrokerConfig::new(Rank(511), 512).validate();
        BrokerConfig::new(Rank(3), 8).with_arity(16).validate();
        BrokerConfig::new(Rank(1), 4).with_rank_overlay(RankOverlay::Tree).validate();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rank_rejected() {
        BrokerConfig::new(Rank(8), 8).validate();
    }

    #[test]
    #[should_panic(expected = "arity must be positive")]
    fn zero_arity_rejected() {
        let _ = BrokerConfig::new(Rank(0), 4).with_arity(0);
    }
}
