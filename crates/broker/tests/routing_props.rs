//! Property tests over broker routing: arbitrary topologies, module
//! placements, and request mixes always produce exactly one response per
//! request, delivered to the right client.

use flux_broker::client::ClientCore;
use flux_broker::testing::TestNet;
use flux_broker::{CommsModule, ModuleCtx};
use flux_value::Value;
use flux_wire::{errnum, Message, Rank, Topic};
use proptest::prelude::*;

/// Echoes the answering rank.
struct Echo;

impl CommsModule for Echo {
    fn name(&self) -> &'static str {
        "echo"
    }

    fn handle_request(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        ctx.respond(msg, Value::from_pairs([("rank", Value::from(ctx.rank().0))]));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With `echo` loaded only at depth ≤ d, every client request is
    /// answered exactly once, by a broker on the requester's path to the
    /// root whose depth is ≤ d.
    #[test]
    fn upstream_dispatch_total_and_on_path(
        size in 1u32..40,
        arity in 1u32..5,
        max_depth in 0u32..5,
        requests in prop::collection::vec((0u32..40, 0u32..4), 1..12),
    ) {
        let tree = flux_topo::Tree::new(size, arity);
        let mut net = TestNet::new(size, arity, |r| {
            if tree.depth(r) <= max_depth {
                vec![Box::new(Echo) as Box<dyn CommsModule>]
            } else {
                vec![]
            }
        });
        for (i, (rank_seed, client)) in requests.into_iter().enumerate() {
            let rank = Rank(rank_seed % size);
            let mut c = ClientCore::new(rank, client);
            let req = c.request(Topic::new("echo.q").unwrap(), Value::Int(i as i64), 7);
            net.client_send(rank, client, req);
            let replies = net.take_client_msgs(rank, client);
            prop_assert_eq!(replies.len(), 1, "exactly one reply");
            let resp = &replies[0];
            prop_assert!(!resp.is_error());
            let answered = Rank(resp.payload.get("rank").unwrap().as_uint().unwrap() as u32);
            prop_assert!(tree.is_ancestor(answered, rank), "{} answers for {}", answered, rank);
            prop_assert!(tree.depth(answered) <= max_depth);
        }
    }

    /// Requests to a service nobody implements always fail with exactly
    /// one ENOSYS from the root.
    #[test]
    fn unserved_topics_fail_once(size in 1u32..30, arity in 1u32..5, rank in 0u32..30) {
        let mut net = TestNet::new(size, arity, |_| vec![]);
        let rank = Rank(rank % size);
        let mut c = ClientCore::new(rank, 0);
        let req = c.request(Topic::new("nosuch.q").unwrap(), Value::Null, 0);
        net.client_send(rank, 0, req);
        let replies = net.take_client_msgs(rank, 0);
        prop_assert_eq!(replies.len(), 1);
        prop_assert_eq!(replies[0].header.errnum, errnum::ENOSYS);
    }

    /// Rank-addressed pings over the ring reach any target from any
    /// source, for any topology.
    #[test]
    fn ring_ping_total(size in 1u32..24, arity in 1u32..5,
                       pairs in prop::collection::vec((0u32..24, 0u32..24), 1..8)) {
        let mut net = TestNet::new(size, arity, |_| vec![]);
        for (from, to) in pairs {
            let from = Rank(from % size);
            let to = Rank(to % size);
            let mut c = ClientCore::new(from, 1);
            let req = c.request_to(to, Topic::new("cmb.ping").unwrap(), Value::object(), 0);
            net.client_send(from, 1, req);
            let replies = net.take_client_msgs(from, 1);
            prop_assert_eq!(replies.len(), 1);
            prop_assert_eq!(
                replies[0].payload.get("pong"),
                Some(&Value::from(to.0))
            );
        }
    }

    /// Events published from random ranks reach every subscribed client
    /// in identical (root-sequenced) order, regardless of topology.
    #[test]
    fn event_total_order(size in 2u32..24, arity in 1u32..5,
                         publishers in prop::collection::vec(0u32..24, 1..10)) {
        struct Bell;
        impl CommsModule for Bell {
            fn name(&self) -> &'static str {
                "bell"
            }
            fn handle_request(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
                ctx.publish(Topic::from_static("bell.rang"), msg.payload.clone());
                ctx.respond(msg, Value::object());
            }
        }
        let mut net = TestNet::new(size, arity, |_| vec![Box::new(Bell) as Box<dyn CommsModule>]);
        // Two observers at the extremes.
        let observers = [(Rank(0), 0u32), (Rank(size - 1), 1u32)];
        for (rank, cid) in observers {
            let mut c = ClientCore::new(rank, cid);
            let sub = c.request(
                Topic::new("cmb.sub").unwrap(),
                Value::from_pairs([("prefix", Value::from("bell"))]),
                0,
            );
            net.client_send(rank, cid, sub);
            let _ = net.take_client_msgs(rank, cid);
        }
        for (i, p) in publishers.iter().enumerate() {
            let rank = Rank(p % size);
            let mut c = ClientCore::new(rank, 9);
            let req = c.request(Topic::new("bell.ring").unwrap(), Value::Int(i as i64), 0);
            net.client_send(rank, 9, req);
            let _ = net.take_client_msgs(rank, 9);
        }
        let seq_of = |msgs: &[Message]| -> Vec<(u64, Value)> {
            msgs.iter().map(|m| (m.header.id.seq, m.payload.value().clone())).collect()
        };
        let a = seq_of(&net.take_client_msgs(Rank(0), 0));
        let b = seq_of(&net.take_client_msgs(Rank(size - 1), 1));
        prop_assert_eq!(a.len(), publishers.len());
        prop_assert_eq!(&a, &b, "identical delivery order everywhere");
        prop_assert!(a.windows(2).all(|w| w[0].0 < w[1].0), "strictly increasing seq");
    }
}
