//! Broker routing semantics, exercised over an in-memory session.

use flux_broker::client::{ClientCore, Delivery};
use flux_broker::testing::TestNet;
use flux_broker::{Broker, BrokerConfig, ClientId, CommsModule, Input, ModuleCtx, Output};
use flux_value::Value;
use flux_wire::{errnum, Message, Rank, Topic};

/// A module that answers `echo.*` with its rank and the request payload.
struct Echo;

impl CommsModule for Echo {
    fn name(&self) -> &'static str {
        "echo"
    }

    fn handle_request(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        let payload = Value::from_pairs([
            ("rank", Value::from(ctx.rank().0)),
            ("echo", msg.payload.value().clone()),
        ]);
        ctx.respond(msg, payload);
    }
}

/// A module that publishes an event when asked.
struct Bell;

impl CommsModule for Bell {
    fn name(&self) -> &'static str {
        "bell"
    }

    fn handle_request(&mut self, ctx: &mut ModuleCtx<'_>, msg: &Message) {
        ctx.publish(Topic::from_static("bell.rung"), msg.payload.clone());
        ctx.respond(msg, Value::object());
    }
}

fn topic(s: &str) -> Topic {
    Topic::new(s).unwrap()
}

/// Sends `req` from (rank, client) and returns the single response.
fn roundtrip(net: &mut TestNet, rank: Rank, client: u32, req: Message) -> Message {
    net.client_send(rank, client, req);
    let msgs = net.take_client_msgs(rank, client);
    assert_eq!(msgs.len(), 1, "expected exactly one response, got {msgs:?}");
    msgs.into_iter().next().unwrap()
}

#[test]
fn local_module_answers_client() {
    let mut net = TestNet::new(1, 2, |_| vec![Box::new(Echo)]);
    let mut c = ClientCore::new(Rank(0), 0);
    let req = c.request(topic("echo.hi"), Value::from("x"), 1);
    let resp = roundtrip(&mut net, Rank(0), 0, req);
    assert_eq!(resp.payload.get("rank"), Some(&Value::Int(0)));
    assert_eq!(resp.payload.get("echo"), Some(&Value::from("x")));
    assert!(matches!(c.deliver(resp), Delivery::Response { tag: 1, .. }));
}

#[test]
fn request_routes_upstream_to_first_match() {
    // Echo loaded ONLY at the root: a leaf client's request must climb the
    // tree and the response must retrace to the right client.
    let mut net = TestNet::new(15, 2, |r| {
        if r.is_root() {
            vec![Box::new(Echo) as Box<dyn CommsModule>]
        } else {
            vec![]
        }
    });
    let mut c = ClientCore::new(Rank(11), 3);
    let req = c.request(topic("echo.hi"), Value::Int(7), 9);
    let resp = roundtrip(&mut net, Rank(11), 3, req);
    assert_eq!(resp.payload.get("rank"), Some(&Value::Int(0)), "handled at root");
    assert!(matches!(c.deliver(resp), Delivery::Response { tag: 9, .. }));
}

#[test]
fn module_at_interior_depth_intercepts() {
    // Echo loaded at depth <= 1 (ranks 0,1,2 in a binary tree of 15):
    // requests from rank 11 (under rank 2's subtree... 11 -> 5 -> 2) must
    // be answered at rank 2, not the root.
    let mut net = TestNet::new(15, 2, |r| {
        if r.0 <= 2 {
            vec![Box::new(Echo) as Box<dyn CommsModule>]
        } else {
            vec![]
        }
    });
    let req = ClientCore::new(Rank(11), 0).request(topic("echo.x"), Value::Null, 0);
    let resp = roundtrip(&mut net, Rank(11), 0, req);
    assert_eq!(resp.payload.get("rank"), Some(&Value::Int(2)));
}

#[test]
fn unmatched_topic_fails_with_enosys_at_root() {
    let mut net = TestNet::new(7, 2, |_| vec![]);
    let req = ClientCore::new(Rank(6), 0).request(topic("nosuch.svc"), Value::Null, 0);
    let resp = roundtrip(&mut net, Rank(6), 0, req);
    assert!(resp.is_error());
    assert_eq!(resp.header.errnum, errnum::ENOSYS);
}

#[test]
fn ping_rank_addressed_over_ring() {
    let mut net = TestNet::new(8, 2, |_| vec![]);
    let mut c = ClientCore::new(Rank(2), 0);
    let req = c.request_to(Rank(6), topic("cmb.ping"), Value::object(), 5);
    let resp = roundtrip(&mut net, Rank(2), 0, req);
    assert_eq!(resp.payload.get("pong"), Some(&Value::Int(6)), "answered by rank 6");
}

#[test]
fn ping_every_rank_from_every_rank() {
    let size = 6u32;
    let mut net = TestNet::new(size, 2, |_| vec![]);
    for from in 0..size {
        for to in 0..size {
            let mut c = ClientCore::new(Rank(from), 0);
            let req = c.request_to(Rank(to), topic("cmb.ping"), Value::object(), 0);
            let resp = roundtrip(&mut net, Rank(from), 0, req);
            assert_eq!(resp.payload.get("pong"), Some(&Value::Int(i64::from(to))));
        }
    }
}

#[test]
fn info_reports_topology() {
    let mut net = TestNet::new(7, 2, |_| vec![Box::new(Echo)]);
    let req = ClientCore::new(Rank(5), 0).request(topic("cmb.info"), Value::Null, 0);
    let resp = roundtrip(&mut net, Rank(5), 0, req);
    assert_eq!(resp.payload.get("rank"), Some(&Value::Int(5)));
    assert_eq!(resp.payload.get("size"), Some(&Value::Int(7)));
    assert_eq!(resp.payload.get("depth"), Some(&Value::Int(2)));
    let modules = resp.payload.get("modules").unwrap().as_array().unwrap();
    assert_eq!(modules, [Value::from("echo")]);
}

#[test]
fn events_reach_all_subscribed_clients_in_order() {
    let mut net = TestNet::new(7, 2, |_| vec![Box::new(Bell)]);
    // Subscribe clients on three different brokers.
    for &(r, cid) in &[(0u32, 0u32), (3, 1), (6, 2)] {
        let sub = ClientCore::new(Rank(r), cid).request(
            topic("cmb.sub"),
            Value::from_pairs([("prefix", Value::from("bell"))]),
            0,
        );
        net.client_send(Rank(r), cid, sub);
        let _ = net.take_client_msgs(Rank(r), cid);
    }
    // Ring the bell twice from rank 5.
    for i in 0..2 {
        let req = ClientCore::new(Rank(5), 9).request(
            topic("bell.ring"),
            Value::Int(i),
            0,
        );
        net.client_send(Rank(5), 9, req);
        let _ = net.take_client_msgs(Rank(5), 9);
    }
    for &(r, cid) in &[(0u32, 0u32), (3, 1), (6, 2)] {
        let evs = net.take_client_msgs(Rank(r), cid);
        assert_eq!(evs.len(), 2, "client at rank {r}");
        assert_eq!(evs[0].payload, Value::Int(0));
        assert_eq!(evs[1].payload, Value::Int(1));
        // Root-stamped sequence numbers are strictly increasing.
        assert!(evs[0].header.id.seq < evs[1].header.id.seq);
        assert_eq!(evs[0].header.topic.as_str(), "bell.rung");
    }
}

#[test]
fn same_broker_client_fanout_is_ordered_by_client_id() {
    // Regression: client fan-out used to collect matching ids from a
    // HashMap into a scratch Vec and sort it per event; `client_subs` is
    // now an ordered map walked directly, so delivery order must come
    // out in client-id order no matter the subscription order.
    let mut b = Broker::new(BrokerConfig::new(Rank(0), 1), vec![]);
    let _ = b.start(0);
    for cid in [2u32, 0, 1] {
        let sub = ClientCore::new(Rank(0), cid).request(
            topic("cmb.sub"),
            Value::from_pairs([("prefix", Value::from("bell"))]),
            0,
        );
        let _ = b.handle(0, Input::FromClient { client: cid, msg: sub });
    }
    let outs = b.publish(0, topic("bell.rung"), Value::Int(7));
    let delivered: Vec<ClientId> = outs
        .iter()
        .filter_map(|o| match o {
            Output::ToClient { client, msg } if msg.header.topic.as_str() == "bell.rung" => {
                Some(*client)
            }
            _ => None,
        })
        .collect();
    assert_eq!(delivered, [0, 1, 2]);
}

#[test]
fn unsubscribe_stops_event_delivery() {
    let mut net = TestNet::new(3, 2, |_| vec![Box::new(Bell)]);
    let sub = ClientCore::new(Rank(1), 0).request(
        topic("cmb.sub"),
        Value::from_pairs([("prefix", Value::from("bell"))]),
        0,
    );
    net.client_send(Rank(1), 0, sub);
    let unsub = ClientCore::new(Rank(1), 0).request(
        topic("cmb.unsub"),
        Value::from_pairs([("prefix", Value::from("bell"))]),
        0,
    );
    net.client_send(Rank(1), 0, unsub);
    let _ = net.take_client_msgs(Rank(1), 0);
    let ring = ClientCore::new(Rank(2), 0).request(topic("bell.ring"), Value::Null, 0);
    net.client_send(Rank(2), 0, ring);
    assert!(net.take_client_msgs(Rank(1), 0).is_empty());
}

#[test]
fn two_clients_same_broker_get_own_responses() {
    let mut net = TestNet::new(3, 2, |r| {
        if r.is_root() {
            vec![Box::new(Echo) as Box<dyn CommsModule>]
        } else {
            vec![]
        }
    });
    let mut c0 = ClientCore::new(Rank(2), 0);
    let mut c1 = ClientCore::new(Rank(2), 1);
    let r0 = c0.request(topic("echo.a"), Value::from("zero"), 10);
    let r1 = c1.request(topic("echo.a"), Value::from("one"), 11);
    net.client_send(Rank(2), 0, r0);
    net.client_send(Rank(2), 1, r1);
    let m0 = net.take_client_msgs(Rank(2), 0);
    let m1 = net.take_client_msgs(Rank(2), 1);
    assert_eq!(m0.len(), 1);
    assert_eq!(m1.len(), 1);
    assert_eq!(m0[0].payload.get("echo"), Some(&Value::from("zero")));
    assert_eq!(m1[0].payload.get("echo"), Some(&Value::from("one")));
    assert!(matches!(c0.deliver(m0[0].clone()), Delivery::Response { tag: 10, .. }));
    assert!(matches!(c1.deliver(m1[0].clone()), Delivery::Response { tag: 11, .. }));
}

#[test]
fn ring_skips_dead_ranks_after_live_event() {
    let mut net = TestNet::new(6, 2, |_| vec![Box::new(Bell)]);
    // Publish a live.down for rank 3 (normally the live module does this).
    let ring_req = |from: u32, to: u32| {
        ClientCore::new(Rank(from), 0).request_to(
            Rank(to),
            topic("cmb.ping"),
            Value::object(),
            0,
        )
    };
    // First verify 2 -> 4 works through 3.
    let resp = roundtrip(&mut net, Rank(2), 0, ring_req(2, 4));
    assert_eq!(resp.payload.get("pong"), Some(&Value::Int(4)));

    // Kill rank 3 and inform the session.
    net.kill(Rank(3));
    // Inject the liveness event by having a module publish it: use bell's
    // publish path via a crafted topic is not possible, so emulate the
    // live module by sending the event from the root broker directly.
    // The root sequences everything, so publish from a root-attached
    // client via the bell module with topic bell.rung is not "live.down";
    // instead we use the dedicated helper below.
    net.publish_from_root(topic("live.down"), Value::from_pairs([("rank", Value::Int(3))]));

    // 2 -> 4 must still work, skipping dead rank 3 on the ring.
    let resp = roundtrip(&mut net, Rank(2), 0, ring_req(2, 4));
    assert_eq!(resp.payload.get("pong"), Some(&Value::Int(4)));
}

#[test]
fn tree_requests_skip_dead_interior_nodes() {
    // Binary tree of 15; path 11 -> 5 -> 2 -> 0. Kill rank 5; requests
    // from 11 must reach the root Echo via the effective parent (2).
    let mut net = TestNet::new(15, 2, |r| {
        if r.is_root() {
            vec![Box::new(Echo) as Box<dyn CommsModule>]
        } else {
            vec![]
        }
    });
    net.kill(Rank(5));
    net.publish_from_root(topic("live.down"), Value::from_pairs([("rank", Value::Int(5))]));
    let req = ClientCore::new(Rank(11), 0).request(topic("echo.x"), Value::Null, 0);
    let resp = roundtrip(&mut net, Rank(11), 0, req);
    assert_eq!(resp.payload.get("rank"), Some(&Value::Int(0)));
}

#[test]
fn tree_overlay_pings_all_pairs() {
    use flux_broker::{BrokerConfig, RankOverlay};
    let size = 10u32;
    let mut net = TestNet::with_config(
        size,
        2,
        |r| BrokerConfig::new(r, size).with_rank_overlay(RankOverlay::Tree),
        |_| vec![],
    );
    for from in 0..size {
        for to in 0..size {
            let mut c = ClientCore::new(Rank(from), 0);
            let req = c.request_to(Rank(to), topic("cmb.ping"), Value::object(), 0);
            let resp = roundtrip(&mut net, Rank(from), 0, req);
            assert_eq!(resp.payload.get("pong"), Some(&Value::Int(i64::from(to))), "{from}->{to}");
        }
    }
}

#[test]
fn tree_overlay_routes_around_dead_interior() {
    use flux_broker::{BrokerConfig, RankOverlay};
    let size = 15u32;
    let mut net = TestNet::with_config(
        size,
        2,
        |r| BrokerConfig::new(r, size).with_rank_overlay(RankOverlay::Tree),
        |_| vec![],
    );
    net.kill(Rank(5));
    net.publish_from_root(topic("live.down"), Value::from_pairs([("rank", Value::Int(5))]));
    // 11 (orphan of 5) pings 12 (other orphan): the route re-parents
    // through rank 2 instead of dead rank 5.
    let req = ClientCore::new(Rank(11), 0).request_to(
        Rank(12),
        topic("cmb.ping"),
        Value::object(),
        0,
    );
    let resp = roundtrip(&mut net, Rank(11), 0, req);
    assert_eq!(resp.payload.get("pong"), Some(&Value::Int(12)));
}

#[test]
fn rank_addressed_request_to_dead_rank_fails_ehostdown() {
    use flux_broker::{BrokerConfig, RankOverlay};
    for overlay in [RankOverlay::Ring, RankOverlay::Tree] {
        let size = 8u32;
        let mut net = TestNet::with_config(
            size,
            2,
            move |r| BrokerConfig::new(r, size).with_rank_overlay(overlay),
            |_| vec![],
        );
        net.kill(Rank(6));
        net.publish_from_root(topic("live.down"), Value::from_pairs([("rank", Value::Int(6))]));
        let req = ClientCore::new(Rank(3), 0).request_to(
            Rank(6),
            topic("cmb.ping"),
            Value::object(),
            0,
        );
        let resp = roundtrip(&mut net, Rank(3), 0, req);
        assert_eq!(resp.header.errnum, errnum::EHOSTDOWN, "{overlay:?}");
    }
}
