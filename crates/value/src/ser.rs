//! JSON text serialization (compact and pretty).

use crate::Value;
use std::fmt::Write as _;

impl Value {
    /// Serializes to compact JSON text.
    ///
    /// Floats that are finite round-trip through Rust's shortest-repr
    /// formatting; non-finite floats (which JSON cannot represent) are
    /// emitted as `null`, matching common JSON library behaviour.
    ///
    /// ```
    /// use flux_value::Value;
    /// let v = Value::from_pairs([("b", Value::Int(2)), ("a", Value::Int(1))]);
    /// assert_eq!(v.to_json(), r#"{"a":1,"b":2}"#);
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Serializes to pretty-printed JSON with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let mut s = format!("{x}");
    // `{}` prints integral floats without a decimal point; re-parsing such
    // text would yield Int, breaking round-trips, so force a ".0".
    if !s.contains(['.', 'e', 'E']) {
        s.push_str(".0");
    }
    out.push_str(&s);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use crate::Value;

    #[test]
    fn compact_forms() {
        assert_eq!(Value::Null.to_json(), "null");
        assert_eq!(Value::Bool(false).to_json(), "false");
        assert_eq!(Value::Int(-5).to_json(), "-5");
        assert_eq!(Value::Float(1.5).to_json(), "1.5");
        assert_eq!(Value::from("a\"b").to_json(), r#""a\"b""#);
        assert_eq!(Value::array().to_json(), "[]");
        assert_eq!(Value::object().to_json(), "{}");
    }

    #[test]
    fn integral_float_keeps_point() {
        assert_eq!(Value::Float(3.0).to_json(), "3.0");
        let back = Value::parse("3.0").unwrap();
        assert_eq!(back, Value::Float(3.0));
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(Value::from("\u{01}").to_json(), "\"\\u0001\"");
        assert_eq!(Value::from("\n\t").to_json(), r#""\n\t""#);
    }

    #[test]
    fn roundtrip_compact() {
        let src = r#"{"a":[1,2.5,"x",null,true],"b":{"c":-1}}"#;
        let v = Value::parse(src).unwrap();
        assert_eq!(v.to_json(), src);
    }

    #[test]
    fn pretty_has_structure() {
        let v = Value::parse(r#"{"a":[1],"b":2}"#).unwrap();
        let pretty = v.to_json_pretty();
        assert!(pretty.contains("\n  \"a\": [\n    1\n  ]"));
        assert_eq!(Value::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn display_is_compact_json() {
        let v = Value::parse(r#"{"k":1}"#).unwrap();
        assert_eq!(format!("{v}"), r#"{"k":1}"#);
    }
}
