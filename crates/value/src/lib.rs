//! # flux-value
//!
//! JSON-compatible value type used throughout flux-rs.
//!
//! The ICPP'14 Flux paper specifies that every CMB message carries a JSON
//! payload frame, and that the KVS stores JSON objects in a
//! content-addressable object store keyed by SHA1 digest. Content addressing
//! requires a *canonical* encoding — two semantically equal values must
//! produce byte-identical encodings — which ordinary JSON text does not
//! provide (key order, whitespace, number formatting all vary). This crate
//! therefore provides:
//!
//! * [`Value`] — an owned JSON value with deterministic object ordering
//!   (objects are `BTreeMap`s),
//! * a JSON text parser ([`Value::parse`]) and serializer
//!   ([`Value::to_json`], [`Value::to_json_pretty`]),
//! * a canonical binary encoding ([`Value::encode_canonical`] /
//!   [`Value::decode_canonical`]) that is injective on values and is what
//!   the KVS hashes.
//!
//! # Example
//!
//! ```
//! use flux_value::Value;
//!
//! let v = Value::parse(r#"{"rank": 3, "host": "zin64", "cores": [0, 1]}"#).unwrap();
//! assert_eq!(v.get("rank").and_then(Value::as_int), Some(3));
//! let bytes = v.encode_canonical();
//! assert_eq!(Value::decode_canonical(&bytes).unwrap(), v);
//! ```


#![forbid(unsafe_code)]
#![deny(missing_docs)]
mod canonical;
mod parse;
mod ser;
mod value;

pub use canonical::{read_varint, write_varint, DecodeError};
pub use parse::ParseError;
pub use value::{Map, Value};

#[cfg(test)]
mod proptests;
