//! A recursive-descent JSON parser.
//!
//! Accepts standard JSON (RFC 8259): the full escape set, `\uXXXX` with
//! surrogate pairs, nested containers, and integer/float literals. Rejects
//! trailing garbage, unterminated strings, bare control characters, and
//! over-deep nesting (a depth limit guards the stack, since payloads arrive
//! over the wire).

use crate::{Map, Value};
use std::fmt;

/// Maximum container nesting depth accepted by the parser.
pub const MAX_DEPTH: usize = 128;

/// An error produced while parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Value {
    /// Parses JSON text into a [`Value`].
    ///
    /// ```
    /// use flux_value::Value;
    /// let v = Value::parse(r#"[1, 2.5, "x", null, {"k": true}]"#).unwrap();
    /// assert_eq!(v.get_index(0), Some(&Value::Int(1)));
    /// ```
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("invalid literal, expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(out)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let ch = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: a \uXXXX low surrogate must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("high surrogate not followed by \\u"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))?
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err(self.err("unexpected low surrogate"));
                        } else {
                            char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                        };
                        out.push(ch);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(c) if c < 0x20 => return Err(self.err("bare control character in string")),
                Some(c) if c < 0x80 => out.push(c as char),
                Some(c) => {
                    // Multi-byte UTF-8: the input is a &str so it is valid;
                    // reconstruct the char from the remaining bytes.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: either a single 0 or [1-9][0-9]*.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            // Integral but out of i64 range: fall through to float.
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| ParseError { offset: start, message: "number out of range".into() })
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Value {
        Value::parse(s).unwrap()
    }

    fn fails(s: &str) {
        assert!(Value::parse(s).is_err(), "expected parse failure for {s:?}");
    }

    #[test]
    fn scalars() {
        assert_eq!(p("null"), Value::Null);
        assert_eq!(p("true"), Value::Bool(true));
        assert_eq!(p("false"), Value::Bool(false));
        assert_eq!(p("42"), Value::Int(42));
        assert_eq!(p("-17"), Value::Int(-17));
        assert_eq!(p("0"), Value::Int(0));
        assert_eq!(p("2.5"), Value::Float(2.5));
        assert_eq!(p("1e3"), Value::Float(1000.0));
        assert_eq!(p("-1.25E-2"), Value::Float(-0.0125));
        assert_eq!(p("\"hi\""), Value::from("hi"));
    }

    #[test]
    fn huge_integral_becomes_float() {
        assert_eq!(p("99999999999999999999"), Value::Float(1e20));
    }

    #[test]
    fn i64_bounds_stay_int() {
        assert_eq!(p("9223372036854775807"), Value::Int(i64::MAX));
        assert_eq!(p("-9223372036854775808"), Value::Int(i64::MIN));
    }

    #[test]
    fn containers() {
        assert_eq!(p("[]"), Value::array());
        assert_eq!(p("{}"), Value::object());
        assert_eq!(p("[1,[2,[3]]]").get_index(1).unwrap().get_index(1).unwrap().get_index(0), Some(&Value::Int(3)));
        let v = p(r#"{"a": {"b": [1, 2]}}"#);
        assert_eq!(v.get("a").unwrap().get("b").unwrap().get_index(0), Some(&Value::Int(1)));
    }

    #[test]
    fn whitespace_everywhere() {
        assert_eq!(p(" \t\n{ \"a\" :\r [ 1 , 2 ] } \n"), p(r#"{"a":[1,2]}"#));
    }

    #[test]
    fn escapes() {
        assert_eq!(p(r#""\n\t\"\\\/\b\f\r""#), Value::from("\n\t\"\\/\u{8}\u{c}\r"));
        assert_eq!(p(r#""A""#), Value::from("A"));
        assert_eq!(p(r#""é""#), Value::from("é"));
        // Surrogate pair for U+1F600.
        assert_eq!(p(r#""😀""#), Value::from("😀"));
    }

    #[test]
    fn raw_utf8_passthrough() {
        assert_eq!(p("\"héllo ∆ 😀\""), Value::from("héllo ∆ 😀"));
    }

    #[test]
    fn duplicate_keys_last_wins() {
        assert_eq!(p(r#"{"a":1,"a":2}"#).get("a"), Some(&Value::Int(2)));
    }

    #[test]
    fn rejects_malformed() {
        fails("");
        fails("nul");
        fails("tru");
        fails("[1,");
        fails("[1 2]");
        fails("{\"a\":}");
        fails("{a: 1}");
        fails("\"unterminated");
        fails("\"bad\\escape\"");
        fails("01");
        fails("1.");
        fails("1e");
        fails("-");
        fails("+1");
        fails("[]]");
        fails("{} {}");
        fails("\"\\ud83d\""); // lone high surrogate
        fails("\"\\ude00\""); // lone low surrogate
        fails("\"\u{01}\"");
    }

    #[test]
    fn depth_limit_enforced() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Value::parse(&deep_ok).is_ok());
        let deep_bad = format!("{}1{}", "[".repeat(MAX_DEPTH + 2), "]".repeat(MAX_DEPTH + 2));
        assert!(Value::parse(&deep_bad).is_err());
    }

    #[test]
    fn error_offsets_point_at_problem() {
        let e = Value::parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
