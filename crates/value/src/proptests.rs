//! Property-based tests for parse/serialize/canonical-encode round-trips.

use crate::Value;
use proptest::prelude::*;

/// Strategy producing arbitrary [`Value`]s, recursively.
///
/// Floats are restricted to finite values: JSON cannot represent NaN or
/// infinities, so text round-trips only hold on the finite subset (the
/// canonical encoding round-trips all bit patterns and is tested separately).
pub fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only; see above.
        prop::num::f64::NORMAL.prop_map(Value::Float),
        Just(Value::Float(0.0)),
        ".{0,12}".prop_map(Value::from),
    ];
    leaf.prop_recursive(4, 48, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::btree_map(".{0,8}", inner, 0..6).prop_map(Value::Object),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// JSON text round-trip: parse(to_json(v)) == v for finite values.
    #[test]
    fn json_text_roundtrip(v in arb_value()) {
        let text = v.to_json();
        let back = Value::parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Pretty and compact forms parse to the same value.
    #[test]
    fn pretty_equals_compact(v in arb_value()) {
        let a = Value::parse(&v.to_json()).unwrap();
        let b = Value::parse(&v.to_json_pretty()).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Canonical encoding round-trip: decode(encode(v)) == v.
    #[test]
    fn canonical_roundtrip(v in arb_value()) {
        let enc = v.encode_canonical();
        let back = Value::decode_canonical(&enc).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Canonical encoding is injective on distinct values — the property
    /// content addressing relies on. (Tested as: equal encodings imply
    /// equal values, via decode determinism + roundtrip; here we check the
    /// contrapositive pairwise.)
    #[test]
    fn canonical_injective(a in arb_value(), b in arb_value()) {
        let ea = a.encode_canonical();
        let eb = b.encode_canonical();
        if a == b {
            prop_assert_eq!(&ea, &eb);
        } else {
            prop_assert_ne!(&ea, &eb);
        }
    }

    /// Parsing arbitrary bytes never panics (it may fail, that's fine).
    #[test]
    fn parser_never_panics(s in ".{0,64}") {
        let _ = Value::parse(&s);
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = Value::decode_canonical(&bytes);
    }

    /// approx_size is at least 1 and bounded by a generous multiple of the
    /// canonical encoding length (sanity for cache accounting).
    #[test]
    fn approx_size_sane(v in arb_value()) {
        let sz = v.approx_size();
        prop_assert!(sz >= 1);
        let enc = v.encode_canonical().len();
        prop_assert!(sz <= 16 * (enc + 16));
    }
}
