//! The [`Value`] enum and its accessors/constructors.

use std::collections::BTreeMap;
use std::fmt;

/// The map type used for JSON objects.
///
/// A `BTreeMap` rather than a hash map: object iteration order is part of
/// the canonical encoding, so it must be deterministic.
pub type Map = BTreeMap<String, Value>;

/// An owned JSON value.
///
/// Numbers are split into [`Value::Int`] (exact 64-bit signed integers) and
/// [`Value::Float`] (IEEE 754 doubles). JSON text containing an integral
/// literal without a fraction or exponent parses to `Int` when it fits in
/// `i64`, and to `Float` otherwise, matching the behaviour HPC tooling
/// expects for ranks, counts, and sizes.
#[derive(Debug, Clone, PartialEq)]
#[derive(Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// An exact signed 64-bit integer.
    Int(i64),
    /// An IEEE 754 double-precision float.
    Float(f64),
    /// A UTF-8 string.
    Str(String),
    /// An ordered array of values.
    Array(Vec<Value>),
    /// A key→value object with deterministic (sorted) key order.
    Object(Map),
}

impl Value {
    /// Builds an empty object.
    pub fn object() -> Value {
        Value::Object(Map::new())
    }

    /// Builds an empty array.
    pub fn array() -> Value {
        Value::Array(Vec::new())
    }

    /// Convenience constructor: an object from an iterator of pairs.
    ///
    /// ```
    /// use flux_value::Value;
    /// let v = Value::from_pairs([("a", Value::Int(1)), ("b", Value::Bool(true))]);
    /// assert_eq!(v.get("a"), Some(&Value::Int(1)));
    /// ```
    pub fn from_pairs<K, I>(pairs: I) -> Value
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, Value)>,
    {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Returns `true` if this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the integer as `u64` if this is a non-negative `Int`.
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Returns a float if this is `Float` or `Int` (ints convert losslessly
    /// enough for metric use).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the string slice if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the array slice if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns a mutable array reference if this is an `Array`.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the object map if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Returns a mutable object map if this is an `Object`.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up `key` in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Looks up index `i` in an array.
    pub fn get_index(&self, i: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(i))
    }

    /// Inserts `key = value` into an object, converting `self` to an empty
    /// object first if it was `Null`. Returns the previous value if any.
    ///
    /// # Panics
    ///
    /// Panics if `self` is neither an object nor null — inserting into a
    /// scalar is a logic error we want loud.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        if self.is_null() {
            *self = Value::object();
        }
        match self {
            Value::Object(m) => m.insert(key.into(), value),
            other => panic!("Value::insert on non-object {other:?}"),
        }
    }

    /// Appends to an array, converting from `Null` like [`Value::insert`].
    ///
    /// # Panics
    ///
    /// Panics if `self` is neither an array nor null.
    pub fn push(&mut self, value: Value) {
        if self.is_null() {
            *self = Value::array();
        }
        match self {
            Value::Array(a) => a.push(value),
            other => panic!("Value::push on non-array {other:?}"),
        }
    }

    /// A short type name for diagnostics: `"null"`, `"bool"`, …
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Approximate in-memory footprint in bytes; used by KVS cache
    /// accounting and the simulator's transfer-cost model.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Null | Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len() + 8,
            Value::Array(a) => 8 + a.iter().map(Value::approx_size).sum::<usize>(),
            Value::Object(m) => {
                8 + m
                    .iter()
                    .map(|(k, v)| k.len() + 8 + v.approx_size())
                    .sum::<usize>()
            }
        }
    }
}


impl fmt::Display for Value {
    /// Displays as compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<usize> for Value {
    /// Converts, saturating at `i64::MAX` (sizes beyond 2^63 do not occur).
    fn from(i: usize) -> Self {
        Value::Int(i64::try_from(i).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(-3).as_int(), Some(-3));
        assert_eq!(Value::Int(-3).as_uint(), None);
        assert_eq!(Value::Int(3).as_uint(), Some(3));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert!(Value::Bool(true).as_str().is_none());
    }

    #[test]
    fn insert_and_get() {
        let mut v = Value::Null;
        v.insert("a", Value::Int(1));
        v.insert("b", Value::from("x"));
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.insert("a", Value::Int(2)), Some(Value::Int(1)));
    }

    #[test]
    fn push_builds_array() {
        let mut v = Value::Null;
        v.push(Value::Int(1));
        v.push(Value::Int(2));
        assert_eq!(v.get_index(1), Some(&Value::Int(2)));
        assert_eq!(v.as_array().unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn insert_into_scalar_panics() {
        let mut v = Value::Int(1);
        v.insert("a", Value::Null);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(vec![1i64, 2]), Value::Array(vec![Value::Int(1), Value::Int(2)]));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(7i64)), Value::Int(7));
    }

    #[test]
    fn approx_size_is_monotone_in_content() {
        let small = Value::from("ab");
        let big = Value::from("abcdefgh");
        assert!(big.approx_size() > small.approx_size());
        let arr = Value::from(vec![1i64; 100]);
        assert!(arr.approx_size() >= 800);
    }

    #[test]
    fn object_keys_are_sorted() {
        let v = Value::from_pairs([("z", Value::Int(1)), ("a", Value::Int(2))]);
        let keys: Vec<&String> = v.as_object().unwrap().keys().collect();
        assert_eq!(keys, ["a", "z"]);
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::Null.type_name(), "null");
        assert_eq!(Value::object().type_name(), "object");
        assert_eq!(Value::array().type_name(), "array");
        assert_eq!(Value::Float(0.0).type_name(), "float");
    }
}
