//! Canonical binary encoding.
//!
//! The KVS content-addresses objects by the SHA1 of their encoding
//! (paper §IV-B, the ZFS/git-style hash tree). That only works if equal
//! values encode to identical bytes, so this encoding is *canonical*:
//!
//! * objects iterate in sorted key order (guaranteed by [`crate::Map`]),
//! * lengths are unsigned LEB128 varints,
//! * integers are 8-byte little-endian two's complement,
//! * floats are 8-byte little-endian IEEE 754 bit patterns (so `-0.0` and
//!   `0.0` encode differently, and every NaN bit pattern is preserved),
//! * each value is prefixed by a one-byte tag.
//!
//! The encoding is self-delimiting, so it can be embedded in larger frames.

use crate::{Map, Value};
use std::fmt;

/// Value tags in the canonical encoding.
mod tag {
    pub const NULL: u8 = 0x00;
    pub const FALSE: u8 = 0x01;
    pub const TRUE: u8 = 0x02;
    pub const INT: u8 = 0x03;
    pub const FLOAT: u8 = 0x04;
    pub const STR: u8 = 0x05;
    pub const ARRAY: u8 = 0x06;
    pub const OBJECT: u8 = 0x07;
}

/// An error produced while decoding the canonical encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    Truncated,
    /// An unknown tag byte was found.
    BadTag(u8),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A varint was longer than 10 bytes.
    BadVarint,
    /// Bytes remained after the root value (when using `decode_canonical`).
    TrailingBytes,
    /// Object keys were not strictly ascending (non-canonical input).
    UnsortedKeys,
    /// Containers nested beyond [`MAX_DEPTH`] (hostile or corrupt input;
    /// decoding recurses, so unbounded nesting would overflow the stack).
    TooDeep,
}

/// Maximum container nesting depth the decoder accepts. Far above
/// anything the KVS or the control plane produces, far below what could
/// exhaust a thread stack.
pub const MAX_DEPTH: u32 = 128;

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "canonical value truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown canonical tag {t:#04x}"),
            DecodeError::BadUtf8 => write!(f, "canonical string is not UTF-8"),
            DecodeError::BadVarint => write!(f, "varint too long"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after canonical value"),
            DecodeError::UnsortedKeys => write!(f, "object keys not in canonical order"),
            DecodeError::TooDeep => {
                write!(f, "containers nested deeper than {MAX_DEPTH}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl Value {
    /// Encodes to the canonical binary form.
    pub fn encode_canonical(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.approx_size() + 16);
        encode_into(self, &mut out);
        out
    }

    /// Appends the canonical encoding to `out` (avoids intermediate
    /// allocations when framing).
    pub fn encode_canonical_into(&self, out: &mut Vec<u8>) {
        encode_into(self, out);
    }

    /// Decodes a value from the canonical binary form, requiring the input
    /// to be exactly one value.
    pub fn decode_canonical(bytes: &[u8]) -> Result<Value, DecodeError> {
        let mut cur = Cursor { bytes, pos: 0 };
        let v = decode_one(&mut cur, 0)?;
        if cur.pos != bytes.len() {
            return Err(DecodeError::TrailingBytes);
        }
        Ok(v)
    }

    /// Decodes one value from the front of `bytes`, returning it and the
    /// number of bytes consumed.
    pub fn decode_canonical_prefix(bytes: &[u8]) -> Result<(Value, usize), DecodeError> {
        let mut cur = Cursor { bytes, pos: 0 };
        let v = decode_one(&mut cur, 0)?;
        Ok((v, cur.pos))
    }
}

/// Writes `v` as an unsigned LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from the front of `bytes`, returning
/// the value and bytes consumed.
pub fn read_varint(bytes: &[u8]) -> Result<(u64, usize), DecodeError> {
    let mut v: u64 = 0;
    for (i, &b) in bytes.iter().enumerate().take(10) {
        v |= u64::from(b & 0x7f) << (7 * i);
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
    }
    if bytes.len() < 10 {
        Err(DecodeError::Truncated)
    } else {
        Err(DecodeError::BadVarint)
    }
}

fn encode_into(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(tag::NULL),
        Value::Bool(false) => out.push(tag::FALSE),
        Value::Bool(true) => out.push(tag::TRUE),
        Value::Int(i) => {
            out.push(tag::INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(tag::FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(tag::STR);
            write_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(a) => {
            out.push(tag::ARRAY);
            write_varint(out, a.len() as u64);
            for item in a {
                encode_into(item, out);
            }
        }
        Value::Object(m) => {
            out.push(tag::OBJECT);
            write_varint(out, m.len() as u64);
            for (k, val) in m {
                write_varint(out, k.len() as u64);
                out.extend_from_slice(k.as_bytes());
                encode_into(val, out);
            }
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn varint(&mut self) -> Result<u64, DecodeError> {
        let (v, n) = read_varint(&self.bytes[self.pos..])?;
        self.pos += n;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.varint()? as usize;
        let raw = self.take(len)?;
        std::str::from_utf8(raw).map(str::to_owned).map_err(|_| DecodeError::BadUtf8)
    }
}

fn decode_one(cur: &mut Cursor<'_>, depth: u32) -> Result<Value, DecodeError> {
    if depth > MAX_DEPTH {
        return Err(DecodeError::TooDeep);
    }
    let t = cur.take(1)?[0];
    Ok(match t {
        tag::NULL => Value::Null,
        tag::FALSE => Value::Bool(false),
        tag::TRUE => Value::Bool(true),
        tag::INT => {
            let raw: [u8; 8] = cur.take(8)?.try_into().expect("len checked");
            Value::Int(i64::from_le_bytes(raw))
        }
        tag::FLOAT => {
            let raw: [u8; 8] = cur.take(8)?.try_into().expect("len checked");
            Value::Float(f64::from_bits(u64::from_le_bytes(raw)))
        }
        tag::STR => Value::Str(cur.string()?),
        tag::ARRAY => {
            let len = cur.varint()? as usize;
            let mut a = Vec::new();
            for _ in 0..len {
                a.push(decode_one(cur, depth + 1)?);
            }
            Value::Array(a)
        }
        tag::OBJECT => {
            let len = cur.varint()? as usize;
            let mut m = Map::new();
            let mut last_key: Option<String> = None;
            for _ in 0..len {
                let k = cur.string()?;
                if let Some(prev) = &last_key {
                    if *prev >= k {
                        return Err(DecodeError::UnsortedKeys);
                    }
                }
                let v = decode_one(cur, depth + 1)?;
                last_key = Some(k.clone());
                m.insert(k, v);
            }
            Value::Object(m)
        }
        other => return Err(DecodeError::BadTag(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let enc = v.encode_canonical();
        assert_eq!(Value::decode_canonical(&enc).unwrap(), v, "roundtrip of {v:?}");
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(Value::Null);
        roundtrip(Value::Bool(true));
        roundtrip(Value::Bool(false));
        roundtrip(Value::Int(0));
        roundtrip(Value::Int(i64::MIN));
        roundtrip(Value::Int(i64::MAX));
        roundtrip(Value::Float(0.0));
        roundtrip(Value::Float(-1.5e300));
        roundtrip(Value::from("hello ∆ world"));
        roundtrip(Value::from(""));
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(Value::array());
        roundtrip(Value::object());
        roundtrip(Value::parse(r#"{"a":[1,{"b":null}],"c":"x"}"#).unwrap());
    }

    #[test]
    fn negative_zero_distinct_from_zero() {
        let pz = Value::Float(0.0).encode_canonical();
        let nz = Value::Float(-0.0).encode_canonical();
        assert_ne!(pz, nz);
    }

    #[test]
    fn equal_values_encode_identically() {
        // Build the same object with different insertion orders.
        let a = Value::from_pairs([("x", Value::Int(1)), ("y", Value::Int(2))]);
        let b = Value::from_pairs([("y", Value::Int(2)), ("x", Value::Int(1))]);
        assert_eq!(a.encode_canonical(), b.encode_canonical());
    }

    #[test]
    fn varint_edge_cases() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (back, n) = read_varint(&buf).unwrap();
            assert_eq!(back, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overlong() {
        let eleven = [0x80u8; 11];
        assert_eq!(read_varint(&eleven), Err(DecodeError::BadVarint));
        assert_eq!(read_varint(&[0x80]), Err(DecodeError::Truncated));
    }

    #[test]
    fn decode_rejects_truncation() {
        let enc = Value::from("hello").encode_canonical();
        for cut in 0..enc.len() {
            assert!(Value::decode_canonical(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn decode_rejects_bad_tag_and_trailing() {
        assert_eq!(Value::decode_canonical(&[0xff]), Err(DecodeError::BadTag(0xff)));
        let mut enc = Value::Null.encode_canonical();
        enc.push(0);
        assert_eq!(Value::decode_canonical(&enc), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn decode_rejects_unsorted_or_duplicate_keys() {
        // Hand-build an object with keys in the wrong order: {"b":null,"a":null}.
        let mut buf = vec![0x07, 2];
        buf.extend([1, b'b', 0x00]);
        buf.extend([1, b'a', 0x00]);
        assert_eq!(Value::decode_canonical(&buf), Err(DecodeError::UnsortedKeys));
        // Duplicate keys are likewise non-canonical.
        let mut buf = vec![0x07, 2];
        buf.extend([1, b'a', 0x00]);
        buf.extend([1, b'a', 0x00]);
        assert_eq!(Value::decode_canonical(&buf), Err(DecodeError::UnsortedKeys));
    }

    /// `[[[…]]]` nested `n` deep, as raw bytes (each level is tag + len 1,
    /// innermost is the empty array).
    fn nested_array_bytes(n: usize) -> Vec<u8> {
        let mut buf = Vec::with_capacity(2 * n);
        for _ in 0..n.saturating_sub(1) {
            buf.extend([tag::ARRAY, 1]);
        }
        buf.extend([tag::ARRAY, 0]);
        buf
    }

    #[test]
    fn decode_rejects_hostile_nesting_depth() {
        // Deep nesting must return an error, not blow the stack: this is
        // what a 20 KB hostile frame would do to a broker thread.
        let deep = nested_array_bytes(10_000);
        assert_eq!(Value::decode_canonical(&deep), Err(DecodeError::TooDeep));
        // Sane nesting still decodes.
        let ok = nested_array_bytes(MAX_DEPTH as usize);
        assert!(Value::decode_canonical(&ok).is_ok());
        // One past the limit is the boundary.
        let over = nested_array_bytes(MAX_DEPTH as usize + 2);
        assert_eq!(Value::decode_canonical(&over), Err(DecodeError::TooDeep));
    }

    #[test]
    fn prefix_decoding_reports_consumed() {
        let mut buf = Value::Int(7).encode_canonical();
        let one = buf.len();
        buf.extend(Value::from("x").encode_canonical());
        let (v, n) = Value::decode_canonical_prefix(&buf).unwrap();
        assert_eq!(v, Value::Int(7));
        assert_eq!(n, one);
        let (v2, _) = Value::decode_canonical_prefix(&buf[n..]).unwrap();
        assert_eq!(v2, Value::from("x"));
    }
}
