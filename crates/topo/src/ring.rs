//! Ring overlay for rank-addressed RPC.
//!
//! The paper: *"an RPC may be addressed to a specific CMB rank using a
//! separate overlay, currently utilizing a ring topology which allows
//! ranks to be trivially reached without routing tables"* — each node only
//! knows its successor; a message hops forward until it arrives.

use flux_wire::Rank;

/// A unidirectional ring over ranks `0..size`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ring {
    size: u32,
}

impl Ring {
    /// Creates a ring over `size` ranks.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: u32) -> Ring {
        assert!(size > 0, "ring must have at least one rank");
        Ring { size }
    }

    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The successor of `r` (wraps around).
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn next(&self, r: Rank) -> Rank {
        assert!(r.0 < self.size, "rank {r} out of range 0..{}", self.size);
        Rank((r.0 + 1) % self.size)
    }

    /// Forward hop count from `from` to `to`.
    pub fn distance(&self, from: Rank, to: Rank) -> u32 {
        assert!(from.0 < self.size && to.0 < self.size, "rank out of range");
        (to.0 + self.size - from.0) % self.size
    }

    /// The sequence of ranks a message visits travelling from `from` to
    /// `to`, excluding `from`, including `to`. Empty when `from == to`.
    pub fn route(&self, from: Rank, to: Rank) -> Vec<Rank> {
        let d = self.distance(from, to);
        let mut out = Vec::with_capacity(d as usize);
        let mut cur = from;
        for _ in 0..d {
            cur = self.next(cur);
            out.push(cur);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_wraps() {
        let r = Ring::new(4);
        assert_eq!(r.next(Rank(0)), Rank(1));
        assert_eq!(r.next(Rank(3)), Rank(0));
    }

    #[test]
    fn single_node_ring() {
        let r = Ring::new(1);
        assert_eq!(r.next(Rank(0)), Rank(0));
        assert_eq!(r.distance(Rank(0), Rank(0)), 0);
        assert!(r.route(Rank(0), Rank(0)).is_empty());
    }

    #[test]
    fn distances() {
        let r = Ring::new(8);
        assert_eq!(r.distance(Rank(0), Rank(0)), 0);
        assert_eq!(r.distance(Rank(0), Rank(7)), 7);
        assert_eq!(r.distance(Rank(7), Rank(0)), 1);
        assert_eq!(r.distance(Rank(3), Rank(2)), 7);
    }

    #[test]
    fn route_ends_at_destination() {
        let r = Ring::new(5);
        let route = r.route(Rank(3), Rank(1));
        assert_eq!(route, vec![Rank(4), Rank(0), Rank(1)]);
        assert_eq!(route.len() as u32, r.distance(Rank(3), Rank(1)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        Ring::new(3).next(Rank(3));
    }
}
