//! Property tests for topology invariants.

use crate::{LiveSet, Ring, Tree};
use flux_wire::Rank;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parent/children are mutually consistent for every rank.
    #[test]
    fn parent_child_consistency(size in 1u32..500, arity in 1u32..8) {
        let t = Tree::new(size, arity);
        for r in t.ranks() {
            for c in t.children(r) {
                prop_assert_eq!(t.parent(c), Some(r));
            }
            if let Some(p) = t.parent(r) {
                prop_assert!(t.children(p).contains(&r));
            }
        }
    }

    /// Every rank reaches the root, in at most height steps.
    #[test]
    fn all_paths_reach_root(size in 1u32..500, arity in 1u32..8) {
        let t = Tree::new(size, arity);
        let h = t.height() as usize;
        for r in t.ranks() {
            let path = t.path_to_root(r);
            prop_assert_eq!(*path.last().unwrap(), Rank(0));
            prop_assert!(path.len() <= h + 1);
            prop_assert_eq!(path.len() as u32, t.depth(r) + 1);
        }
    }

    /// Each non-root rank appears in exactly one parent's child list:
    /// subtrees of the root's children partition the non-root ranks.
    #[test]
    fn subtrees_partition(size in 2u32..300, arity in 1u32..6) {
        let t = Tree::new(size, arity);
        let mut seen = vec![false; size as usize];
        seen[0] = true;
        for c in t.children(Rank(0)) {
            for r in t.subtree(c) {
                prop_assert!(!seen[r.index()], "rank {} seen twice", r);
                seen[r.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    /// Ring routing always terminates at the destination with the claimed
    /// distance.
    #[test]
    fn ring_route_correct(size in 1u32..200, from in 0u32..200, to in 0u32..200) {
        let ring = Ring::new(size);
        let from = Rank(from % size);
        let to = Rank(to % size);
        let route = ring.route(from, to);
        prop_assert_eq!(route.len() as u32, ring.distance(from, to));
        if from != to {
            prop_assert_eq!(*route.last().unwrap(), to);
        }
        // Following `next` manually agrees with the route.
        let mut cur = from;
        for hop in &route {
            cur = ring.next(cur);
            prop_assert_eq!(cur, *hop);
        }
    }

    /// Self-heal: with arbitrary non-root failures, every live rank's
    /// effective parent is live, is a true ancestor, and effective_children
    /// is the exact inverse relation.
    #[test]
    fn selfheal_consistency(size in 2u32..200, arity in 1u32..6,
                            deaths in prop::collection::vec(1u32..200, 0..20)) {
        let t = Tree::new(size, arity);
        let mut l = LiveSet::new(size);
        for d in deaths {
            let r = Rank(1 + (d - 1) % (size - 1));
            l.mark_down(r);
        }
        for r in t.ranks().skip(1) {
            if !l.is_up(r) {
                continue;
            }
            let p = l.effective_parent(&t, r).unwrap();
            prop_assert!(l.is_up(p));
            prop_assert!(t.is_ancestor(p, r));
            prop_assert!(l.effective_children(&t, p).contains(&r));
        }
        // Inverse direction: every effective child has this parent.
        for r in t.ranks() {
            if !l.is_up(r) {
                continue;
            }
            for c in l.effective_children(&t, r) {
                prop_assert!(l.is_up(c));
                prop_assert_eq!(l.effective_parent(&t, c), Some(r));
            }
        }
    }
}
