//! # flux-topo
//!
//! Overlay network topologies for the CMB's three message planes.
//!
//! The paper (§IV-A) interconnects the per-node CMB daemons with a
//! request/response **tree** whose shape is configurable ("Although a
//! binary RPC/reduction tree is pictured, the tree shape is configurable"),
//! plus a **ring** overlay "which allows ranks to be trivially reached
//! without routing tables", and an event bus. This crate provides the
//! topology math those planes are built on:
//!
//! * [`Tree`] — a complete k-ary tree over ranks `0..size`, rank 0 at the
//!   root; parent/children/depth/ancestor queries and upstream routing.
//! * [`Ring`] — the rank-addressed overlay; next-hop and hop-count math.
//! * [`LiveSet`] — tracked node liveness with self-heal reparenting: when
//!   an interior node dies, its children re-attach to the nearest live
//!   ancestor, which is how the planes "self-heal when interior nodes
//!   fail".
//!
//! # Example
//!
//! ```
//! use flux_topo::Tree;
//! use flux_wire::Rank;
//!
//! let t = Tree::new(7, 2); // 7 ranks, binary
//! assert_eq!(t.parent(Rank(5)), Some(Rank(2)));
//! assert_eq!(t.children(Rank(1)), vec![Rank(3), Rank(4)]);
//! assert_eq!(t.depth(Rank(6)), 2);
//! ```


#![forbid(unsafe_code)]
#![deny(missing_docs)]
mod live;
mod ring;
mod tree;

pub use live::LiveSet;
pub use ring::Ring;
pub use tree::Tree;

#[cfg(test)]
mod proptests;
