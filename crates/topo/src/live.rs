//! Liveness tracking and self-heal reparenting.
//!
//! The paper: *"Each message plane implements reliable, in-order message
//! delivery, and can self-heal when interior nodes fail."* [`LiveSet`]
//! tracks which ranks are up and answers the reparenting question: when a
//! node's tree parent is dead, traffic re-attaches to the nearest live
//! ancestor, skipping any dead interior nodes on the way to the root.
//!
//! Root failure is out of scope, exactly as in the paper ("A design for
//! comprehensive fault tolerance, including root node failure, is a
//! near-term project activity").

use crate::Tree;
use flux_wire::Rank;

/// Tracks per-rank liveness for a session of fixed size.
#[derive(Clone, Debug)]
pub struct LiveSet {
    up: Vec<bool>,
}

impl LiveSet {
    /// Creates a set with all `size` ranks alive.
    pub fn new(size: u32) -> LiveSet {
        LiveSet { up: vec![true; size as usize] }
    }

    /// Number of ranks tracked.
    pub fn size(&self) -> u32 {
        self.up.len() as u32
    }

    /// True if `r` is alive.
    pub fn is_up(&self, r: Rank) -> bool {
        self.up.get(r.index()).copied().unwrap_or(false)
    }

    /// Marks `r` dead.
    ///
    /// # Panics
    /// Panics on an attempt to kill the session root — the paper's
    /// prototype does not tolerate root failure and neither do we; callers
    /// must treat root death as session death.
    pub fn mark_down(&mut self, r: Rank) {
        assert!(!r.is_root(), "root failure is session failure, not a liveness event");
        if let Some(slot) = self.up.get_mut(r.index()) {
            *slot = false;
        }
    }

    /// Marks `r` alive again (a replaced/rebooted node re-joining).
    pub fn mark_up(&mut self, r: Rank) {
        if let Some(slot) = self.up.get_mut(r.index()) {
            *slot = true;
        }
    }

    /// Count of live ranks.
    pub fn live_count(&self) -> u32 {
        self.up.iter().filter(|&&b| b).count() as u32
    }

    /// The nearest live ancestor of `r` in `tree` — the rank `r`'s
    /// upstream traffic should re-attach to. Returns `None` for the root
    /// itself. The root is always live (see [`LiveSet::mark_down`]), so
    /// for any non-root rank this returns `Some`.
    pub fn effective_parent(&self, tree: &Tree, r: Rank) -> Option<Rank> {
        let mut cur = tree.parent(r)?;
        while !self.is_up(cur) {
            cur = tree.parent(cur).expect("root is always live");
        }
        Some(cur)
    }

    /// The live children of `r` after self-healing: `r`'s direct children
    /// that are up, plus — for each dead child — that child's live
    /// descendants that re-attach to `r`. This is the set of ranks whose
    /// `effective_parent` is `r`.
    pub fn effective_children(&self, tree: &Tree, r: Rank) -> Vec<Rank> {
        let mut out = Vec::new();
        let mut frontier = tree.children(r);
        while let Some(c) = frontier.pop() {
            if self.is_up(c) {
                out.push(c);
            } else {
                frontier.extend(tree.children(c));
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_up_initially() {
        let l = LiveSet::new(8);
        assert_eq!(l.live_count(), 8);
        assert!(l.is_up(Rank(7)));
        assert!(!l.is_up(Rank(8)));
    }

    #[test]
    fn mark_down_and_up() {
        let mut l = LiveSet::new(4);
        l.mark_down(Rank(2));
        assert!(!l.is_up(Rank(2)));
        assert_eq!(l.live_count(), 3);
        l.mark_up(Rank(2));
        assert!(l.is_up(Rank(2)));
    }

    #[test]
    #[should_panic(expected = "root failure")]
    fn killing_root_panics() {
        LiveSet::new(4).mark_down(Rank(0));
    }

    #[test]
    fn effective_parent_skips_dead_interior() {
        // Binary tree over 15: rank 11's ancestry is 11 -> 5 -> 2 -> 0.
        let t = Tree::binary(15);
        let mut l = LiveSet::new(15);
        assert_eq!(l.effective_parent(&t, Rank(11)), Some(Rank(5)));
        l.mark_down(Rank(5));
        assert_eq!(l.effective_parent(&t, Rank(11)), Some(Rank(2)));
        l.mark_down(Rank(2));
        assert_eq!(l.effective_parent(&t, Rank(11)), Some(Rank(0)));
        assert_eq!(l.effective_parent(&t, Rank(0)), None);
    }

    #[test]
    fn effective_children_absorb_orphans() {
        let t = Tree::binary(15);
        let mut l = LiveSet::new(15);
        assert_eq!(l.effective_children(&t, Rank(2)), vec![Rank(5), Rank(6)]);
        l.mark_down(Rank(5));
        // 5's children (11, 12) re-attach to 2.
        assert_eq!(l.effective_children(&t, Rank(2)), vec![Rank(6), Rank(11), Rank(12)]);
        // Cascading failure: 11 also down, leaving 12 (11 is a leaf here).
        l.mark_down(Rank(11));
        assert_eq!(l.effective_children(&t, Rank(2)), vec![Rank(6), Rank(12)]);
    }

    #[test]
    fn every_live_nonroot_reaches_root() {
        let t = Tree::binary(31);
        let mut l = LiveSet::new(31);
        for dead in [1u32, 2, 5, 6, 11, 14] {
            l.mark_down(Rank(dead));
        }
        for r in t.ranks().skip(1) {
            if l.is_up(r) {
                let p = l.effective_parent(&t, r).unwrap();
                assert!(l.is_up(p), "parent of {r} must be live");
                assert!(t.is_ancestor(p, r));
            }
        }
    }
}
