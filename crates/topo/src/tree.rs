//! Complete k-ary tree over session ranks.

use flux_wire::Rank;

/// A complete k-ary tree over ranks `0..size`, rank 0 at the root.
///
/// Rank `r`'s parent is `(r-1)/k` and its children are
/// `k*r+1 ..= k*r+k` (clamped to `size`) — the standard array heap layout,
/// which keeps consecutive ranks at adjacent tree positions, matching how
/// the prototype assigned "consecutive rank processes ... to consecutive
/// nodes".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Tree {
    size: u32,
    arity: u32,
}

impl Tree {
    /// Creates a tree over `size` ranks with the given fan-out.
    ///
    /// # Panics
    /// Panics if `size == 0` or `arity == 0`.
    pub fn new(size: u32, arity: u32) -> Tree {
        assert!(size > 0, "tree must have at least the root");
        assert!(arity > 0, "tree arity must be positive");
        Tree { size, arity }
    }

    /// A binary tree, the paper's evaluated configuration.
    pub fn binary(size: u32) -> Tree {
        Tree::new(size, 2)
    }

    /// A flat (star) topology: every rank is a direct child of the root.
    pub fn flat(size: u32) -> Tree {
        Tree::new(size, size.max(2))
    }

    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Fan-out.
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// True if `r` is a valid rank in this tree.
    pub fn contains(&self, r: Rank) -> bool {
        r.0 < self.size
    }

    /// The parent of `r`, or `None` for the root.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn parent(&self, r: Rank) -> Option<Rank> {
        assert!(self.contains(r), "rank {r} out of range 0..{}", self.size);
        if r.is_root() {
            None
        } else {
            Some(Rank((r.0 - 1) / self.arity))
        }
    }

    /// The children of `r`, in rank order.
    pub fn children(&self, r: Rank) -> Vec<Rank> {
        assert!(self.contains(r), "rank {r} out of range 0..{}", self.size);
        let first = u64::from(r.0) * u64::from(self.arity) + 1;
        (0..self.arity)
            .map(|i| first + u64::from(i))
            .take_while(|&c| c < u64::from(self.size))
            .map(|c| Rank(c as u32))
            .collect()
    }

    /// True if `r` has no children.
    pub fn is_leaf(&self, r: Rank) -> bool {
        u64::from(r.0) * u64::from(self.arity) + 1 >= u64::from(self.size)
    }

    /// Distance from the root (root has depth 0).
    pub fn depth(&self, r: Rank) -> u32 {
        let mut d = 0;
        let mut cur = r;
        while let Some(p) = self.parent(cur) {
            cur = p;
            d += 1;
        }
        d
    }

    /// The height of the whole tree: maximum depth over all ranks.
    pub fn height(&self) -> u32 {
        if self.size == 1 {
            0
        } else {
            self.depth(Rank(self.size - 1)).max(self.depth(Rank(self.size.div_ceil(2))))
        }
    }

    /// The path from `r` up to (and including) the root.
    pub fn path_to_root(&self, r: Rank) -> Vec<Rank> {
        let mut path = vec![r];
        let mut cur = r;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }

    /// True if `a` is a (non-strict) ancestor of `b`.
    pub fn is_ancestor(&self, a: Rank, b: Rank) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.parent(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// All ranks in the subtree rooted at `r` (including `r`), BFS order.
    pub fn subtree(&self, r: Rank) -> Vec<Rank> {
        let mut out = vec![r];
        let mut i = 0;
        while i < out.len() {
            let cur = out[i];
            out.extend(self.children(cur));
            i += 1;
        }
        out
    }

    /// Iterator over all ranks.
    pub fn ranks(&self) -> impl Iterator<Item = Rank> {
        (0..self.size).map(Rank)
    }

    /// The next hop from `from` toward `to` along tree edges: down into
    /// the child subtree containing `to` when `to` is below `from`,
    /// otherwise up to the parent. Returns `None` when already there.
    ///
    /// This is the routing rule for a tree-shaped rank-addressed overlay
    /// (the paper's secondary overlay has configurable topology; the
    /// prototype used a ring "without routing tables", a tree pays one
    /// comparison per hop for O(log N) paths).
    pub fn route_next(&self, from: Rank, to: Rank) -> Option<Rank> {
        assert!(self.contains(from) && self.contains(to), "ranks in range");
        if from == to {
            return None;
        }
        if self.is_ancestor(from, to) {
            // Descend: exactly one child's subtree contains `to`.
            let child = self
                .children(from)
                .into_iter()
                .find(|&c| self.is_ancestor(c, to))
                .expect("descendant is under some child");
            Some(child)
        } else {
            Some(self.parent(from).expect("non-ancestor of anything is not the root"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_seven_nodes() {
        let t = Tree::binary(7);
        assert_eq!(t.parent(Rank(0)), None);
        assert_eq!(t.parent(Rank(1)), Some(Rank(0)));
        assert_eq!(t.parent(Rank(2)), Some(Rank(0)));
        assert_eq!(t.parent(Rank(6)), Some(Rank(2)));
        assert_eq!(t.children(Rank(0)), vec![Rank(1), Rank(2)]);
        assert_eq!(t.children(Rank(2)), vec![Rank(5), Rank(6)]);
        assert!(t.children(Rank(3)).is_empty());
        assert!(t.is_leaf(Rank(3)));
        assert!(!t.is_leaf(Rank(0)));
    }

    #[test]
    fn partial_last_level() {
        let t = Tree::binary(6);
        assert_eq!(t.children(Rank(2)), vec![Rank(5)]);
        assert_eq!(t.children(Rank(1)), vec![Rank(3), Rank(4)]);
    }

    #[test]
    fn single_node_tree() {
        let t = Tree::binary(1);
        assert_eq!(t.parent(Rank(0)), None);
        assert!(t.children(Rank(0)).is_empty());
        assert_eq!(t.height(), 0);
        assert_eq!(t.depth(Rank(0)), 0);
    }

    #[test]
    fn depth_and_height() {
        let t = Tree::binary(15);
        assert_eq!(t.depth(Rank(0)), 0);
        assert_eq!(t.depth(Rank(1)), 1);
        assert_eq!(t.depth(Rank(7)), 3);
        assert_eq!(t.depth(Rank(14)), 3);
        assert_eq!(t.height(), 3);
        // Height of a binary tree over N ranks is floor(log2(N)).
        for n in [2u32, 3, 4, 8, 16, 17, 64, 100] {
            let t = Tree::binary(n);
            assert_eq!(t.height(), 31 - n.leading_zeros(), "n = {n}");
        }
    }

    #[test]
    fn flat_tree_has_height_one() {
        let t = Tree::flat(100);
        assert_eq!(t.height(), 1);
        assert_eq!(t.children(Rank(0)).len(), 99);
        for r in 1..100 {
            assert_eq!(t.parent(Rank(r)), Some(Rank(0)));
        }
    }

    #[test]
    fn quaternary_tree() {
        let t = Tree::new(21, 4);
        assert_eq!(t.children(Rank(0)), vec![Rank(1), Rank(2), Rank(3), Rank(4)]);
        assert_eq!(t.children(Rank(1)), vec![Rank(5), Rank(6), Rank(7), Rank(8)]);
        assert_eq!(t.parent(Rank(20)), Some(Rank(4)));
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn path_and_ancestry() {
        let t = Tree::binary(15);
        assert_eq!(t.path_to_root(Rank(11)), vec![Rank(11), Rank(5), Rank(2), Rank(0)]);
        assert!(t.is_ancestor(Rank(0), Rank(11)));
        assert!(t.is_ancestor(Rank(2), Rank(11)));
        assert!(t.is_ancestor(Rank(11), Rank(11)));
        assert!(!t.is_ancestor(Rank(1), Rank(11)));
        assert!(!t.is_ancestor(Rank(11), Rank(2)));
    }

    #[test]
    fn subtree_partitions_tree() {
        let t = Tree::binary(10);
        let left: Vec<_> = t.subtree(Rank(1));
        let right: Vec<_> = t.subtree(Rank(2));
        assert_eq!(left.len() + right.len() + 1, 10);
        for r in &left {
            assert!(!right.contains(r));
        }
        assert_eq!(t.subtree(Rank(0)).len(), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rank_panics() {
        Tree::binary(4).parent(Rank(4));
    }
}

#[cfg(test)]
mod route_tests {
    use super::*;

    #[test]
    fn route_next_descends_and_climbs() {
        let t = Tree::binary(15);
        // 11 -> 6: up 11 -> 5 -> 2, down 2 -> 6.
        assert_eq!(t.route_next(Rank(11), Rank(6)), Some(Rank(5)));
        assert_eq!(t.route_next(Rank(5), Rank(6)), Some(Rank(2)));
        assert_eq!(t.route_next(Rank(2), Rank(6)), Some(Rank(6)));
        assert_eq!(t.route_next(Rank(6), Rank(6)), None);
        // Root to a leaf descends directly.
        assert_eq!(t.route_next(Rank(0), Rank(11)), Some(Rank(2)));
    }

    #[test]
    fn route_next_always_reaches_destination() {
        for (size, arity) in [(1u32, 2u32), (2, 2), (15, 2), (40, 3), (100, 7)] {
            let t = Tree::new(size, arity);
            for from in t.ranks() {
                for to in t.ranks() {
                    let mut cur = from;
                    let mut hops = 0;
                    while let Some(next) = t.route_next(cur, to) {
                        cur = next;
                        hops += 1;
                        assert!(hops <= 2 * t.height() + 2, "loop routing {from}->{to}");
                    }
                    assert_eq!(cur, to);
                    // Path length bounded by depth(from)+depth(to).
                    assert!(hops <= t.depth(from) + t.depth(to));
                }
            }
        }
    }
}
